//! `inrpp bench` — wall-clock timing of representative sweeps, written to
//! `BENCH_flowsim.json` so the suite's performance trajectory is recorded
//! (and regressions are visible) PR over PR.
//!
//! Four entries cover the hot paths the incremental allocation engine
//! (`inrpp_flowsim::engine`) serves:
//!
//! * `flowsim:fig4a` — the paper's headline sweep: SP/ECMP/URP on the
//!   three Fig. 4 ISP topologies. The heaviest flow-level workload in the
//!   suite (thousands of concurrent flows under overload).
//! * `flowsim:scenario:het-dumbbell:heavy-tail` and
//!   `flowsim:scenario:fat-tree:mixed` — two catalog cells with very
//!   different shapes (access-bottlenecked dumbbell vs. fabric).
//! * `packetsim:fig3-inrpp` — the chunk-level INRPP transport on the
//!   Fig. 3 bottleneck, as the non-fluid control point.
//!
//! "Events" are the re-allocation triggers of the fluid model (arrivals +
//! completed departures, summed over every cell run), or delivered chunks
//! for the packet-level entry — so `events/sec` tracks the allocator's
//! true throughput, independent of how flows are batched into cells.
//!
//! Timings are wall-clock and machine-dependent by nature; everything
//! else in the report (cells, events) is deterministic. The `--note`
//! mechanism lets a PR pin context (e.g. a measured before/after
//! speedup) into the recorded file.

use std::time::Instant;

use inrpp::scenario::{fig4_topologies, run_fig4_row, scenario_by_id, ScenarioStrategy};
use inrpp::InrppConfig;
use inrpp_flowsim::FlowSimReport;
use inrpp_packetsim::TransportKind;
use inrpp_runner::json_string;

use crate::experiments;
use crate::sweeps;
use crate::table::{f, Table};

/// One timed workload.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Workload identifier (`flowsim:…` / `packetsim:…`).
    pub id: String,
    /// Wall-clock seconds for all cells of the workload.
    pub wall_secs: f64,
    /// Simulation cells executed (one strategy × topology run each).
    pub cells: usize,
    /// Re-allocation events (fluid) or delivered chunks (packet).
    pub events: u64,
}

impl BenchEntry {
    /// Cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.wall_secs
        }
    }

    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.wall_secs
        }
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub mode: &'static str,
    /// Timed workloads, in execution order.
    pub entries: Vec<BenchEntry>,
    /// Free-form `key=value` context notes (ordered).
    pub notes: Vec<(String, String)>,
}

impl BenchReport {
    /// Total wall-clock seconds across entries.
    pub fn total_wall_secs(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_secs).sum()
    }

    /// Canonical JSON rendering (the `BENCH_flowsim.json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"inrpp-bench-flowsim/1\",\"mode\":");
        json_string(&mut out, self.mode);
        out.push_str(&format!(
            ",\"total_wall_secs\":{:.3},\"entries\":[",
            self.total_wall_secs()
        ));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(&mut out, &e.id);
            out.push_str(&format!(
                ",\"wall_secs\":{:.3},\"cells\":{},\"events\":{},\
                 \"cells_per_sec\":{:.2},\"events_per_sec\":{:.1}}}",
                e.wall_secs,
                e.cells,
                e.events,
                e.cells_per_sec(),
                e.events_per_sec()
            ));
        }
        out.push_str("],\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_string(&mut out, v);
        }
        out.push_str("}}\n");
        out
    }

    /// Human-readable table rendering.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec![
            "workload".to_string(),
            "wall".to_string(),
            "cells".to_string(),
            "cells/s".to_string(),
            "events".to_string(),
            "events/s".to_string(),
        ]);
        for e in &self.entries {
            t.row(vec![
                e.id.clone(),
                format!("{}s", f(e.wall_secs, 3)),
                e.cells.to_string(),
                f(e.cells_per_sec(), 2),
                e.events.to_string(),
                f(e.events_per_sec(), 1),
            ]);
        }
        let mut out = format!(
            "inrpp bench — flow-level perf baseline ({} mode)\n\n{}",
            self.mode,
            t.render()
        );
        for (k, v) in &self.notes {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out
    }
}

/// Re-allocation events of one fluid run: every arrival and every
/// completed departure triggered exactly one re-allocation.
fn flow_events(r: &FlowSimReport) -> u64 {
    (r.arrived_flows + r.completed_flows) as u64
}

/// Run the benchmark suite. `quick` switches every workload to its
/// short-horizon configuration (the CI setting); `notes` are recorded
/// verbatim into the report.
pub fn run_bench(quick: bool, notes: Vec<(String, String)>) -> BenchReport {
    let mut entries = Vec::new();

    // 1. Fig. 4a — three ISP topologies × the SP/ECMP/URP trio.
    let cfg = sweeps::fig4_cfg(&sweeps::SweepOptions {
        quick,
        ..sweeps::SweepOptions::default()
    });
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut cells = 0usize;
    for isp in fig4_topologies() {
        let row = run_fig4_row(isp, &cfg);
        events += flow_events(&row.sp) + flow_events(&row.ecmp) + flow_events(&row.urp);
        cells += 3;
    }
    entries.push(BenchEntry {
        id: "flowsim:fig4a".to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells,
        events,
    });

    // 2./3. Two scenario-catalog cells of very different shape.
    for id in [
        "scenario:het-dumbbell:heavy-tail",
        "scenario:fat-tree:mixed",
    ] {
        let mut spec = scenario_by_id(id).expect("catalog id");
        if quick {
            spec = spec.quick();
        }
        let t0 = Instant::now();
        let mut events = 0u64;
        for strat in ScenarioStrategy::all() {
            events += flow_events(&spec.run_one(strat));
        }
        entries.push(BenchEntry {
            id: format!("flowsim:{id}"),
            wall_secs: t0.elapsed().as_secs_f64(),
            cells: 3,
            events,
        });
    }

    // 4. Packet-level control point: INRPP transport on the Fig. 3
    //    bottleneck (fixed 800-chunk transfer; "events" = chunks
    //    delivered end-to-end).
    let t0 = Instant::now();
    let r = experiments::ablation_transport_single(TransportKind::Inrpp(InrppConfig::default()));
    entries.push(BenchEntry {
        id: "packetsim:fig3-inrpp".to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells: 1,
        events: r.chunks_delivered,
    });

    BenchReport {
        mode: if quick { "quick" } else { "full" },
        entries,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let report = run_bench(
            true,
            vec![("context".to_string(), "unit \"test\"".to_string())],
        );
        assert_eq!(report.mode, "quick");
        assert_eq!(report.entries.len(), 4);
        assert_eq!(report.entries[0].id, "flowsim:fig4a");
        assert_eq!(report.entries[0].cells, 9);
        assert!(report.entries.iter().all(|e| e.events > 0));
        assert!(report.total_wall_secs() > 0.0);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"inrpp-bench-flowsim/1\""));
        assert!(json.contains("\"mode\":\"quick\""));
        assert!(json.contains("\"id\":\"packetsim:fig3-inrpp\""));
        assert!(json.contains("unit \\\"test\\\""), "{json}");
        assert!(json.ends_with("}\n"));
        let table = report.render_table();
        assert!(table.contains("flowsim:fig4a"));
        assert!(table.contains("context: unit \"test\""));
    }

    #[test]
    fn rate_helpers_guard_zero_wall() {
        let e = BenchEntry {
            id: "x".to_string(),
            wall_secs: 0.0,
            cells: 3,
            events: 5,
        };
        assert_eq!(e.cells_per_sec(), 0.0);
        assert_eq!(e.events_per_sec(), 0.0);
    }
}
