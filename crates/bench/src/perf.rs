//! `inrpp bench` — wall-clock timing of representative sweeps, written to
//! `BENCH_flowsim.json` so the suite's performance trajectory is recorded
//! (and regressions are visible) PR over PR.
//!
//! Eight entries cover the hot paths of both engines:
//!
//! * `flowsim:fig4a` — the paper's headline sweep: SP/ECMP/URP on the
//!   three Fig. 4 ISP topologies. The heaviest flow-level workload in the
//!   suite (thousands of concurrent flows under overload).
//! * `flowsim:scenario:het-dumbbell:heavy-tail` and
//!   `flowsim:scenario:fat-tree:mixed` — two catalog cells with very
//!   different shapes (access-bottlenecked dumbbell vs. fabric).
//! * `packetsim:fig3-inrpp` — the chunk-level INRPP transport on the
//!   Fig. 3 bottleneck, as the (small) non-fluid control point.
//! * `packetsim:fig3-inrpp-large` and `packetsim:dumbbell-mixed-many` —
//!   the chunk-level engine at scale (≥100k delivered chunks each in
//!   full mode): deep INRPP transfers with detours, and 128 mixed
//!   INRPP/AIMD flows with custody + back-pressure on a shared
//!   bottleneck. These are the workloads the arena/calendar rewrite of
//!   `inrpp_packetsim::engine` is gated on.
//! * `packetsim:line-inrpp-deep:sharded` and
//!   `packetsim:dumbbell-mixed-many:sharded` — the sharded driver
//!   (`try_run_sharded`, 4 workers over a fixed BFS partition) on the
//!   same two shapes, with sharding-safe parameters: odd-nanosecond
//!   link delays and fractional-Mbps rates keep channel-derived event
//!   instants off the barrier ladder, and load-aware detouring is off
//!   (see `inrpp_packetsim::shard` for the preconditions). These two run
//!   the **same fixed-size workload in both modes**, so their
//!   deterministic event counts can be pinned across quick and full
//!   baselines — `--compare` gates drift on them even when the modes
//!   differ.
//!
//! "Events" are the re-allocation triggers of the fluid model (arrivals +
//! completed departures, summed over every cell run), or delivered chunks
//! for the packet-level entry — so `events/sec` tracks the allocator's
//! true throughput, independent of how flows are batched into cells.
//!
//! Timings are wall-clock and machine-dependent by nature; everything
//! else in the report (cells, events) is deterministic. The `--note`
//! mechanism lets a PR pin context (e.g. a measured before/after
//! speedup) into the recorded file.

use std::time::Instant;

use inrpp::scenario::{fig4_topologies, run_fig4_row, scenario_by_id, ScenarioStrategy};
use inrpp::session::RunReport;
use inrpp::InrppConfig;
use inrpp_packetsim::{
    AimdConfig, FlowTransport, PacketSim, PacketSimConfig, TransferSpec, TransportKind,
};
use inrpp_runner::json_string;
use inrpp_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::Rate;
use inrpp_topology::Topology;

use crate::experiments;
use crate::sweeps;
use crate::table::{f, Table};

/// One timed workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Workload identifier (`flowsim:…` / `packetsim:…`).
    pub id: String,
    /// Wall-clock seconds for all cells of the workload.
    pub wall_secs: f64,
    /// Simulation cells executed (one strategy × topology run each).
    pub cells: usize,
    /// Re-allocation events (fluid) or delivered chunks (packet).
    pub events: u64,
}

impl BenchEntry {
    /// Cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.wall_secs
        }
    }

    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.wall_secs
        }
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub mode: &'static str,
    /// Timed workloads, in execution order.
    pub entries: Vec<BenchEntry>,
    /// Free-form `key=value` context notes (ordered).
    pub notes: Vec<(String, String)>,
}

impl BenchReport {
    /// Total wall-clock seconds across entries.
    pub fn total_wall_secs(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_secs).sum()
    }

    /// Canonical JSON rendering (the `BENCH_flowsim.json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"inrpp-bench-flowsim/1\",\"mode\":");
        json_string(&mut out, self.mode);
        out.push_str(&format!(
            ",\"total_wall_secs\":{:.3},\"entries\":[",
            self.total_wall_secs()
        ));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(&mut out, &e.id);
            out.push_str(&format!(
                ",\"wall_secs\":{:.3},\"cells\":{},\"events\":{},\
                 \"cells_per_sec\":{:.2},\"events_per_sec\":{:.1}}}",
                e.wall_secs,
                e.cells,
                e.events,
                e.cells_per_sec(),
                e.events_per_sec()
            ));
        }
        out.push_str("],\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_string(&mut out, v);
        }
        out.push_str("}}\n");
        out
    }

    /// Human-readable table rendering.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec![
            "workload".to_string(),
            "wall".to_string(),
            "cells".to_string(),
            "cells/s".to_string(),
            "events".to_string(),
            "events/s".to_string(),
        ]);
        for e in &self.entries {
            t.row(vec![
                e.id.clone(),
                format!("{}s", f(e.wall_secs, 3)),
                e.cells.to_string(),
                f(e.cells_per_sec(), 2),
                e.events.to_string(),
                f(e.events_per_sec(), 1),
            ]);
        }
        let mut out = format!(
            "inrpp bench — flow-level perf baseline ({} mode)\n\n{}",
            self.mode,
            t.render()
        );
        for (k, v) in &self.notes {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out
    }
}

/// Re-allocation events of one fluid run: every arrival and every
/// completed departure triggered exactly one re-allocation.
fn flow_events(r: &RunReport) -> u64 {
    (r.arrived_flows + r.completed_flows) as u64
}

/// Run the benchmark suite. `quick` switches every workload to its
/// short-horizon configuration (the CI setting); `notes` are recorded
/// verbatim into the report.
pub fn run_bench(quick: bool, notes: Vec<(String, String)>) -> BenchReport {
    let mut entries = Vec::new();

    // 1. Fig. 4a — three ISP topologies × the SP/ECMP/URP trio.
    let cfg = sweeps::fig4_cfg(&sweeps::SweepOptions {
        quick,
        ..sweeps::SweepOptions::default()
    });
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut cells = 0usize;
    for isp in fig4_topologies() {
        let row = run_fig4_row(isp, &cfg);
        events += flow_events(&row.sp) + flow_events(&row.ecmp) + flow_events(&row.urp);
        cells += 3;
    }
    entries.push(BenchEntry {
        id: "flowsim:fig4a".to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells,
        events,
    });

    // 2./3. Two scenario-catalog cells of very different shape.
    for id in [
        "scenario:het-dumbbell:heavy-tail",
        "scenario:fat-tree:mixed",
    ] {
        let mut spec = scenario_by_id(id).expect("catalog id");
        if quick {
            spec = spec.quick();
        }
        let t0 = Instant::now();
        let mut events = 0u64;
        for strat in ScenarioStrategy::all() {
            events += flow_events(&spec.run_one(strat));
        }
        entries.push(BenchEntry {
            id: format!("flowsim:{id}"),
            wall_secs: t0.elapsed().as_secs_f64(),
            cells: 3,
            events,
        });
    }

    // 4. Packet-level control point: INRPP transport on the Fig. 3
    //    bottleneck (fixed 800-chunk transfer; "events" = chunks
    //    delivered end-to-end).
    let t0 = Instant::now();
    let r = experiments::ablation_transport_single(TransportKind::Inrpp(InrppConfig::default()));
    entries.push(BenchEntry {
        id: "packetsim:fig3-inrpp".to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells: 1,
        events: r.packet().expect("packet engine run").chunks_delivered,
    });

    // 5./6. Large packet workloads: the chunk-level engine at the scale
    //    where its hot path actually dominates (≥100k delivered chunks
    //    in full mode — the fig3 control point above is 3 orders of
    //    magnitude too small to surface per-event costs).
    entries.push(packet_fig3_large(quick));
    entries.push(packet_dumbbell_many(quick));

    // 7. Fault-heavy control point: the same chunk engine with the
    //    recovery machinery (outage bookkeeping, detours, custody
    //    re-arming) actually firing mid-run.
    entries.push(packet_fat_tree_faulted(quick));

    // 8./9. The sharded driver on the same two shapes, with
    //    sharding-safe parameters. Fixed size in both modes so the
    //    event counts stay comparable across quick/full baselines.
    for w in sharded_workloads() {
        entries.push(packet_entry_sharded(&w));
    }

    BenchReport {
        mode: if quick { "quick" } else { "full" },
        entries,
        notes,
    }
}

/// Time one packet-level workload; "events" = chunks delivered
/// end-to-end (deterministic, so `--compare` can gate drift on it).
fn packet_entry(
    id: &str,
    topo: &Topology,
    cfg: PacketSimConfig,
    transfers: &[TransferSpec],
) -> BenchEntry {
    packet_entry_as(id, topo, cfg, transfers, None)
}

/// Like [`packet_entry`], with an optional per-flow transport cycle for
/// `Mixed` configurations (flow *i* gets `kinds[i % kinds.len()]`).
fn packet_entry_as(
    id: &str,
    topo: &Topology,
    cfg: PacketSimConfig,
    transfers: &[TransferSpec],
    kinds: Option<&[FlowTransport]>,
) -> BenchEntry {
    let t0 = Instant::now();
    let mut sim = PacketSim::new(topo, cfg);
    for (i, t) in transfers.iter().enumerate() {
        match kinds {
            Some(ks) => {
                sim.add_transfer_as(*t, ks[i % ks.len()]);
            }
            None => {
                sim.add_transfer(*t);
            }
        }
    }
    let report = sim.run();
    BenchEntry {
        id: id.to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells: 1,
        events: report.chunks_delivered,
    }
}

/// Deep-flow workload: two long INRPP transfers over the Fig. 3
/// bottleneck (360k chunks full / 8k quick) — exercises the
/// detour/flowlet machinery and per-chunk forwarding at depth.
fn packet_fig3_large(quick: bool) -> BenchEntry {
    let topo = Topology::fig3();
    let chunks: u64 = if quick { 4_000 } else { 180_000 };
    let cfg = PacketSimConfig {
        horizon: SimDuration::from_secs(if quick { 60 } else { 1_500 }),
        ..PacketSimConfig::default()
    };
    let n = |s: &str| topo.node_by_name(s).expect("fig3 node");
    let transfers = [
        TransferSpec {
            flow: 1,
            src: n("1"),
            dst: n("4"),
            chunks,
            start: SimTime::ZERO,
        },
        TransferSpec {
            flow: 2,
            src: n("1"),
            dst: n("3"),
            chunks,
            start: SimTime::ZERO,
        },
    ];
    packet_entry("packetsim:fig3-inrpp-large", &topo, cfg, &transfers)
}

/// Fault-heavy workload: six cross-pod transfers on the k=4 fat-tree
/// with a mid-run failure of both core uplinks of `agg0-0` (down at
/// 1 s, restored at 6 s) — forces every flow routed through that
/// aggregation switch onto detours and through the custody-recovery
/// path while the rest of the fabric keeps serving. "events" = chunks
/// delivered, deterministic like every packet entry, so `--compare`
/// gates drift in the fault machinery exactly like the fault-free
/// workloads.
fn packet_fat_tree_faulted(quick: bool) -> BenchEntry {
    let topo = inrpp_topology::synth::fat_tree(4, 7);
    let per_flow: u64 = if quick { 400 } else { 6_000 };
    let cfg = PacketSimConfig {
        horizon: SimDuration::from_secs(if quick { 60 } else { 400 }),
        ..PacketSimConfig::default()
    };
    let n = |s: &str| topo.node_by_name(s).expect("fat-tree node");
    let mut events = Vec::new();
    for core in ["core0", "core1"] {
        let link = topo
            .link_between(n("agg0-0"), n(core))
            .expect("agg0-0 core uplink")
            .idx() as u32;
        events.push(FaultEvent {
            at: SimTime::from_secs(1),
            kind: FaultKind::LinkDown { link },
        });
        events.push(FaultEvent {
            at: SimTime::from_secs(6),
            kind: FaultKind::LinkUp { link },
        });
    }
    events.sort_by_key(|e| e.at);
    let plan = FaultPlan::try_new(events).expect("uplink outage plan");

    let pairs = [
        ("host0-0-0", "host1-0-0"),
        ("host0-0-1", "host1-1-1"),
        ("host0-1-0", "host2-0-0"),
        ("host0-1-1", "host2-1-1"),
        ("host0-0-0", "host3-0-0"),
        ("host0-1-0", "host3-1-1"),
    ];
    let t0 = Instant::now();
    let mut sim = PacketSim::new(&topo, cfg);
    sim.set_faults(plan);
    for (i, (src, dst)) in pairs.iter().enumerate() {
        sim.add_transfer(TransferSpec {
            flow: (i + 1) as u64,
            src: n(src),
            dst: n(dst),
            chunks: per_flow,
            start: SimTime::from_millis(50 * i as u64),
        });
    }
    let report = sim.run();
    BenchEntry {
        id: "packetsim:fat-tree-linkfail".to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells: 1,
        events: report.chunks_delivered,
    }
}

/// Many-flow workload: a 64-pair dumbbell under `Mixed` transport
/// (alternating INRPP/AIMD flows, 128k chunks full / 9.6k quick) —
/// exercises flow-table lookups, custody + back-pressure on the shared
/// bottleneck, and AIMD window clocking at scale.
fn packet_dumbbell_many(quick: bool) -> BenchEntry {
    let pairs: usize = if quick { 16 } else { 64 };
    let per_flow: u64 = if quick { 300 } else { 1_000 };
    let topo = Topology::dumbbell(
        pairs,
        Rate::mbps(10.0),
        Rate::mbps(100.0),
        SimDuration::from_millis(2),
    );
    let cfg = PacketSimConfig {
        transport: TransportKind::Mixed {
            inrpp: InrppConfig::default(),
            aimd: AimdConfig::default(),
        },
        horizon: SimDuration::from_secs(if quick { 40 } else { 150 }),
        ..PacketSimConfig::default()
    };
    let mut transfers = Vec::new();
    for i in 0..pairs {
        for j in 0..2u64 {
            transfers.push(TransferSpec {
                flow: (i as u64) * 2 + j + 1,
                src: inrpp_topology::graph::NodeId(i as u32),
                dst: inrpp_topology::graph::NodeId((pairs + 2 + i) as u32),
                chunks: per_flow,
                start: SimTime::ZERO,
            });
        }
    }
    packet_entry_as(
        "packetsim:dumbbell-mixed-many",
        &topo,
        cfg,
        &transfers,
        Some(&[FlowTransport::Inrpp, FlowTransport::Aimd]),
    )
}

/// Worker count for the sharded bench entries: enough regions that the
/// window protocol and boundary exchange are genuinely exercised, small
/// enough to shard every bench topology.
const SHARD_BENCH_WORKERS: usize = 4;

/// Fixed BFS partition seed for the sharded entries — the partition
/// must not move between runs or the wall clocks are not comparable.
const SHARD_BENCH_PARTITION_SEED: u64 = 7;

/// [`InrppConfig`] with load-aware detouring off — the one INRPP knob
/// the sharded driver rejects (detour scoring reads remote queue depths
/// that a region cannot see; see `inrpp_packetsim::shard`).
fn shardable_inrpp() -> InrppConfig {
    InrppConfig {
        load_aware_detour: false,
        ..InrppConfig::default()
    }
}

/// One sharded bench workload, kept as data so the identity test in
/// this module can push the exact same configuration through both the
/// sequential engine and the sharded driver.
struct ShardedWorkload {
    id: &'static str,
    topo: Topology,
    cfg: PacketSimConfig,
    transfers: Vec<TransferSpec>,
    kinds: Option<Vec<FlowTransport>>,
}

impl ShardedWorkload {
    /// Build the simulator with every transfer added.
    fn sim(&self) -> PacketSim<'_> {
        let mut sim = PacketSim::new(&self.topo, self.cfg);
        for (i, t) in self.transfers.iter().enumerate() {
            match &self.kinds {
                Some(ks) => {
                    sim.add_transfer_as(*t, ks[i % ks.len()]);
                }
                None => {
                    sim.add_transfer(*t);
                }
            }
        }
        sim
    }
}

/// The two sharded bench workloads. Fixed size regardless of `--quick`
/// (see the module docs: their event counts must be mode-independent
/// for the cross-mode drift gate to make sense), and sized so both
/// finish well under a second in release builds.
fn sharded_workloads() -> Vec<ShardedWorkload> {
    // Deep-flow shape: two opposing INRPP transfers across a six-hop
    // line — per-chunk forwarding at depth, every chunk crossing
    // several region boundaries. The 1.300017 ms delay keeps channel
    // instants off the 250 ms rung grid (sharding precondition) and
    // sets the conservative lookahead window.
    let line_topo = Topology::line(6, Rate::mbps(97.3), SimDuration::from_nanos(1_300_017));
    let line_ids: Vec<_> = line_topo.node_ids().collect();
    let line = ShardedWorkload {
        id: "packetsim:line-inrpp-deep:sharded",
        cfg: PacketSimConfig {
            transport: TransportKind::Inrpp(shardable_inrpp()),
            horizon: SimDuration::from_secs(8),
            ..PacketSimConfig::default()
        },
        transfers: vec![
            TransferSpec {
                flow: 1,
                src: line_ids[0],
                dst: line_ids[5],
                chunks: 50_000,
                start: SimTime::ZERO,
            },
            TransferSpec {
                flow: 2,
                src: line_ids[5],
                dst: line_ids[0],
                chunks: 50_000,
                start: SimTime::ZERO,
            },
        ],
        kinds: None,
        topo: line_topo,
    };

    // Many-flow shape: the mixed INRPP/AIMD dumbbell again (16 pairs,
    // 32 flows, custody + back-pressure on the shared bottleneck), on
    // fractional-Mbps rates and an odd 2.700031 ms delay so every
    // channel instant misses the barrier ladder.
    let pairs: usize = 16;
    let per_flow: u64 = 3_200;
    let mut transfers = Vec::new();
    for i in 0..pairs {
        for j in 0..2u64 {
            transfers.push(TransferSpec {
                flow: (i as u64) * 2 + j + 1,
                src: inrpp_topology::graph::NodeId(i as u32),
                dst: inrpp_topology::graph::NodeId((pairs + 2 + i) as u32),
                chunks: per_flow,
                start: SimTime::ZERO,
            });
        }
    }
    let dumbbell = ShardedWorkload {
        id: "packetsim:dumbbell-mixed-many:sharded",
        topo: Topology::dumbbell(
            pairs,
            Rate::mbps(97.3),
            Rate::mbps(393.9),
            SimDuration::from_nanos(2_700_031),
        ),
        cfg: PacketSimConfig {
            transport: TransportKind::Mixed {
                inrpp: shardable_inrpp(),
                aimd: AimdConfig::default(),
            },
            horizon: SimDuration::from_secs(5),
            ..PacketSimConfig::default()
        },
        transfers,
        kinds: Some(vec![FlowTransport::Inrpp, FlowTransport::Aimd]),
    };

    vec![line, dumbbell]
}

/// Like [`packet_entry_as`], but timing the sharded driver
/// ([`PacketSim::try_run_sharded`]) instead of the sequential engine.
/// Events are delivered chunks exactly as in the sequential entries —
/// the sharded report is byte-identical to the sequential one, so the
/// counts are directly comparable.
fn packet_entry_sharded(w: &ShardedWorkload) -> BenchEntry {
    let t0 = Instant::now();
    let report = w
        .sim()
        .try_run_sharded(SHARD_BENCH_WORKERS, SHARD_BENCH_PARTITION_SEED)
        .expect("bench workloads satisfy the sharding preconditions");
    BenchEntry {
        id: w.id.to_string(),
        wall_secs: t0.elapsed().as_secs_f64(),
        cells: 1,
        events: report.chunks_delivered,
    }
}

// ===================================================================
// `inrpp bench --compare`: baseline diffing
// ===================================================================

/// A `BENCH_flowsim.json` file parsed back (either side of a
/// `--compare`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// The timed workloads.
    pub entries: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// A snapshot of an in-memory report (the fresh side of a
    /// run-then-compare).
    pub fn of(report: &BenchReport) -> BenchSnapshot {
        BenchSnapshot {
            mode: report.mode.to_string(),
            entries: report.entries.clone(),
        }
    }

    /// Parse the `inrpp-bench-flowsim/1` JSON schema. A tiny bespoke
    /// scanner (the workspace is intentionally dependency-free), strict
    /// enough to reject other files with a useful message.
    pub fn parse(json: &str) -> Result<BenchSnapshot, String> {
        if !json.contains("\"schema\":\"inrpp-bench-flowsim/1\"") {
            return Err("not an inrpp-bench-flowsim/1 file (schema marker missing)".to_string());
        }
        let mode = scan_string(json, "\"mode\":")?;
        let entries_body = json
            .split_once("\"entries\":[")
            .ok_or("missing entries array")?
            .1;
        let entries_body = entries_body
            .split_once("],\"notes\"")
            .map(|(a, _)| a)
            .unwrap_or(entries_body);
        let mut entries = Vec::new();
        for obj in entries_body.split("},{") {
            if obj.trim().is_empty() {
                continue;
            }
            entries.push(BenchEntry {
                id: scan_string(obj, "\"id\":")?,
                wall_secs: scan_number(obj, "\"wall_secs\":")?,
                cells: scan_number(obj, "\"cells\":")? as usize,
                events: scan_number(obj, "\"events\":")? as u64,
            });
        }
        if entries.is_empty() {
            return Err("entries array is empty".to_string());
        }
        Ok(BenchSnapshot { mode, entries })
    }

    /// Load and parse a file.
    pub fn load(path: &std::path::Path) -> Result<BenchSnapshot, String> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchSnapshot::parse(&body)
    }
}

/// JSON string value following `key` (no escapes — the schema's ids and
/// modes never contain any).
fn scan_string(hay: &str, key: &str) -> Result<String, String> {
    let rest = hay
        .split_once(key)
        .ok_or_else(|| format!("missing {key}"))?
        .1;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("{key} is not a string"))?;
    Ok(rest
        .split_once('"')
        .ok_or_else(|| format!("unterminated string after {key}"))?
        .0
        .to_string())
}

/// JSON number value following `key`.
fn scan_number(hay: &str, key: &str) -> Result<f64, String> {
    let rest = hay
        .split_once(key)
        .ok_or_else(|| format!("missing {key}"))?
        .1;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("bad number after {key}: {e}"))
}

/// One workload's delta between two bench snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Workload id.
    pub id: String,
    /// Old/new wall seconds.
    pub wall: (f64, f64),
    /// Old/new cells per second.
    pub cells_per_sec: (f64, f64),
    /// Old/new event counts (deterministic — any drift is a red flag).
    pub events: (u64, u64),
}

impl CompareRow {
    /// Relative wall-clock change, percent (negative = faster).
    pub fn wall_delta_pct(&self) -> f64 {
        if self.wall.0 <= 0.0 {
            0.0
        } else {
            100.0 * (self.wall.1 - self.wall.0) / self.wall.0
        }
    }

    /// Relative throughput change, percent (negative = regression).
    pub fn cells_per_sec_delta_pct(&self) -> f64 {
        if self.cells_per_sec.0 <= 0.0 {
            0.0
        } else {
            100.0 * (self.cells_per_sec.1 - self.cells_per_sec.0) / self.cells_per_sec.0
        }
    }
}

/// Outcome of `inrpp bench --compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Old/new bench modes.
    pub modes: (String, String),
    /// Per-workload deltas, old-file order.
    pub rows: Vec<CompareRow>,
    /// Workload ids present on only one side.
    pub unmatched: Vec<String>,
    /// Whether the >threshold regression gate was applied (only when the
    /// modes match — quick-vs-full wall clocks are not comparable).
    pub gated: bool,
    /// Workloads whose cells/sec regressed past the threshold (empty
    /// when `gated` is false).
    pub regressions: Vec<String>,
    /// Workloads whose deterministic event counts differ — a behaviour
    /// change, never machine noise. Same-mode runs gate every entry;
    /// across modes only the sharded entries (`…:sharded` ids) are
    /// gated, because they alone run a mode-independent workload.
    pub event_drift: Vec<String>,
}

/// Sharded bench entries run the identical fixed-size workload in both
/// modes precisely so the event-drift gate can span a quick-vs-full
/// comparison — their ids carry a `:sharded` suffix to mark that.
fn sharded_entry(id: &str) -> bool {
    id.ends_with(":sharded")
}

/// Allowed cells/sec slowdown before `--compare` fails the run, percent.
pub const REGRESSION_THRESHOLD_PCT: f64 = 10.0;

/// Entries whose *old* wall time is below this are never gated: at
/// millisecond scale a one-scheduler-tick difference reads as a double-
/// digit "regression" (pure timing noise).
pub const MIN_GATED_WALL_SECS: f64 = 0.1;

/// Diff two snapshots: per-workload wall and cells/sec deltas, with
/// the 10% regression gate applied when the modes match (and only to
/// entries long enough to time meaningfully — see
/// [`MIN_GATED_WALL_SECS`]).
pub fn compare(old: &BenchSnapshot, new: &BenchSnapshot) -> CompareReport {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for o in &old.entries {
        match new.entries.iter().find(|n| n.id == o.id) {
            Some(n) => rows.push(CompareRow {
                id: o.id.clone(),
                wall: (o.wall_secs, n.wall_secs),
                cells_per_sec: (o.cells_per_sec(), n.cells_per_sec()),
                events: (o.events, n.events),
            }),
            None => unmatched.push(o.id.clone()),
        }
    }
    for n in &new.entries {
        if !old.entries.iter().any(|o| o.id == n.id) {
            unmatched.push(n.id.clone());
        }
    }
    let gated = old.mode == new.mode;
    let regressions = if gated {
        rows.iter()
            .filter(|r| {
                r.wall.0 >= MIN_GATED_WALL_SECS
                    && r.cells_per_sec_delta_pct() < -REGRESSION_THRESHOLD_PCT
            })
            .map(|r| r.id.clone())
            .collect()
    } else {
        Vec::new()
    };
    // cells/events are deterministic within a mode: any same-mode drift
    // is a behaviour change, not a machine effect — always a failure.
    // Sharded entries are mode-independent by construction, so their
    // counts are held to the baseline even when the modes differ: a
    // moving sharded count means the parallel driver diverged from the
    // sequential engine somewhere, which the equivalence tests must
    // never let ship.
    let event_drift = rows
        .iter()
        .filter(|r| (gated || sharded_entry(&r.id)) && r.events.0 != r.events.1)
        .map(|r| r.id.clone())
        .collect();
    CompareReport {
        modes: (old.mode.clone(), new.mode.clone()),
        rows,
        unmatched,
        gated,
        regressions,
        event_drift,
    }
}

impl CompareReport {
    /// True when the diff should fail the invocation: a gated regression
    /// past the threshold, deterministic event counts drifting (same-mode
    /// for every entry, any-mode for sharded entries), or workloads
    /// missing on either side.
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.unmatched.is_empty() || !self.event_drift.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec![
            "workload".to_string(),
            "wall old".to_string(),
            "wall new".to_string(),
            "Δwall".to_string(),
            "cells/s old".to_string(),
            "cells/s new".to_string(),
            "Δcells/s".to_string(),
            "events".to_string(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.id.clone(),
                format!("{}s", f(r.wall.0, 3)),
                format!("{}s", f(r.wall.1, 3)),
                format!("{:+.1}%", r.wall_delta_pct()),
                f(r.cells_per_sec.0, 2),
                f(r.cells_per_sec.1, 2),
                format!("{:+.1}%", r.cells_per_sec_delta_pct()),
                if r.events.0 == r.events.1 {
                    r.events.0.to_string()
                } else {
                    format!("{} -> {} (!)", r.events.0, r.events.1)
                },
            ]);
        }
        let mut out = format!(
            "inrpp bench --compare ({} vs {})\n\n{}",
            self.modes.0,
            self.modes.1,
            t.render()
        );
        if !self.gated {
            out.push_str(
                "modes differ: the >10% cells/sec regression gate is skipped \
                 (wall clocks are not comparable across modes); sharded \
                 entries' event counts are still gated — their workloads \
                 are mode-independent\n",
            );
        }
        for id in &self.unmatched {
            out.push_str(&format!("workload set drifted: {id} missing on one side\n"));
        }
        for id in &self.regressions {
            out.push_str(&format!(
                "REGRESSION: {id} lost more than {REGRESSION_THRESHOLD_PCT}% cells/sec\n"
            ));
        }
        for id in &self.event_drift {
            out.push_str(&format!(
                "DETERMINISM DRIFT: {id} event count changed between same-mode \
                 runs — the workload's behaviour moved, not the machine\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let report = run_bench(
            true,
            vec![("context".to_string(), "unit \"test\"".to_string())],
        );
        assert_eq!(report.mode, "quick");
        assert_eq!(report.entries.len(), 9);
        assert_eq!(report.entries[0].id, "flowsim:fig4a");
        assert_eq!(report.entries[0].cells, 9);
        assert_eq!(
            report
                .entries
                .iter()
                .filter(|e| sharded_entry(&e.id))
                .count(),
            2,
            "both sharded driver entries must be present"
        );
        assert!(report.entries.iter().all(|e| e.events > 0));
        assert!(report.total_wall_secs() > 0.0);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"inrpp-bench-flowsim/1\""));
        assert!(json.contains("\"mode\":\"quick\""));
        assert!(json.contains("\"id\":\"packetsim:fig3-inrpp\""));
        assert!(json.contains("unit \\\"test\\\""), "{json}");
        assert!(json.ends_with("}\n"));
        let table = report.render_table();
        assert!(table.contains("flowsim:fig4a"));
        assert!(table.contains("context: unit \"test\""));
    }

    #[test]
    fn rate_helpers_guard_zero_wall() {
        let e = BenchEntry {
            id: "x".to_string(),
            wall_secs: 0.0,
            cells: 3,
            events: 5,
        };
        assert_eq!(e.cells_per_sec(), 0.0);
        assert_eq!(e.events_per_sec(), 0.0);
    }

    fn snapshot(mode: &str, wall: f64) -> BenchSnapshot {
        BenchSnapshot {
            mode: mode.to_string(),
            entries: vec![
                BenchEntry {
                    id: "flowsim:fig4a".to_string(),
                    wall_secs: wall,
                    cells: 9,
                    events: 1000,
                },
                BenchEntry {
                    id: "packetsim:fig3-inrpp".to_string(),
                    wall_secs: 0.5,
                    cells: 1,
                    events: 800,
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let report = BenchReport {
            mode: "full",
            entries: snapshot("full", 2.0).entries,
            notes: vec![("k".to_string(), "v".to_string())],
        };
        let parsed = BenchSnapshot::parse(&report.to_json()).expect("parses");
        assert_eq!(parsed.mode, "full");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].id, "flowsim:fig4a");
        assert_eq!(parsed.entries[0].wall_secs, 2.0);
        assert_eq!(parsed.entries[1].events, 800);
        assert!(BenchSnapshot::parse("{\"not\":\"bench\"}").is_err());
    }

    #[test]
    fn compare_flags_regressions_when_modes_match() {
        let old = snapshot("full", 1.0);
        let new = snapshot("full", 1.5); // 9 cells in 1.5s: -33% cells/sec
        let report = compare(&old, &new);
        assert!(report.gated);
        assert_eq!(report.regressions, vec!["flowsim:fig4a".to_string()]);
        assert!(report.failed());
        assert!(report.render_table().contains("REGRESSION"));
        // within threshold: clean exit
        let ok = compare(&old, &snapshot("full", 1.05));
        assert!(!ok.failed(), "{:?}", ok.regressions);
    }

    #[test]
    fn compare_fails_on_same_mode_event_drift() {
        let old = snapshot("full", 1.0);
        let mut new = snapshot("full", 1.0);
        new.entries[1].events += 1; // wall identical, determinism broken
        let report = compare(&old, &new);
        assert!(report.regressions.is_empty());
        assert_eq!(report.event_drift, vec!["packetsim:fig3-inrpp".to_string()]);
        assert!(report.failed());
        assert!(report.render_table().contains("DETERMINISM DRIFT"));
        // across modes event counts legitimately differ (quick vs full
        // horizons) — no gate
        let mut quick = snapshot("quick", 0.1);
        quick.entries[1].events = 5;
        assert!(compare(&old, &quick).event_drift.is_empty());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "runs both sharded bench workloads through both drivers — \
                  tens of seconds in debug; runs un-ignored in release \
                  (CI's `--release -- --include-ignored` step keeps the gate)"
    )]
    fn sharded_bench_workloads_match_the_sequential_engine() {
        // the cross-mode drift gate in `compare` leans on these counts
        // being the sequential engine's counts — pin the whole report,
        // not just the total
        for w in sharded_workloads() {
            let sequential = w.sim().run();
            let sharded = w
                .sim()
                .try_run_sharded(SHARD_BENCH_WORKERS, SHARD_BENCH_PARTITION_SEED)
                .expect("bench workloads satisfy the sharding preconditions");
            assert_eq!(
                sequential, sharded,
                "{} diverged between the sequential engine and the sharded driver",
                w.id
            );
        }
    }

    #[test]
    fn sharded_entries_gate_event_drift_even_across_modes() {
        let sharded = |events: u64| BenchEntry {
            id: "packetsim:line-inrpp-deep:sharded".to_string(),
            wall_secs: 0.4,
            cells: 1,
            events,
        };
        let mut old = snapshot("full", 1.0);
        old.entries.push(sharded(100_000));
        let mut new = snapshot("quick", 0.1);
        new.entries[1].events = 5; // non-sharded cross-mode drift: fine
        new.entries.push(sharded(100_001));
        let report = compare(&old, &new);
        assert!(!report.gated);
        assert_eq!(
            report.event_drift,
            vec!["packetsim:line-inrpp-deep:sharded".to_string()]
        );
        assert!(report.failed());
        assert!(report.render_table().contains("DETERMINISM DRIFT"));
        // an agreeing sharded count passes the cross-mode compare
        new.entries.last_mut().unwrap().events = 100_000;
        let clean = compare(&old, &new);
        assert!(clean.event_drift.is_empty());
        assert!(!clean.failed());
    }

    #[test]
    fn compare_skips_gate_across_modes_but_checks_coverage() {
        let old = snapshot("full", 10.0);
        let new = snapshot("quick", 0.1);
        let report = compare(&old, &new);
        assert!(!report.gated);
        assert!(report.regressions.is_empty());
        assert!(!report.failed());
        assert!(report.render_table().contains("modes differ"));
        // a dropped workload still fails even across modes
        let mut short = snapshot("quick", 0.1);
        short.entries.pop();
        let drifted = compare(&old, &short);
        assert!(drifted.failed());
        assert_eq!(drifted.unmatched, vec!["packetsim:fig3-inrpp".to_string()]);
    }
}
