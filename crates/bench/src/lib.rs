//! # inrpp-bench — the experiment harness
//!
//! Every table and figure of the paper (and every ablation) is a
//! declarative sweep in [`sweeps`], executed by the parallel runner
//! (`inrpp-runner`) and reachable three ways:
//!
//! * the unified `inrpp` CLI — `inrpp run table1 --threads 8 --format json`;
//! * sixteen thin legacy binaries (`table1_detours`, `fig4a_throughput`,
//!   …) that keep the original one-experiment entry points alive;
//! * the library functions in [`experiments`], unit-tested like any other
//!   code — binaries print, these functions compute.
//!
//! [`table`] holds the plain-text table renderer all output shares, and
//! [`perf`] the `inrpp bench` wall-clock recorder behind
//! `BENCH_flowsim.json`.
//!
//! | Artifact | Sweep id | Legacy binary |
//! |---|---|---|
//! | Table 1 | `table1` | `table1_detours` |
//! | Fig. 2 regimes | `fig2` | `fig2_regimes` |
//! | Fig. 3 worked example | `fig3` | `fig3_fairness` |
//! | Fig. 4a throughput bars | `fig4a` | `fig4a_throughput` |
//! | Fig. 4b stretch CDF | `fig4b` | `fig4b_stretch` |
//! | §3.3 custody arithmetic | `custody` | `custody_feasibility` |
//! | Ablations A1–A8 | `ablation-*`, `coexistence` | `ablation_*`, `coexistence` |
//! | Topology edge lists | `export-topologies` | `export_topologies` |
//! | Everything at once | `all` | `run_all` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod serve;
pub mod sweeps;
pub mod table;
