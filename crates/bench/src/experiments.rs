//! Experiment implementations — one function per paper artifact/ablation.
//!
//! Binaries print; these functions compute. Keeping them here makes every
//! experiment unit-testable and lets `run_all` compose them. Every
//! simulation runs through the `inrpp::session` facade — flow-level
//! experiments on the fluid engine, chunk-level ones on the packet
//! engine — and every public function returns a named row type (no
//! anonymous tuples).

use inrpp::config::InrppConfig;
use inrpp::fairness::{fig3_outcome, Fig3Outcome};
use inrpp::scenario::{fig4_topologies, run_fig4_row, Fig4Config, StrategyComparison};
use inrpp::session::{RunReport, Session, SessionStrategy, Transfer};
use inrpp_cache::sizing::{feasibility_table, FeasibilityRow};
use inrpp_packetsim::session::PacketEngine;
use inrpp_packetsim::{AimdConfig, PacketSimConfig, TransportKind};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::{ByteSize, Rate};
use inrpp_topology::detour::analyze;
use inrpp_topology::graph::Topology;
use inrpp_topology::rocketfuel::{generate_isp, Isp};
use inrpp_topology::stats::graph_stats;

/// Default seed used across all experiments (Telstra's AS number, in the
/// spirit of reproducibility folklore).
pub const SEED: u64 = 1221;

// ---------------------------------------------------------------- Table 1

/// One Table 1 row: measured (generated topology) vs published values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Which ISP.
    pub isp: Isp,
    /// Measured `[1-hop, 2-hop, 3+, N/A]` percentages.
    pub measured: [f64; 4],
    /// The paper's row.
    pub paper: [f64; 4],
    /// Generated topology size.
    pub nodes: usize,
    /// Generated link count.
    pub links: usize,
}

impl Table1Row {
    /// Largest absolute cell deviation from the paper.
    pub fn max_deviation(&self) -> f64 {
        self.measured
            .iter()
            .zip(self.paper.iter())
            .map(|(m, p)| (m - p).abs())
            .fold(0.0, f64::max)
    }
}

/// One Table 1 cell: regenerate and measure a single ISP's topology.
/// Split out so the sweep runner can schedule the nine ISPs in parallel.
pub fn table1_row(isp: Isp, seed: u64) -> Table1Row {
    let topo = generate_isp(isp, seed);
    let (_, stats) = analyze(&topo);
    let gs = graph_stats(&topo);
    Table1Row {
        isp,
        measured: [
            stats.one_hop_pct(),
            stats.two_hop_pct(),
            stats.three_plus_pct(),
            stats.none_pct(),
        ],
        paper: isp.paper_row(),
        nodes: gs.nodes,
        links: gs.links,
    }
}

/// Regenerate Table 1 on the calibrated topologies.
pub fn table1(seed: u64) -> Vec<Table1Row> {
    Isp::all()
        .into_iter()
        .map(|isp| table1_row(isp, seed))
        .collect()
}

/// The paper's "Average" row: per-column means of the measured and
/// published percentages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Average {
    /// Measured column means.
    pub measured: [f64; 4],
    /// Published column means.
    pub paper: [f64; 4],
}

/// Column averages — the paper's "Average" row.
pub fn table1_average(rows: &[Table1Row]) -> Table1Average {
    let n = rows.len().max(1) as f64;
    let mut measured = [0.0; 4];
    let mut paper = [0.0; 4];
    for r in rows {
        for i in 0..4 {
            measured[i] += r.measured[i] / n;
            paper[i] += r.paper[i] / n;
        }
    }
    Table1Average { measured, paper }
}

// ------------------------------------------------------------------ Fig. 3

/// The Fig. 3 worked example (re-exported for binaries).
pub fn fig3() -> Fig3Outcome {
    fig3_outcome()
}

// ------------------------------------------------------------------ Fig. 4

/// Fig. 4a: SP vs ECMP vs URP on the paper's three topologies.
pub fn fig4a(cfg: &Fig4Config) -> Vec<StrategyComparison> {
    fig4_topologies()
        .into_iter()
        .map(|isp| run_fig4_row(isp, cfg))
        .collect()
}

/// One point of a stretch CDF: fraction of traffic at stretch `<= x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Path stretch (subpath hops / primary hops).
    pub stretch: f64,
    /// Cumulative traffic fraction at or below this stretch.
    pub fraction: f64,
}

/// One topology's URP path-stretch CDF (Fig. 4b).
#[derive(Debug, Clone, PartialEq)]
pub struct StretchCdfRow {
    /// Topology display name.
    pub topology: String,
    /// The traffic-weighted CDF's step points.
    pub points: Vec<CdfPoint>,
}

/// Fig. 4b: the URP stretch CDF per topology.
pub fn fig4b(cfg: &Fig4Config) -> Vec<StretchCdfRow> {
    fig4a(cfg)
        .into_iter()
        .map(|row| {
            let topology = row.topology.clone();
            let mut fluid = row.urp.into_fluid().expect("fluid engine run");
            let points = fluid
                .stretch
                .points()
                .into_iter()
                .map(|(stretch, fraction)| CdfPoint { stretch, fraction })
                .collect();
            StretchCdfRow { topology, points }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 2

/// One Fig. 2 row: normalised throughput of the three resource-sharing
/// regimes on a single topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeRow {
    /// Topology display name.
    pub topology: String,
    /// Regime (i): single-path routing.
    pub sp: f64,
    /// Regime (ii): e2e multipath pooling (idealised MPTCP).
    pub mptcp: f64,
    /// Regime (iii): in-network pooling (URP).
    pub urp: f64,
}

/// One Fig. 2 cell: the three regimes on a single topology. Split out so
/// the sweep runner can schedule the topologies in parallel.
pub fn fig2_regime_row(isp: Isp, cfg: &Fig4Config) -> RegimeRow {
    use inrpp::scenario::build_workload;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let workload = build_workload(&topo, cfg);
    let run = |strategy: SessionStrategy| {
        Session::builder()
            .topology(&topo)
            .workload(workload.clone())
            .strategy(strategy)
            .horizon(cfg.duration)
            .seed(cfg.seed)
            .build()
            .expect("regime sessions are well-formed")
            .run()
            .expect("fluid engine accepts every regime")
            .throughput()
    };
    RegimeRow {
        topology: isp.name().to_string(),
        sp: run(SessionStrategy::Sp),
        mptcp: run(SessionStrategy::Mptcp),
        urp: run(SessionStrategy::Urp(cfg.inrp)),
    }
}

/// Fig. 2's three resource-utilisation regimes, made measurable:
/// single-path (i), e2e multipath pooling à la MPTCP (ii), and in-network
/// pooling (iii).
pub fn fig2_regimes(cfg: &Fig4Config) -> Vec<RegimeRow> {
    fig4_topologies()
        .into_iter()
        .map(|isp| fig2_regime_row(isp, cfg))
        .collect()
}

// ---------------------------------------------------------- §3.3 custody C1

/// The custody-cache feasibility result (paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CustodyFeasibility {
    /// The headline: how long a 10 GB cache holds a 40 Gbps line rate.
    pub headline: SimDuration,
    /// The rate × size sweep around it.
    pub rows: Vec<FeasibilityRow>,
}

/// The paper's headline custody claim plus a rate × size sweep.
pub fn custody_feasibility() -> CustodyFeasibility {
    let headline = inrpp_cache::sizing::holding_time(ByteSize::gb(10), Rate::gbps(40.0));
    let rows = feasibility_table(
        &[
            Rate::gbps(1.0),
            Rate::gbps(10.0),
            Rate::gbps(40.0),
            Rate::gbps(100.0),
        ],
        &[
            ByteSize::mb(100),
            ByteSize::gb(1),
            ByteSize::gb(10),
            ByteSize::gb(100),
        ],
        SimDuration::from_millis(500),
    );
    CustodyFeasibility { headline, rows }
}

// -------------------------------------------------------------- Ablation A1

/// One point of the A1 detour-depth sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPoint {
    /// Maximum detour depth (0 = plain SP).
    pub depth: u8,
    /// Normalised throughput at that depth.
    pub throughput: f64,
}

/// A1: detour depth sweep on the Fig. 4a setup (one topology).
pub fn ablation_detour_depth(isp: Isp, cfg: &Fig4Config, depths: &[u8]) -> Vec<DepthPoint> {
    use inrpp::scenario::build_workload;
    use inrpp_flowsim::strategy::InrpConfig;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let workload = build_workload(&topo, cfg);
    depths
        .iter()
        .map(|&depth| {
            let strategy = if depth == 0 {
                SessionStrategy::Sp
            } else {
                SessionStrategy::Urp(InrpConfig {
                    one_hop_detours: true,
                    two_hop_detours: depth >= 2,
                    ..InrpConfig::default()
                })
            };
            let throughput = Session::builder()
                .topology(&topo)
                .workload(workload.clone())
                .strategy(strategy)
                .horizon(cfg.duration)
                .seed(cfg.seed)
                .build()
                .expect("depth sessions are well-formed")
                .run()
                .expect("fluid engine accepts every depth")
                .throughput();
            DepthPoint { depth, throughput }
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A2

fn fig3_packet_cfg(mut inrpp: InrppConfig, horizon: SimDuration) -> PacketSimConfig {
    inrpp.interval = SimDuration::from_millis(50);
    PacketSimConfig {
        transport: TransportKind::Inrpp(inrpp),
        horizon,
        ..PacketSimConfig::default()
    }
}

/// One `chunks`-chunk transfer over the Fig. 3 bottleneck (`1 -> 4`),
/// described for the session facade.
fn fig3_transfer(topo: &Topology, flow: u64, chunks: u64) -> Transfer {
    Transfer {
        flow,
        src: topo.node_by_name("1").expect("fig3"),
        dst: topo.node_by_name("4").expect("fig3"),
        chunks,
        chunk_bytes: PacketSimConfig::default().chunk_bytes,
        start: SimTime::ZERO,
    }
}

/// Run `transfers` over the Fig. 3 network on the packet engine wrapped
/// around `config` — the shared shell of the chunk-level ablations.
fn run_fig3_packet(config: PacketSimConfig, transfers: Vec<Transfer>) -> RunReport {
    let topo = Topology::fig3();
    let strategy = match config.transport {
        TransportKind::Aimd(_) => SessionStrategy::Sp,
        _ => SessionStrategy::urp(),
    };
    Session::builder()
        .topology(&topo)
        .transfers(transfers)
        .strategy(strategy)
        .horizon(config.horizon)
        .seed(config.seed)
        .build()
        .expect("fig3 packet sessions are well-formed")
        .run_on(&PacketEngine::new(config), &mut [])
        .expect("fig3 packet sessions run")
}

/// One point of the A2 anticipation-window sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnticipationPoint {
    /// Anticipation window `A_c` in chunks.
    pub window_chunks: u64,
    /// Completion time of the bottleneck flow, seconds (`inf` when the
    /// flow missed the horizon).
    pub fct_secs: f64,
}

/// A2: anticipation window `A_c` sweep on the Fig. 3 network (packet
/// level).
pub fn ablation_anticipation(values: &[u64]) -> Vec<AnticipationPoint> {
    values
        .iter()
        .map(|&ac| {
            let topo = Topology::fig3();
            let cfg = fig3_packet_cfg(
                InrppConfig {
                    anticipation: ac,
                    ..InrppConfig::default()
                },
                SimDuration::from_secs(60),
            );
            let transfers = vec![fig3_transfer(&topo, 1, 600)];
            let report = run_fig3_packet(cfg, transfers);
            AnticipationPoint {
                window_chunks: ac,
                fct_secs: report.flows[0].fct_secs.unwrap_or(f64::INFINITY),
            }
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A3

/// One point of the A3 custody-budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBudgetPoint {
    /// Custody budget as a multiple of the bottleneck BDP.
    pub budget_x_bdp: f64,
    /// Chunks dropped in the run.
    pub chunks_dropped: u64,
    /// Chunks that took custody at least once.
    pub chunks_custodied: u64,
}

/// A3: custody budget sweep (×BDP of the bottleneck) under overload.
pub fn ablation_cache_size(multipliers: &[f64]) -> Vec<CacheBudgetPoint> {
    let topo = Topology::fig3();
    // BDP of the 2 Mbps bottleneck at ~20 ms RTT ≈ 5 KB; sweep around it
    let bdp =
        inrpp_cache::sizing::bandwidth_delay_product(Rate::mbps(2.0), SimDuration::from_millis(20));
    multipliers
        .iter()
        .map(|&m| {
            let budget = ByteSize::bytes(((bdp.as_bytes() as f64) * m).max(1.0) as u64);
            let cfg = fig3_packet_cfg(
                InrppConfig {
                    cache_budget: budget,
                    anticipation: 16,
                    ..InrppConfig::default()
                },
                SimDuration::from_secs(40),
            );
            let transfers = (0..2u64)
                .map(|f| fig3_transfer(&topo, f + 1, 1200))
                .collect();
            let report = run_fig3_packet(cfg, transfers);
            let summary = report.packet().expect("packet engine run");
            CacheBudgetPoint {
                budget_x_bdp: m,
                chunks_dropped: summary.chunks_dropped,
                chunks_custodied: summary.chunks_custodied,
            }
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A4

/// One side of A4: the 800-chunk Fig. 3 transfer over `transport` alone,
/// as a unified facade report. Split out so the sweep runner can schedule
/// the two contenders as independent cells.
pub fn ablation_transport_single(transport: TransportKind) -> RunReport {
    let topo = Topology::fig3();
    let cfg = match transport {
        TransportKind::Inrpp(ic) => fig3_packet_cfg(ic, SimDuration::from_secs(60)),
        other => PacketSimConfig {
            transport: other,
            horizon: SimDuration::from_secs(60),
            ..PacketSimConfig::default()
        },
    };
    let transfers = vec![fig3_transfer(&topo, 1, 800)];
    run_fig3_packet(cfg, transfers)
}

/// The two A4 contenders, side by side.
#[derive(Debug, Clone)]
pub struct TransportComparison {
    /// The paper's INRPP transport.
    pub inrpp: RunReport,
    /// The AIMD (TCP-like) baseline.
    pub aimd: RunReport,
}

/// A4: INRPP vs the AIMD baseline on the Fig. 3 bottleneck.
pub fn ablation_transport() -> TransportComparison {
    TransportComparison {
        inrpp: ablation_transport_single(TransportKind::Inrpp(InrppConfig::default())),
        aimd: ablation_transport_single(TransportKind::Aimd(AimdConfig::default())),
    }
}

// -------------------------------------------------------------- Ablation A5

/// One point of the A5 estimator-interval sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalPoint {
    /// Estimator interval `T_i` in milliseconds.
    pub interval_ms: u64,
    /// Completion time of the bottleneck flow, seconds.
    pub fct_secs: f64,
    /// Chunks that left the primary path at least once.
    pub chunks_detoured: u64,
}

/// A5: estimator interval `T_i` sweep.
pub fn ablation_interval(intervals_ms: &[u64]) -> Vec<IntervalPoint> {
    intervals_ms
        .iter()
        .map(|&ms| {
            let topo = Topology::fig3();
            let ic = InrppConfig {
                interval: SimDuration::from_millis(ms),
                ..InrppConfig::default()
            };
            let cfg = PacketSimConfig {
                transport: TransportKind::Inrpp(ic),
                horizon: SimDuration::from_secs(60),
                ..PacketSimConfig::default()
            };
            let transfers = vec![fig3_transfer(&topo, 1, 600)];
            let report = run_fig3_packet(cfg, transfers);
            IntervalPoint {
                interval_ms: ms,
                fct_secs: report.flows[0].fct_secs.unwrap_or(f64::INFINITY),
                chunks_detoured: report.packet().expect("packet run").chunks_detoured,
            }
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A6

/// One coexistence scenario outcome.
#[derive(Debug, Clone)]
pub struct CoexistenceRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Goodput of the probe AIMD flow (bits/s).
    pub aimd_goodput: f64,
    /// Goodput of the companion flow, if any (bits/s).
    pub companion_goodput: Option<f64>,
    /// Drops seen in the run.
    pub drops: u64,
}

/// The three A6 scenarios, in canonical presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoexistenceScenario {
    /// The AIMD probe crosses the bottleneck by itself.
    Alone,
    /// The probe shares the bottleneck with a second AIMD flow.
    VsAimd,
    /// The probe shares the network with an INRPP flow.
    VsInrpp,
}

impl CoexistenceScenario {
    /// All scenarios in presentation order.
    pub fn all() -> [CoexistenceScenario; 3] {
        [
            CoexistenceScenario::Alone,
            CoexistenceScenario::VsAimd,
            CoexistenceScenario::VsInrpp,
        ]
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            CoexistenceScenario::Alone => "AIMD alone",
            CoexistenceScenario::VsAimd => "AIMD + AIMD",
            CoexistenceScenario::VsInrpp => "AIMD + INRPP",
        }
    }
}

/// One A6 scenario: the probe AIMD flow (plus `scenario`'s companion, if
/// any) on the Fig. 3 network. Per-flow transport mixing is a
/// coexistence-specific capability, so this rides the raw
/// `PacketSim::add_transfer_as` API rather than the facade.
pub fn coexistence_scenario(scenario: CoexistenceScenario) -> CoexistenceRow {
    use inrpp_packetsim::{FlowTransport, PacketSim, TransferSpec};
    let topo = Topology::fig3();
    let src = topo.node_by_name("1").expect("fig3");
    let dst = topo.node_by_name("4").expect("fig3");
    let chunks = 500u64;
    let horizon = SimDuration::from_secs(120);
    let mixed = TransportKind::Mixed {
        inrpp: InrppConfig::default(),
        aimd: AimdConfig::default(),
    };
    let spec = |flow: u64| TransferSpec {
        flow,
        src,
        dst,
        chunks,
        start: SimTime::ZERO,
    };
    let goodput = |r: &inrpp_packetsim::PacketSimReport, idx: usize| -> f64 {
        let f = &r.flows[idx];
        match f.fct() {
            Some(d) => f.chunks_delivered as f64 * r.chunk_bytes.as_bits() as f64 / d.as_secs_f64(),
            None => 0.0,
        }
    };
    let mut sim = PacketSim::new(
        &topo,
        PacketSimConfig {
            transport: mixed,
            horizon,
            ..PacketSimConfig::default()
        },
    );
    sim.add_transfer_as(spec(1), FlowTransport::Aimd);
    let companion = match scenario {
        CoexistenceScenario::Alone => None,
        CoexistenceScenario::VsAimd => Some(FlowTransport::Aimd),
        CoexistenceScenario::VsInrpp => Some(FlowTransport::Inrpp),
    };
    if let Some(t) = companion {
        sim.add_transfer_as(spec(2), t);
    }
    let r = sim.run();
    CoexistenceRow {
        scenario: scenario.label(),
        aimd_goodput: goodput(&r, 0),
        companion_goodput: companion.map(|_| goodput(&r, 1)),
        drops: r.chunks_dropped,
    }
}

/// A6: TCP/IP coexistence (paper §4 future work). A probe AIMD flow
/// crosses the Fig. 3 bottleneck alone, next to a second AIMD flow, and
/// next to an INRPP flow. If INRPP detours rather than competes, the
/// probe's goodput with an INRPP companion should sit *between* the alone
/// and the AIMD-companion cases.
pub fn coexistence() -> Vec<CoexistenceRow> {
    CoexistenceScenario::all()
        .into_iter()
        .map(coexistence_scenario)
        .collect()
}

// -------------------------------------------------------------- Ablation A7

/// One point of the A7 load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a multiple of the capacity proxy.
    pub load: f64,
    /// SP throughput.
    pub sp: f64,
    /// URP throughput.
    pub urp: f64,
    /// URP's relative gain over SP, percent.
    pub gain_pct: f64,
}

/// A7: load sweep — URP's gain over SP as a function of offered load,
/// locating the crossover where pooling starts to matter.
pub fn load_sweep(isp: Isp, base: &Fig4Config, loads: &[f64]) -> Vec<LoadPoint> {
    use inrpp::scenario::compare_strategies;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), base.seed, base.capacities);
    loads
        .iter()
        .map(|&load| {
            let cfg = base.with_load(load);
            let row = compare_strategies(&topo, &cfg);
            let sp = row.sp.throughput();
            let urp = row.urp.throughput();
            let gain_pct = if sp > 0.0 {
                100.0 * (urp - sp) / sp
            } else {
                0.0
            };
            LoadPoint {
                load,
                sp,
                urp,
                gain_pct,
            }
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A8

/// The deterministic victim set for A8: up to `max_kill` randomly chosen
/// *non-bridge* links whose joint removal keeps `base` connected.
///
/// Candidates are shuffled with a stream derived from `seed`, then
/// admitted greedily — several individually safe removals can jointly
/// partition the graph, so each admission re-checks connectivity. The
/// result depends only on `(base, seed, max_kill)`, which lets parallel
/// sweep cells recompute an *identical* set instead of sharing state.
pub fn link_failure_victims(
    base: &Topology,
    seed: u64,
    max_kill: usize,
) -> Vec<inrpp_topology::LinkId> {
    use inrpp_sim::rng::SimRng;
    use inrpp_topology::detour::{classify_link, DetourClass};
    let mut candidates: Vec<inrpp_topology::LinkId> = base
        .link_ids()
        .filter(|&l| classify_link(base, l) != DetourClass::None)
        .collect();
    let mut rng = SimRng::from_seed_u64(seed ^ 0xFA11);
    rng.shuffle(&mut candidates);
    let mut safe_victims: Vec<inrpp_topology::LinkId> = Vec::new();
    for &cand in &candidates {
        if safe_victims.len() >= max_kill {
            break;
        }
        let mut trial = safe_victims.clone();
        trial.push(cand);
        if base.without_links(&trial).is_connected() {
            safe_victims = trial;
        }
    }
    safe_victims
}

/// One A8 measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePoint {
    /// Fraction of links failed.
    pub fraction: f64,
    /// SP throughput on the degraded network.
    pub sp: f64,
    /// URP throughput on the degraded network.
    pub urp: f64,
}

/// One A8 measurement point: fail the first `frac`-worth of `victims` on
/// `base` and run SP vs URP under the *intact* network's workload, so the
/// throughput change isolates the capacity lost to failures.
pub fn link_failure_point(
    base: &Topology,
    victims: &[inrpp_topology::LinkId],
    cfg: &Fig4Config,
    frac: f64,
) -> FailurePoint {
    let workload = inrpp::scenario::build_workload(base, cfg);
    let kill = (((base.link_count() as f64) * frac).round() as usize).min(victims.len());
    let topo = base.without_links(&victims[..kill]);
    let run = |strategy: SessionStrategy| {
        Session::builder()
            .topology(&topo)
            .workload(workload.clone())
            .strategy(strategy)
            .horizon(cfg.duration)
            .seed(cfg.seed)
            .build()
            .expect("failure sessions are well-formed")
            .run()
            .expect("fluid engine accepts both contenders")
            .throughput()
    };
    FailurePoint {
        fraction: frac,
        sp: run(SessionStrategy::Sp),
        urp: run(SessionStrategy::Urp(cfg.inrp)),
    }
}

/// Largest victim count any of `fractions` will request from `base`.
pub fn link_failure_max_kill(base: &Topology, fractions: &[f64]) -> usize {
    fractions
        .iter()
        .map(|f| ((base.link_count() as f64) * f).round() as usize)
        .max()
        .unwrap_or(0)
}

/// A8: link-failure robustness. Fail a fraction of randomly chosen
/// *non-bridge* links (bridges would partition the graph) and measure the
/// throughput of SP vs URP on the degraded topology.
pub fn ablation_link_failure(isp: Isp, cfg: &Fig4Config, fractions: &[f64]) -> Vec<FailurePoint> {
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let base = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let victims = link_failure_victims(&base, cfg.seed, link_failure_max_kill(&base, fractions));
    fractions
        .iter()
        .map(|&frac| link_failure_point(&base, &victims, cfg, frac))
        .collect()
}

/// A fast Fig. 4 configuration for tests and smoke runs (small horizon).
pub fn quick_fig4_config() -> Fig4Config {
    Fig4Config {
        duration: SimDuration::from_secs(2),
        mean_flow_bits: 50e6,
        load: 1.5,
        seed: SEED,
        ..Fig4Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tracks_paper() {
        let rows = table1(SEED);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.max_deviation() < 4.0,
                "{}: measured {:?} vs paper {:?}",
                r.isp.name(),
                r.measured,
                r.paper
            );
        }
        let avg = table1_average(&rows);
        for i in 0..4 {
            assert!(
                (avg.measured[i] - avg.paper[i]).abs() < 3.0,
                "avg col {i}: {avg:?}"
            );
        }
    }

    #[test]
    fn fig3_matches_paper() {
        let out = fig3();
        assert!((out.e2e_jain - 0.7353).abs() < 1e-3);
        assert!((out.inrpp_jain - 1.0).abs() < 1e-6);
    }

    #[test]
    fn custody_headline_is_two_seconds() {
        let feas = custody_feasibility();
        assert_eq!(feas.headline, SimDuration::from_secs(2));
        assert_eq!(feas.rows.len(), 16);
    }

    #[test]
    fn ablation_detour_depth_monotone_gain() {
        let res = ablation_detour_depth(Isp::Vsnl, &quick_fig4_config(), &[0, 1, 2]);
        assert_eq!(res.len(), 3);
        // depth 0 is plain SP; any detour depth must not hurt
        assert!(res[1].throughput >= res[0].throughput - 1e-9, "{res:?}");
        assert!(res[2].throughput >= res[1].throughput - 1e-9, "{res:?}");
    }

    #[test]
    fn ablation_anticipation_runs() {
        let res = ablation_anticipation(&[0, 4]);
        assert_eq!(res.len(), 2);
        for p in &res {
            assert!(p.fct_secs.is_finite(), "flow must complete");
        }
    }

    #[test]
    fn link_failure_degrades_gracefully() {
        let cfg = quick_fig4_config();
        let rows = ablation_link_failure(Isp::Vsnl, &cfg, &[0.0, 0.1]);
        assert_eq!(rows.len(), 2);
        for p in &rows {
            assert!(p.sp.is_finite() && p.urp.is_finite());
            assert!(p.urp >= p.sp * 0.98, "URP should not trail SP: {rows:?}");
        }
        // failures must not increase throughput under a fixed workload
        assert!(rows[1].sp <= rows[0].sp + 0.02, "{rows:?}");
    }

    #[test]
    fn load_sweep_is_unimodalish() {
        let cfg = quick_fig4_config();
        let rows = load_sweep(Isp::Vsnl, &cfg, &[0.1, 1.5]);
        assert_eq!(rows.len(), 2);
        // throughput ratio falls with load
        assert!(rows[0].sp > rows[1].sp, "{rows:?}");
        // light load delivers nearly everything
        assert!(rows[0].sp > 0.8, "{rows:?}");
    }

    #[test]
    fn coexistence_inrpp_is_not_predatory() {
        let rows = coexistence();
        assert_eq!(rows.len(), 3);
        let alone = rows[0].aimd_goodput;
        let vs_aimd = rows[1].aimd_goodput;
        let vs_inrpp = rows[2].aimd_goodput;
        assert!(alone > 0.0 && vs_aimd > 0.0 && vs_inrpp > 0.0);
        // sharing with anything costs goodput...
        assert!(vs_aimd < alone);
        // ...but an INRPP companion, which can detour around the shared
        // bottleneck, must hurt the AIMD probe no more than another AIMD
        // flow does (small tolerance for chunk-grain noise)
        assert!(
            vs_inrpp >= vs_aimd * 0.9,
            "INRPP starves AIMD: alone {alone:.0}, vs AIMD {vs_aimd:.0}, vs INRPP {vs_inrpp:.0}"
        );
    }

    #[test]
    fn ablation_transport_inrpp_wins() {
        let cmp = ablation_transport();
        let fi = cmp.inrpp.flows[0].fct_secs.expect("INRPP finishes");
        let fa = cmp.aimd.flows[0].fct_secs.expect("AIMD finishes");
        assert!(fi < fa, "INRPP {fi} should beat AIMD {fa}");
        assert_eq!(cmp.aimd.packet().expect("packet run").chunks_detoured, 0);
        assert_eq!(cmp.inrpp.strategy, "INRPP");
        assert_eq!(cmp.aimd.strategy, "AIMD");
    }

    #[test]
    fn fig4b_rows_are_typed_cdfs() {
        let rows = fig4b(&quick_fig4_config());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(!row.points.is_empty(), "{}: empty CDF", row.topology);
            // fractions are monotone and end at 1
            for w in row.points.windows(2) {
                assert!(w[0].fraction <= w[1].fraction + 1e-12);
                assert!(w[0].stretch < w[1].stretch);
            }
            let last = row.points.last().unwrap();
            assert!((last.fraction - 1.0).abs() < 1e-9);
        }
    }
}
