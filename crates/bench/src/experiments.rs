//! Experiment implementations — one function per paper artifact/ablation.
//!
//! Binaries print; these functions compute. Keeping them here makes every
//! experiment unit-testable and lets `run_all` compose them.

use inrpp::config::InrppConfig;
use inrpp::fairness::{fig3_outcome, Fig3Outcome};
use inrpp::scenario::{fig4_topologies, run_fig4_row, Fig4Config, StrategyComparison};
use inrpp_cache::sizing::{feasibility_table, FeasibilityRow};
use inrpp_flowsim::sim::{FlowSim, FlowSimConfig};
use inrpp_flowsim::strategy::{InrpConfig, InrpStrategy, SinglePathStrategy};
use inrpp_packetsim::{AimdConfig, PacketSim, PacketSimConfig, TransferSpec, TransportKind};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::{ByteSize, Rate};
use inrpp_topology::detour::analyze;
use inrpp_topology::graph::Topology;
use inrpp_topology::rocketfuel::{generate_isp, Isp};
use inrpp_topology::stats::graph_stats;

/// Default seed used across all experiments (Telstra's AS number, in the
/// spirit of reproducibility folklore).
pub const SEED: u64 = 1221;

// ---------------------------------------------------------------- Table 1

/// One Table 1 row: measured (generated topology) vs published values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Which ISP.
    pub isp: Isp,
    /// Measured `[1-hop, 2-hop, 3+, N/A]` percentages.
    pub measured: [f64; 4],
    /// The paper's row.
    pub paper: [f64; 4],
    /// Generated topology size.
    pub nodes: usize,
    /// Generated link count.
    pub links: usize,
}

impl Table1Row {
    /// Largest absolute cell deviation from the paper.
    pub fn max_deviation(&self) -> f64 {
        self.measured
            .iter()
            .zip(self.paper.iter())
            .map(|(m, p)| (m - p).abs())
            .fold(0.0, f64::max)
    }
}

/// One Table 1 cell: regenerate and measure a single ISP's topology.
/// Split out so the sweep runner can schedule the nine ISPs in parallel.
pub fn table1_row(isp: Isp, seed: u64) -> Table1Row {
    let topo = generate_isp(isp, seed);
    let (_, stats) = analyze(&topo);
    let gs = graph_stats(&topo);
    Table1Row {
        isp,
        measured: [
            stats.one_hop_pct(),
            stats.two_hop_pct(),
            stats.three_plus_pct(),
            stats.none_pct(),
        ],
        paper: isp.paper_row(),
        nodes: gs.nodes,
        links: gs.links,
    }
}

/// Regenerate Table 1 on the calibrated topologies.
pub fn table1(seed: u64) -> Vec<Table1Row> {
    Isp::all()
        .into_iter()
        .map(|isp| table1_row(isp, seed))
        .collect()
}

/// Column averages `(measured, paper)` — the paper's "Average" row.
pub fn table1_average(rows: &[Table1Row]) -> ([f64; 4], [f64; 4]) {
    let n = rows.len().max(1) as f64;
    let mut m = [0.0; 4];
    let mut p = [0.0; 4];
    for r in rows {
        for i in 0..4 {
            m[i] += r.measured[i] / n;
            p[i] += r.paper[i] / n;
        }
    }
    (m, p)
}

// ------------------------------------------------------------------ Fig. 3

/// The Fig. 3 worked example (re-exported for binaries).
pub fn fig3() -> Fig3Outcome {
    fig3_outcome()
}

// ------------------------------------------------------------------ Fig. 4

/// Fig. 4a: SP vs ECMP vs URP on the paper's three topologies.
pub fn fig4a(cfg: &Fig4Config) -> Vec<StrategyComparison> {
    fig4_topologies()
        .into_iter()
        .map(|isp| run_fig4_row(isp, cfg))
        .collect()
}

/// Fig. 4b: the URP stretch CDF per topology, as `(stretch, F)` points.
pub fn fig4b(cfg: &Fig4Config) -> Vec<(String, Vec<(f64, f64)>)> {
    fig4a(cfg)
        .into_iter()
        .map(|mut row| {
            let pts = row.urp.stretch.points();
            (row.topology, pts)
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 2

/// One Fig. 2 cell: the three regimes on a single topology. Returns
/// `(topology, sp, mptcp, urp)` throughputs. Split out so the sweep
/// runner can schedule the topologies in parallel.
pub fn fig2_regime_row(isp: Isp, cfg: &Fig4Config) -> (String, f64, f64, f64) {
    use inrpp::scenario::build_workload;
    use inrpp_flowsim::strategy::MptcpStrategy;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let workload = build_workload(&topo, cfg);
    let sim_cfg = FlowSimConfig {
        horizon: cfg.duration,
    };
    let sp = FlowSim::new(&topo, &SinglePathStrategy, &workload, sim_cfg)
        .run()
        .throughput();
    let mptcp = FlowSim::new(&topo, &MptcpStrategy::default(), &workload, sim_cfg)
        .run()
        .throughput();
    let strat = InrpStrategy::new(&topo, cfg.inrp);
    let urp = FlowSim::new(&topo, &strat, &workload, sim_cfg)
        .run()
        .throughput();
    (isp.name().to_string(), sp, mptcp, urp)
}

/// Fig. 2's three resource-utilisation regimes, made measurable:
/// single-path (i), e2e multipath pooling à la MPTCP (ii), and in-network
/// pooling (iii). Returns `(topology, sp, mptcp, urp)` throughputs.
pub fn fig2_regimes(cfg: &Fig4Config) -> Vec<(String, f64, f64, f64)> {
    fig4_topologies()
        .into_iter()
        .map(|isp| fig2_regime_row(isp, cfg))
        .collect()
}

// ---------------------------------------------------------- §3.3 custody C1

/// The paper's headline custody claim plus a rate × size sweep.
pub fn custody_feasibility() -> (SimDuration, Vec<FeasibilityRow>) {
    let headline =
        inrpp_cache::sizing::holding_time(ByteSize::gb(10), Rate::gbps(40.0));
    let rows = feasibility_table(
        &[
            Rate::gbps(1.0),
            Rate::gbps(10.0),
            Rate::gbps(40.0),
            Rate::gbps(100.0),
        ],
        &[
            ByteSize::mb(100),
            ByteSize::gb(1),
            ByteSize::gb(10),
            ByteSize::gb(100),
        ],
        SimDuration::from_millis(500),
    );
    (headline, rows)
}

// -------------------------------------------------------------- Ablation A1

/// A1: detour depth sweep on the Fig. 4a setup (one topology).
pub fn ablation_detour_depth(isp: Isp, cfg: &Fig4Config, depths: &[u8]) -> Vec<(u8, f64)> {
    use inrpp::scenario::build_workload;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let workload = build_workload(&topo, cfg);
    let sim_cfg = FlowSimConfig { horizon: cfg.duration };
    depths
        .iter()
        .map(|&depth| {
            let throughput = if depth == 0 {
                FlowSim::new(&topo, &SinglePathStrategy, &workload, sim_cfg)
                    .run()
                    .throughput()
            } else {
                let strat = InrpStrategy::new(
                    &topo,
                    InrpConfig {
                        one_hop_detours: true,
                        two_hop_detours: depth >= 2,
                        ..InrpConfig::default()
                    },
                );
                FlowSim::new(&topo, &strat, &workload, sim_cfg)
                    .run()
                    .throughput()
            };
            (depth, throughput)
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A2

fn fig3_packet_cfg(mut inrpp: InrppConfig, horizon: SimDuration) -> PacketSimConfig {
    inrpp.interval = SimDuration::from_millis(50);
    PacketSimConfig {
        transport: TransportKind::Inrpp(inrpp),
        horizon,
        ..PacketSimConfig::default()
    }
}

/// A2: anticipation window `A_c` sweep on the Fig. 3 network (packet
/// level); returns `(A_c, completion time of the bottleneck flow in s)`.
pub fn ablation_anticipation(values: &[u64]) -> Vec<(u64, f64)> {
    values
        .iter()
        .map(|&ac| {
            let topo = Topology::fig3();
            let cfg = fig3_packet_cfg(
                InrppConfig {
                    anticipation: ac,
                    ..InrppConfig::default()
                },
                SimDuration::from_secs(60),
            );
            let mut sim = PacketSim::new(&topo, cfg);
            sim.add_transfer(TransferSpec {
                flow: 1,
                src: topo.node_by_name("1").expect("fig3"),
                dst: topo.node_by_name("4").expect("fig3"),
                chunks: 600,
                start: SimTime::ZERO,
            });
            let r = sim.run();
            let fct = r.flows[0]
                .fct()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::INFINITY);
            (ac, fct)
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A3

/// A3: custody budget sweep (×BDP of the bottleneck) under overload;
/// returns `(multiplier, drops, custodied chunks)`.
pub fn ablation_cache_size(multipliers: &[f64]) -> Vec<(f64, u64, u64)> {
    let topo = Topology::fig3();
    // BDP of the 2 Mbps bottleneck at ~20 ms RTT ≈ 5 KB; sweep around it
    let bdp = inrpp_cache::sizing::bandwidth_delay_product(
        Rate::mbps(2.0),
        SimDuration::from_millis(20),
    );
    multipliers
        .iter()
        .map(|&m| {
            let budget = ByteSize::bytes(((bdp.as_bytes() as f64) * m).max(1.0) as u64);
            let cfg = fig3_packet_cfg(
                InrppConfig {
                    cache_budget: budget,
                    anticipation: 16,
                    ..InrppConfig::default()
                },
                SimDuration::from_secs(40),
            );
            let mut sim = PacketSim::new(&topo, cfg);
            for f in 0..2u64 {
                sim.add_transfer(TransferSpec {
                    flow: f + 1,
                    src: topo.node_by_name("1").expect("fig3"),
                    dst: topo.node_by_name("4").expect("fig3"),
                    chunks: 1200,
                    start: SimTime::ZERO,
                });
            }
            let r = sim.run();
            (m, r.chunks_dropped, r.chunks_custodied)
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A4

/// One side of A4: the 800-chunk Fig. 3 transfer over `transport` alone.
/// Split out so the sweep runner can schedule the two contenders as
/// independent cells.
pub fn ablation_transport_single(transport: TransportKind) -> inrpp_packetsim::PacketSimReport {
    let topo = Topology::fig3();
    let cfg = match transport {
        TransportKind::Inrpp(ic) => fig3_packet_cfg(ic, SimDuration::from_secs(60)),
        other => PacketSimConfig {
            transport: other,
            horizon: SimDuration::from_secs(60),
            ..PacketSimConfig::default()
        },
    };
    let mut sim = PacketSim::new(&topo, cfg);
    sim.add_transfer(TransferSpec {
        flow: 1,
        src: topo.node_by_name("1").expect("fig3"),
        dst: topo.node_by_name("4").expect("fig3"),
        chunks: 800,
        start: SimTime::ZERO,
    });
    sim.run()
}

/// A4: INRPP vs the AIMD baseline on the Fig. 3 bottleneck; returns the
/// two reports `(inrpp, aimd)` for side-by-side comparison.
pub fn ablation_transport() -> (
    inrpp_packetsim::PacketSimReport,
    inrpp_packetsim::PacketSimReport,
) {
    (
        ablation_transport_single(TransportKind::Inrpp(InrppConfig::default())),
        ablation_transport_single(TransportKind::Aimd(AimdConfig::default())),
    )
}

// -------------------------------------------------------------- Ablation A5

/// A5: estimator interval `T_i` sweep; returns `(interval ms, bottleneck
/// flow FCT s, detoured chunks)`.
pub fn ablation_interval(intervals_ms: &[u64]) -> Vec<(u64, f64, u64)> {
    intervals_ms
        .iter()
        .map(|&ms| {
            let topo = Topology::fig3();
            let ic = InrppConfig {
                interval: SimDuration::from_millis(ms),
                ..InrppConfig::default()
            };
            let cfg = PacketSimConfig {
                transport: TransportKind::Inrpp(ic),
                horizon: SimDuration::from_secs(60),
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSim::new(&topo, cfg);
            sim.add_transfer(TransferSpec {
                flow: 1,
                src: topo.node_by_name("1").expect("fig3"),
                dst: topo.node_by_name("4").expect("fig3"),
                chunks: 600,
                start: SimTime::ZERO,
            });
            let r = sim.run();
            let fct = r.flows[0]
                .fct()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::INFINITY);
            (ms, fct, r.chunks_detoured)
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A6

/// One coexistence scenario outcome.
#[derive(Debug, Clone)]
pub struct CoexistenceRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Goodput of the probe AIMD flow (bits/s).
    pub aimd_goodput: f64,
    /// Goodput of the companion flow, if any (bits/s).
    pub companion_goodput: Option<f64>,
    /// Drops seen in the run.
    pub drops: u64,
}

/// The three A6 scenarios, in canonical presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoexistenceScenario {
    /// The AIMD probe crosses the bottleneck by itself.
    Alone,
    /// The probe shares the bottleneck with a second AIMD flow.
    VsAimd,
    /// The probe shares the network with an INRPP flow.
    VsInrpp,
}

impl CoexistenceScenario {
    /// All scenarios in presentation order.
    pub fn all() -> [CoexistenceScenario; 3] {
        [
            CoexistenceScenario::Alone,
            CoexistenceScenario::VsAimd,
            CoexistenceScenario::VsInrpp,
        ]
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            CoexistenceScenario::Alone => "AIMD alone",
            CoexistenceScenario::VsAimd => "AIMD + AIMD",
            CoexistenceScenario::VsInrpp => "AIMD + INRPP",
        }
    }
}

/// One A6 scenario: the probe AIMD flow (plus `scenario`'s companion, if
/// any) on the Fig. 3 network. Split out so each scenario is one
/// independently schedulable sweep cell.
pub fn coexistence_scenario(scenario: CoexistenceScenario) -> CoexistenceRow {
    use inrpp_packetsim::FlowTransport;
    let topo = Topology::fig3();
    let src = topo.node_by_name("1").expect("fig3");
    let dst = topo.node_by_name("4").expect("fig3");
    let chunks = 500u64;
    let horizon = SimDuration::from_secs(120);
    let mixed = TransportKind::Mixed {
        inrpp: InrppConfig::default(),
        aimd: AimdConfig::default(),
    };
    let spec = |flow: u64| TransferSpec {
        flow,
        src,
        dst,
        chunks,
        start: SimTime::ZERO,
    };
    let goodput = |r: &inrpp_packetsim::PacketSimReport, idx: usize| -> f64 {
        let f = &r.flows[idx];
        match f.fct() {
            Some(d) => f.chunks_delivered as f64 * r.chunk_bytes.as_bits() as f64
                / d.as_secs_f64(),
            None => 0.0,
        }
    };
    let mut sim = PacketSim::new(
        &topo,
        PacketSimConfig {
            transport: mixed,
            horizon,
            ..PacketSimConfig::default()
        },
    );
    sim.add_transfer_as(spec(1), FlowTransport::Aimd);
    let companion = match scenario {
        CoexistenceScenario::Alone => None,
        CoexistenceScenario::VsAimd => Some(FlowTransport::Aimd),
        CoexistenceScenario::VsInrpp => Some(FlowTransport::Inrpp),
    };
    if let Some(t) = companion {
        sim.add_transfer_as(spec(2), t);
    }
    let r = sim.run();
    CoexistenceRow {
        scenario: scenario.label(),
        aimd_goodput: goodput(&r, 0),
        companion_goodput: companion.map(|_| goodput(&r, 1)),
        drops: r.chunks_dropped,
    }
}

/// A6: TCP/IP coexistence (paper §4 future work). A probe AIMD flow
/// crosses the Fig. 3 bottleneck alone, next to a second AIMD flow, and
/// next to an INRPP flow. If INRPP detours rather than competes, the
/// probe's goodput with an INRPP companion should sit *between* the alone
/// and the AIMD-companion cases.
pub fn coexistence() -> Vec<CoexistenceRow> {
    CoexistenceScenario::all()
        .into_iter()
        .map(coexistence_scenario)
        .collect()
}

// -------------------------------------------------------------- Ablation A7

/// A7: load sweep — URP's gain over SP as a function of offered load,
/// locating the crossover where pooling starts to matter. Returns
/// `(load multiplier, sp throughput, urp throughput, gain %)`.
pub fn load_sweep(isp: Isp, base: &Fig4Config, loads: &[f64]) -> Vec<(f64, f64, f64, f64)> {
    use inrpp::scenario::compare_strategies;
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let topo = generate_with_capacities(&isp.profile(), base.seed, base.capacities);
    loads
        .iter()
        .map(|&load| {
            let cfg = base.with_load(load);
            let row = compare_strategies(&topo, &cfg);
            let sp = row.sp.throughput();
            let urp = row.urp.throughput();
            let gain = if sp > 0.0 { 100.0 * (urp - sp) / sp } else { 0.0 };
            (load, sp, urp, gain)
        })
        .collect()
}

// -------------------------------------------------------------- Ablation A8

/// The deterministic victim set for A8: up to `max_kill` randomly chosen
/// *non-bridge* links whose joint removal keeps `base` connected.
///
/// Candidates are shuffled with a stream derived from `seed`, then
/// admitted greedily — several individually safe removals can jointly
/// partition the graph, so each admission re-checks connectivity. The
/// result depends only on `(base, seed, max_kill)`, which lets parallel
/// sweep cells recompute an *identical* set instead of sharing state.
pub fn link_failure_victims(
    base: &Topology,
    seed: u64,
    max_kill: usize,
) -> Vec<inrpp_topology::LinkId> {
    use inrpp_sim::rng::SimRng;
    use inrpp_topology::detour::{classify_link, DetourClass};
    let mut candidates: Vec<inrpp_topology::LinkId> = base
        .link_ids()
        .filter(|&l| classify_link(base, l) != DetourClass::None)
        .collect();
    let mut rng = SimRng::from_seed_u64(seed ^ 0xFA11);
    rng.shuffle(&mut candidates);
    let mut safe_victims: Vec<inrpp_topology::LinkId> = Vec::new();
    for &cand in &candidates {
        if safe_victims.len() >= max_kill {
            break;
        }
        let mut trial = safe_victims.clone();
        trial.push(cand);
        if base.without_links(&trial).is_connected() {
            safe_victims = trial;
        }
    }
    safe_victims
}

/// One A8 measurement point: fail the first `frac`-worth of `victims` on
/// `base` and run SP vs URP under the *intact* network's workload, so the
/// throughput change isolates the capacity lost to failures. Returns
/// `(frac, sp, urp)`.
pub fn link_failure_point(
    base: &Topology,
    victims: &[inrpp_topology::LinkId],
    cfg: &Fig4Config,
    frac: f64,
) -> (f64, f64, f64) {
    let workload = inrpp::scenario::build_workload(base, cfg);
    let sim_cfg = FlowSimConfig {
        horizon: cfg.duration,
    };
    let kill = (((base.link_count() as f64) * frac).round() as usize).min(victims.len());
    let topo = base.without_links(&victims[..kill]);
    let sp = FlowSim::new(&topo, &SinglePathStrategy, &workload, sim_cfg)
        .run()
        .throughput();
    let strat = InrpStrategy::new(&topo, cfg.inrp);
    let urp = FlowSim::new(&topo, &strat, &workload, sim_cfg)
        .run()
        .throughput();
    (frac, sp, urp)
}

/// Largest victim count any of `fractions` will request from `base`.
pub fn link_failure_max_kill(base: &Topology, fractions: &[f64]) -> usize {
    fractions
        .iter()
        .map(|f| ((base.link_count() as f64) * f).round() as usize)
        .max()
        .unwrap_or(0)
}

/// A8: link-failure robustness. Fail a fraction of randomly chosen
/// *non-bridge* links (bridges would partition the graph) and measure the
/// throughput of SP vs URP on the degraded topology. Returns
/// `(failed fraction, sp, urp)` per step.
pub fn ablation_link_failure(
    isp: Isp,
    cfg: &Fig4Config,
    fractions: &[f64],
) -> Vec<(f64, f64, f64)> {
    use inrpp_topology::rocketfuel::generate_with_capacities;
    let base = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    let victims = link_failure_victims(&base, cfg.seed, link_failure_max_kill(&base, fractions));
    fractions
        .iter()
        .map(|&frac| link_failure_point(&base, &victims, cfg, frac))
        .collect()
}

/// A fast Fig. 4 configuration for tests and smoke runs (small horizon).
pub fn quick_fig4_config() -> Fig4Config {
    Fig4Config {
        duration: SimDuration::from_secs(2),
        mean_flow_bits: 50e6,
        load: 1.5,
        seed: SEED,
        ..Fig4Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tracks_paper() {
        let rows = table1(SEED);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.max_deviation() < 4.0,
                "{}: measured {:?} vs paper {:?}",
                r.isp.name(),
                r.measured,
                r.paper
            );
        }
        let (m, p) = table1_average(&rows);
        for i in 0..4 {
            assert!((m[i] - p[i]).abs() < 3.0, "avg col {i}: {m:?} vs {p:?}");
        }
    }

    #[test]
    fn fig3_matches_paper() {
        let out = fig3();
        assert!((out.e2e_jain - 0.7353).abs() < 1e-3);
        assert!((out.inrpp_jain - 1.0).abs() < 1e-6);
    }

    #[test]
    fn custody_headline_is_two_seconds() {
        let (headline, rows) = custody_feasibility();
        assert_eq!(headline, SimDuration::from_secs(2));
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn ablation_detour_depth_monotone_gain() {
        let res = ablation_detour_depth(Isp::Vsnl, &quick_fig4_config(), &[0, 1, 2]);
        assert_eq!(res.len(), 3);
        // depth 0 is plain SP; any detour depth must not hurt
        assert!(res[1].1 >= res[0].1 - 1e-9, "{res:?}");
        assert!(res[2].1 >= res[1].1 - 1e-9, "{res:?}");
    }

    #[test]
    fn ablation_anticipation_runs() {
        let res = ablation_anticipation(&[0, 4]);
        assert_eq!(res.len(), 2);
        for (_, fct) in &res {
            assert!(fct.is_finite(), "flow must complete");
        }
    }

    #[test]
    fn link_failure_degrades_gracefully() {
        let cfg = quick_fig4_config();
        let rows = ablation_link_failure(Isp::Vsnl, &cfg, &[0.0, 0.1]);
        assert_eq!(rows.len(), 2);
        for (_, sp, urp) in &rows {
            assert!(sp.is_finite() && urp.is_finite());
            assert!(*urp >= *sp * 0.98, "URP should not trail SP: {rows:?}");
        }
        // failures must not increase throughput under a fixed workload
        assert!(rows[1].1 <= rows[0].1 + 0.02, "{rows:?}");
    }

    #[test]
    fn load_sweep_is_unimodalish() {
        let cfg = quick_fig4_config();
        let rows = load_sweep(Isp::Vsnl, &cfg, &[0.1, 1.5]);
        assert_eq!(rows.len(), 2);
        // throughput ratio falls with load
        assert!(rows[0].1 > rows[1].1, "{rows:?}");
        // light load delivers nearly everything
        assert!(rows[0].1 > 0.8, "{rows:?}");
    }

    #[test]
    fn coexistence_inrpp_is_not_predatory() {
        let rows = coexistence();
        assert_eq!(rows.len(), 3);
        let alone = rows[0].aimd_goodput;
        let vs_aimd = rows[1].aimd_goodput;
        let vs_inrpp = rows[2].aimd_goodput;
        assert!(alone > 0.0 && vs_aimd > 0.0 && vs_inrpp > 0.0);
        // sharing with anything costs goodput...
        assert!(vs_aimd < alone);
        // ...but an INRPP companion, which can detour around the shared
        // bottleneck, must hurt the AIMD probe no more than another AIMD
        // flow does (small tolerance for chunk-grain noise)
        assert!(
            vs_inrpp >= vs_aimd * 0.9,
            "INRPP starves AIMD: alone {alone:.0}, vs AIMD {vs_aimd:.0}, vs INRPP {vs_inrpp:.0}"
        );
    }

    #[test]
    fn ablation_transport_inrpp_wins() {
        let (inrpp, aimd) = ablation_transport();
        let fi = inrpp.flows[0].fct().expect("INRPP finishes");
        let fa = aimd.flows[0].fct().expect("AIMD finishes");
        assert!(fi < fa, "INRPP {fi} should beat AIMD {fa}");
        assert_eq!(aimd.chunks_detoured, 0);
    }
}
