//! Minimal aligned-text table renderer for experiment output.
//!
//! No dependency needed: the binaries print fixed-width tables and CSV.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    ///
    /// # Panics
    /// Panics on arity mismatch — a malformed experiment table is a bug.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-padded columns and a separator rule.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}", w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        // saturate: a zero-column table (`Table::default()`) must render as
        // two empty lines, not underflow `ncol - 1` and panic
        let rule_len = widths.iter().sum::<usize>() + 2 * ncol.saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with fixed precision (helper for experiment rows).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Render one or more `(x, y)` series as a fixed-size ASCII scatter/step
/// plot — enough to eyeball a CDF or a sweep without leaving the terminal.
/// Each series is drawn with its own glyph (`*`, `o`, `+`, `x`, …);
/// y-axis labels show the data range.
pub fn ascii_plot(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3, "plot area too small");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in pts.iter() {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y1:>7.2} |")
        } else if i == height - 1 {
            format!("{y0:>7.2} |")
        } else {
            "        |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "        +{}\n         {:<10.2}{:>width$.2}\n",
        "-".repeat(width),
        x0,
        x1,
        width = width - 10
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("         {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
        // column alignment: "value" column starts at same offset
        let off0 = lines[0].find("value").unwrap();
        let off3 = lines[3].find("22").unwrap();
        assert_eq!(off0, off3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_column_table_renders_without_panic() {
        // regression: rule_len used `2 * (ncol - 1)` on a usize, so a
        // zero-column table underflowed and panicked
        let t = Table::default();
        let s = t.render();
        assert_eq!(s, "\n\n");
        assert_eq!(t.to_csv(), "\n");
        let empty_header = Table::new(Vec::<String>::new());
        let _ = empty_header.render();
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(52.8), "52.80%");
    }

    #[test]
    fn ascii_plot_places_extremes() {
        let pts = [(0.0, 0.0), (1.0, 1.0)];
        let s = ascii_plot(&[("line", &pts)], 20, 5);
        let lines: Vec<&str> = s.lines().collect();
        // top row holds the max point, bottom data row the min
        assert!(lines[0].contains('*'), "{s}");
        assert!(lines[4].contains('*'), "{s}");
        assert!(lines[0].contains("1.00"));
        assert!(lines[4].contains("0.00"));
        assert!(s.contains("* line"));
    }

    #[test]
    fn ascii_plot_multi_series_glyphs() {
        let a = [(0.0, 0.0), (1.0, 0.5)];
        let b = [(0.0, 1.0), (1.0, 0.2)];
        let s = ascii_plot(&[("a", &a), ("b", &b)], 16, 4);
        assert!(s.contains('*') && s.contains('o'), "{s}");
        assert!(s.contains("* a") && s.contains("o b"));
    }

    #[test]
    fn ascii_plot_degenerate_inputs() {
        assert_eq!(ascii_plot(&[("e", &[])], 16, 4), "(no data)\n");
        // constant series must not divide by zero
        let c = [(1.0, 2.0), (1.0, 2.0)];
        let s = ascii_plot(&[("c", &c)], 16, 4);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_plot_minimum_size() {
        let _ = ascii_plot(&[("x", &[(0.0, 0.0)])], 4, 2);
    }
}
