//! Every paper artifact and ablation as a declarative [`SweepSpec`] for
//! the parallel runner.
//!
//! This module is the single registry the `inrpp` CLI, the sixteen legacy
//! binaries, and the determinism gate all share: [`build`] turns an
//! experiment id (`"table1"`, `"fig4a"`, `"ablation-interval"`, …) into a
//! spec whose cells are the experiment's independent simulation units —
//! one ISP, one parameter point, one transport, one (topology × seed)
//! pair. The runner executes cells on a worker pool and merges in
//! canonical order, so every experiment gains `--threads` and
//! machine-readable output without touching its science.
//!
//! Cells must stay pure: they recompute shared inputs (topologies, victim
//! sets) deterministically from seeds instead of sharing state, which is
//! what keeps reports byte-identical at any thread count.

use inrpp::scenario::{run_fig4_row, Fig4Config};
use inrpp::sweep::Grid;
use inrpp_runner::{run_sweep, CellOutput, RunnerConfig, SweepReport, SweepSpec};
use inrpp_sim::time::SimDuration;
use inrpp_topology::rocketfuel::{generate_isp, generate_with_capacities, Isp};

use crate::experiments::{self, quick_fig4_config, CoexistenceScenario, SEED};
use crate::table::{ascii_plot, f, pct, Table};

/// Knobs shared by every sweep builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Use the fast (short-horizon) configuration where the experiment
    /// has one — the legacy `--quick` flag.
    pub quick: bool,
    /// Number of seeds for the Fig. 4a aggregation (1 = the calibrated
    /// single-seed run).
    pub seeds: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            quick: false,
            seeds: 1,
        }
    }
}

/// Registry grouping for `inrpp list` (the ids stay flat for `run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Reproductions of the paper's own tables and figures.
    Paper,
    /// Ablations and follow-on studies (A1–A8).
    Ablation,
    /// The scenario catalog (topology family × traffic family).
    Scenario,
    /// Data-export utilities.
    Utility,
}

impl Category {
    /// Every category, in `inrpp list` presentation order.
    pub fn all() -> [Category; 4] {
        [
            Category::Paper,
            Category::Ablation,
            Category::Scenario,
            Category::Utility,
        ]
    }

    /// Section heading in the grouped listing.
    pub fn title(&self) -> &'static str {
        match self {
            Category::Paper => "paper figures & tables",
            Category::Ablation => "ablations & studies",
            Category::Scenario => "scenario catalog (topology family x traffic family)",
            Category::Utility => "utilities",
        }
    }
}

/// One registered sweep: id, one-line description, listing category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// The id `build` / `inrpp run` accept.
    pub id: &'static str,
    /// One-line description for the listing.
    pub desc: &'static str,
    /// Which `inrpp list` section the sweep belongs to.
    pub category: Category,
}

const fn exp(id: &'static str, desc: &'static str, category: Category) -> ExperimentInfo {
    ExperimentInfo { id, desc, category }
}

/// Every registered sweep, in `run all` execution order.
pub const EXPERIMENTS: &[ExperimentInfo] = &[
    exp(
        "table1",
        "Table 1: available detour paths on the nine ISP topologies",
        Category::Paper,
    ),
    exp(
        "fig2",
        "Fig. 2: single-path vs e2e multipath vs in-network pooling",
        Category::Paper,
    ),
    exp(
        "fig3",
        "Fig. 3: global fairness worked example (Jain index)",
        Category::Paper,
    ),
    exp(
        "fig4a",
        "Fig. 4a: SP/ECMP/URP throughput under Poisson overload",
        Category::Paper,
    ),
    exp("fig4b", "Fig. 4b: URP path-stretch CDF", Category::Paper),
    exp(
        "custody",
        "Sec. 3.3: custody-cache feasibility arithmetic",
        Category::Paper,
    ),
    exp(
        "ablation-detour-depth",
        "A1: throughput vs detour depth",
        Category::Ablation,
    ),
    exp(
        "ablation-anticipation",
        "A2: anticipation window A_c sweep",
        Category::Ablation,
    ),
    exp(
        "ablation-cache-size",
        "A3: custody budget sweep (x BDP)",
        Category::Ablation,
    ),
    exp(
        "ablation-backpressure",
        "A4: INRPP vs AIMD transport head-to-head",
        Category::Ablation,
    ),
    exp(
        "ablation-interval",
        "A5: estimator interval T_i sweep",
        Category::Ablation,
    ),
    exp(
        "coexistence",
        "A6: does INRPP starve a TCP-like AIMD flow?",
        Category::Ablation,
    ),
    exp(
        "ablation-load-sweep",
        "A7: URP gain vs offered load",
        Category::Ablation,
    ),
    exp(
        "ablation-link-failure",
        "A8: SP vs URP under growing link failures",
        Category::Ablation,
    ),
    exp(
        "export-topologies",
        "Export the nine calibrated ISP topologies as edge lists",
        Category::Utility,
    ),
    exp(
        "scenario:het-dumbbell:flash-crowd",
        "Catalog: heterogeneous-access dumbbell x flash-crowd step load",
        Category::Scenario,
    ),
    exp(
        "scenario:het-dumbbell:diurnal",
        "Catalog: heterogeneous-access dumbbell x diurnal arrival modulation",
        Category::Scenario,
    ),
    exp(
        "scenario:het-dumbbell:heavy-tail",
        "Catalog: heterogeneous-access dumbbell x heavy-tailed flow sizes",
        Category::Scenario,
    ),
    exp(
        "scenario:het-dumbbell:mixed",
        "Catalog: heterogeneous-access dumbbell x mixed elastic + constant-rate",
        Category::Scenario,
    ),
    exp(
        "scenario:parking-lot:flash-crowd",
        "Catalog: parking-lot multi-bottleneck chain x flash-crowd step load",
        Category::Scenario,
    ),
    exp(
        "scenario:parking-lot:diurnal",
        "Catalog: parking-lot multi-bottleneck chain x diurnal modulation",
        Category::Scenario,
    ),
    exp(
        "scenario:parking-lot:heavy-tail",
        "Catalog: parking-lot multi-bottleneck chain x heavy-tailed sizes",
        Category::Scenario,
    ),
    exp(
        "scenario:parking-lot:mixed",
        "Catalog: parking-lot multi-bottleneck chain x mixed elastic + CBR",
        Category::Scenario,
    ),
    exp(
        "scenario:fat-tree:flash-crowd",
        "Catalog: 4-ary fat-tree fabric x flash-crowd step load",
        Category::Scenario,
    ),
    exp(
        "scenario:fat-tree:diurnal",
        "Catalog: 4-ary fat-tree fabric x diurnal arrival modulation",
        Category::Scenario,
    ),
    exp(
        "scenario:fat-tree:heavy-tail",
        "Catalog: 4-ary fat-tree fabric x heavy-tailed flow sizes",
        Category::Scenario,
    ),
    exp(
        "scenario:fat-tree:mixed",
        "Catalog: 4-ary fat-tree fabric x mixed elastic + constant-rate",
        Category::Scenario,
    ),
    exp(
        "scenario:scale-free:flash-crowd",
        "Catalog: Barabasi-Albert scale-free graph x flash-crowd step load",
        Category::Scenario,
    ),
    exp(
        "scenario:scale-free:diurnal",
        "Catalog: Barabasi-Albert scale-free graph x diurnal modulation",
        Category::Scenario,
    ),
    exp(
        "scenario:scale-free:heavy-tail",
        "Catalog: Barabasi-Albert scale-free graph x heavy-tailed sizes",
        Category::Scenario,
    ),
    exp(
        "scenario:scale-free:mixed",
        "Catalog: Barabasi-Albert scale-free graph x mixed elastic + CBR",
        Category::Scenario,
    ),
];

/// The grouped `inrpp list` rendering: one section per [`Category`], ids
/// in registry (execution) order within each. Snapshot-gated by
/// `tests/golden_snapshots.rs`.
pub fn render_experiment_list() -> String {
    let mut out = format!("{:<36} description\n{}\n", "experiment", "-".repeat(80));
    for cat in Category::all() {
        out.push_str(&format!("\n{}\n", cat.title()));
        for e in EXPERIMENTS.iter().filter(|e| e.category == cat) {
            out.push_str(&format!("  {:<34} {}\n", e.id, e.desc));
        }
    }
    out.push_str(&format!(
        "\n{:<36} every experiment above, in order\n",
        "all"
    ));
    out
}

/// Build the sweep for `id`, or `None` for an unknown id. `"all"` is a
/// CLI-level alias handled by the callers, not a sweep.
pub fn build(id: &str, opts: &SweepOptions) -> Option<SweepSpec> {
    match id {
        "table1" => Some(table1_spec()),
        "fig2" => Some(fig2_spec(opts)),
        "fig3" => Some(fig3_spec()),
        "fig4a" => Some(fig4a_spec(opts)),
        "fig4b" => Some(fig4b_spec(opts)),
        "custody" => Some(custody_spec()),
        "ablation-detour-depth" => Some(detour_depth_spec(opts)),
        "ablation-anticipation" => Some(anticipation_spec()),
        "ablation-cache-size" => Some(cache_size_spec()),
        "ablation-backpressure" => Some(backpressure_spec()),
        "ablation-interval" => Some(interval_spec()),
        "coexistence" => Some(coexistence_spec()),
        "ablation-load-sweep" => Some(load_sweep_spec(opts)),
        "ablation-link-failure" => Some(link_failure_spec(opts)),
        "export-topologies" => Some(export_spec()),
        id if id.starts_with("scenario:") => scenario_spec(id, opts),
        _ => None,
    }
}

// ------------------------------------------------------- scenario catalog

/// Build the sweep for one scenario-catalog cell
/// (`scenario:<topology>:<traffic>`): one cell per strategy of the
/// SP/ECMP/URP trio, every cell regenerating the identical topology and
/// workload from the scenario seed so the sweep stays embarrassingly
/// parallel and byte-stable at any thread count.
fn scenario_spec(id: &str, opts: &SweepOptions) -> Option<SweepSpec> {
    use inrpp::scenario::{scenario_by_id, ScenarioStrategy};
    let mut sc = scenario_by_id(id)?;
    if opts.quick {
        sc = sc.quick();
    }
    let title = format!(
        "Scenario {} x {} — SP/ECMP/URP trio (load {}x, {}s window{})",
        sc.topology.slug(),
        sc.traffic.slug(),
        sc.load,
        sc.duration.as_secs_f64(),
        if opts.quick { ", quick mode" } else { "" },
    );
    let mut spec = SweepSpec::new(
        id,
        title.as_str(),
        [
            "strategy",
            "throughput",
            "delivered Mbit",
            "completed/arrived",
            "mean FCT",
            "jain",
        ],
    );
    for strat in ScenarioStrategy::all() {
        spec.push_cell(strat.name(), move |_ctx| {
            let r = sc.run_one(strat);
            CellOutput::new()
                .with_row([
                    r.strategy.clone(),
                    f(r.throughput(), 3),
                    f(r.delivered_bits / 1e6, 1),
                    format!("{}/{}", r.completed_flows, r.arrived_flows),
                    format!("{}s", f(r.mean_fct_secs, 3)),
                    f(r.mean_jain, 3),
                ])
                .with_data([r.throughput()])
        });
    }
    spec.set_finish(|outputs, report| {
        let sp = outputs[0].data[0];
        let urp = outputs[2].data[0];
        if sp > 0.0 {
            report.notes.push(format!(
                "URP vs SP throughput: {:+.1}%",
                100.0 * (urp - sp) / sp
            ));
        }
    });
    spec.push_note(
        "catalog cell: in-network pooling (URP) against the e2e baselines on a \
         synthetic topology x traffic family composition; see ARCHITECTURE.md \
         'Scenario catalog'",
    );
    Some(spec)
}

// ---------------------------------------------------------------- Table 1

fn table1_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "table1",
        "Table 1 — Available Detour Paths (measured vs paper)",
        [
            "ISP", "nodes", "links", "1 hop", "(paper)", "2 hops", "(paper)", "3+ hops", "(paper)",
            "N/A", "(paper)",
        ],
    );
    for isp in Isp::all() {
        spec.push_cell(isp.name(), move |_ctx| {
            let r = experiments::table1_row(isp, SEED);
            CellOutput::new()
                .with_row([
                    r.isp.name().to_string(),
                    r.nodes.to_string(),
                    r.links.to_string(),
                    pct(r.measured[0]),
                    pct(r.paper[0]),
                    pct(r.measured[1]),
                    pct(r.paper[1]),
                    pct(r.measured[2]),
                    pct(r.paper[2]),
                    pct(r.measured[3]),
                    pct(r.paper[3]),
                ])
                .with_data(r.measured.iter().chain(r.paper.iter()).copied())
        });
    }
    spec.set_finish(|outputs, report| {
        // rebuild just enough of each Table1Row from the cell payloads to
        // reuse the library's averaging/deviation arithmetic — one copy of
        // the "Average" row convention, shared with the unit tests
        let rows: Vec<experiments::Table1Row> = Isp::all()
            .into_iter()
            .zip(outputs)
            .map(|(isp, o)| experiments::Table1Row {
                isp,
                measured: [o.data[0], o.data[1], o.data[2], o.data[3]],
                paper: [o.data[4], o.data[5], o.data[6], o.data[7]],
                nodes: 0,
                links: 0,
            })
            .collect();
        let avg = experiments::table1_average(&rows);
        let (m, p) = (avg.measured, avg.paper);
        let worst = rows
            .iter()
            .map(experiments::Table1Row::max_deviation)
            .fold(0.0f64, f64::max);
        report.rows.push(vec![
            "Average".to_string(),
            String::new(),
            String::new(),
            pct(m[0]),
            pct(p[0]),
            pct(m[1]),
            pct(p[1]),
            pct(m[2]),
            pct(p[2]),
            pct(m[3]),
            pct(p[3]),
        ]);
        report.notes.push(format!(
            "worst per-cell deviation from the paper: {worst:.2} percentage points"
        ));
    });
    spec
}

// ------------------------------------------------------------------ Fig. 2

fn fig2_cfg(opts: &SweepOptions) -> Fig4Config {
    if opts.quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(4),
            load: 1.25,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    }
}

fn fig2_spec(opts: &SweepOptions) -> SweepSpec {
    let cfg = fig2_cfg(opts);
    let mut spec = SweepSpec::new(
        "fig2",
        format!(
            "Fig. 2 regimes — single path vs e2e multipath vs in-network pooling (load {}x)",
            cfg.load
        )
        .as_str(),
        [
            "topology",
            "(i) SP",
            "(ii) MPTCP",
            "(iii) URP",
            "MPTCP vs SP",
            "URP vs SP",
        ],
    );
    for isp in inrpp::scenario::fig4_topologies() {
        spec.push_cell(isp.name(), move |_ctx| {
            let row = experiments::fig2_regime_row(isp, &cfg);
            CellOutput::new().with_row([
                row.topology,
                f(row.sp, 3),
                f(row.mptcp, 3),
                f(row.urp, 3),
                format!("{:+.1}%", 100.0 * (row.mptcp - row.sp) / row.sp),
                format!("{:+.1}%", 100.0 * (row.urp - row.sp) / row.sp),
            ])
        });
    }
    spec.push_note(
        "reading: both pooling regimes clearly beat single-path routing. The MPTCP \
         column is an idealised upper bound (perfect disjoint end-to-end path \
         control, which IP does not give end-hosts); URP reaches the same regime \
         with purely local, in-network decisions and no multihoming requirement — \
         the paper's deployability argument, quantified",
    );
    spec
}

// ------------------------------------------------------------------ Fig. 3

fn fig3_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "fig3",
        "Fig. 3 — Global Fairness vs e2e Flow Control",
        ["scheme", "flow 1->4", "flow 1->3", "Jain", "(paper)"],
    );
    spec.push_cell("fig3 worked example", |_ctx| {
        let out = experiments::fig3();
        CellOutput::new()
            .with_row([
                "e2e (TCP-like)".to_string(),
                format!("{} Mbps", f(out.e2e_rates[0] / 1e6, 2)),
                format!("{} Mbps", f(out.e2e_rates[1] / 1e6, 2)),
                f(out.e2e_jain, 3),
                "0.73".to_string(),
            ])
            .with_row([
                "INRPP".to_string(),
                format!("{} Mbps", f(out.inrpp_rates[0] / 1e6, 2)),
                format!("{} Mbps", f(out.inrpp_rates[1] / 1e6, 2)),
                f(out.inrpp_jain, 3),
                "1.00".to_string(),
            ])
    });
    spec.push_note(
        "paper expectation: e2e rates (2, 8) Mbps; INRPP rates (5, 5) Mbps with \
         3 Mbps detoured via node 3",
    );
    spec
}

// ------------------------------------------------------------------ Fig. 4

/// The Fig. 4 configuration a sweep runs under (shared with `inrpp
/// bench`, which times this exact workload).
pub(crate) fn fig4_cfg(opts: &SweepOptions) -> Fig4Config {
    if opts.quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(5),
            load: 1.25,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    }
}

fn fig4a_spec(opts: &SweepOptions) -> SweepSpec {
    let cfg = fig4_cfg(opts);
    let title = format!(
        "Fig. 4a — Network throughput under Poisson arrivals (load {}x, {}s window{})",
        cfg.load,
        cfg.duration.as_secs_f64(),
        if opts.quick { ", quick mode" } else { "" }
    );
    if opts.seeds <= 1 {
        let mut spec = SweepSpec::new(
            "fig4a",
            title.as_str(),
            [
                "topology",
                "SP",
                "ECMP",
                "URP",
                "URP vs SP",
                "paper",
                "flows",
                "jain(URP)",
            ],
        );
        for isp in inrpp::scenario::fig4_topologies() {
            spec.push_cell(isp.name(), move |_ctx| {
                let row = run_fig4_row(isp, &cfg);
                CellOutput::new().with_row([
                    row.topology.clone(),
                    f(row.sp.throughput(), 3),
                    f(row.ecmp.throughput(), 3),
                    f(row.urp.throughput(), 3),
                    format!("{:+.1}%", row.urp_gain_over_sp_pct()),
                    "+9..15%".to_string(),
                    row.urp.arrived_flows.to_string(),
                    f(row.urp.mean_jain, 3),
                ])
            });
        }
        spec.push_note("shape checks: URP >= ECMP >= SP per topology; gain in the paper's band");
        return spec;
    }
    // seed-aggregated variant: one cell per (topology, seed); cells draw
    // their workload/topology seed from the per-cell stream so the grid is
    // embarrassingly parallel yet byte-stable at any thread count
    let topologies = inrpp::scenario::fig4_topologies();
    let nseeds = opts.seeds;
    let grid = Grid::new()
        .axis("topology", topologies.len())
        .axis("seed", nseeds);
    let mut spec = SweepSpec::new(
        "fig4a",
        title.as_str(),
        [
            "topology",
            "SP mean",
            "ECMP mean",
            "URP mean",
            "gain mean",
            "gain sd",
            "paper",
        ],
    );
    for i in 0..grid.len() {
        let coord = grid.coord(i);
        let isp = topologies[coord[0]];
        spec.push_cell(format!("{} seed {}", isp.name(), coord[1]), move |ctx| {
            let row = run_fig4_row(isp, &cfg.with_seed(ctx.seed));
            CellOutput::new().with_data([
                row.sp.throughput(),
                row.ecmp.throughput(),
                row.urp.throughput(),
                row.urp_gain_over_sp_pct(),
            ])
        });
    }
    spec.set_finish(move |outputs, report| {
        use inrpp_sim::metrics::SummaryStats;
        for (t, isp) in topologies.iter().enumerate() {
            let mut stats = [
                SummaryStats::new(),
                SummaryStats::new(),
                SummaryStats::new(),
                SummaryStats::new(),
            ];
            for o in &outputs[t * nseeds..(t + 1) * nseeds] {
                for (s, &v) in stats.iter_mut().zip(&o.data) {
                    s.record(v);
                }
            }
            report.rows.push(vec![
                isp.name().to_string(),
                f(stats[0].mean(), 3),
                f(stats[1].mean(), 3),
                f(stats[2].mean(), 3),
                format!("{:+.1}%", stats[3].mean()),
                f(stats[3].std_dev(), 2),
                "+9..15%".to_string(),
            ]);
        }
    });
    spec.push_note(format!(
        "aggregated over {nseeds} hash-derived seed streams per topology \
         (cell_seed(\"fig4a\", index))"
    ));
    spec
}

/// Lower-case alphanumeric prefix of an ISP display name (`"Telstra
/// (AUS)"` → `"telstra"`), shared by artifact and export file naming.
fn slug(name: &str) -> String {
    name.chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

fn fig4b_spec(opts: &SweepOptions) -> SweepSpec {
    let cfg = fig4_cfg(opts);
    let topologies = inrpp::scenario::fig4_topologies();
    let mut spec = SweepSpec::new(
        "fig4b",
        "Fig. 4b — URP path-stretch CDF (traffic-weighted)",
        [
            "topology", "F(1.0)", "F(1.1)", "F(1.2)", "F(1.35)", "F(1.5)", "F(2.0)",
        ],
    );
    for isp in topologies {
        spec.push_cell(isp.name(), move |_ctx| {
            let row = run_fig4_row(isp, &cfg);
            let mut fluid = row.urp.into_fluid().expect("fluid engine run");
            let pts = fluid.stretch.points();
            let frac = |x: f64| -> f64 {
                pts.iter()
                    .take_while(|&&(v, _)| v <= x)
                    .last()
                    .map(|&(_, f)| f)
                    .unwrap_or(0.0)
            };
            let mut csv = String::from("stretch,cdf\n");
            for &(x, y) in &pts {
                csv.push_str(&format!("{x},{y:.6}\n"));
            }
            CellOutput::new()
                .with_row([
                    row.topology.clone(),
                    f(frac(1.0), 3),
                    f(frac(1.1), 3),
                    f(frac(1.2), 3),
                    f(frac(1.35), 3),
                    f(frac(1.5), 3),
                    f(frac(2.0), 3),
                ])
                .with_data(pts.iter().flat_map(|&(x, y)| [x, y]))
                .with_artifact(format!("fig4b_{}.csv", slug(isp.name())), csv)
        });
    }
    spec.set_finish(move |outputs, report| {
        // figure-like ASCII rendering of the CDFs, clipped to the paper's
        // x-range, reconstructed from the cells' raw points
        let series: Vec<(String, Vec<(f64, f64)>)> = topologies
            .iter()
            .zip(outputs)
            .map(|(isp, o)| {
                let pts: Vec<(f64, f64)> = o.data.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                let mut v: Vec<(f64, f64)> =
                    pts.iter().copied().filter(|&(x, _)| x <= 1.4).collect();
                v.insert(0, (1.0, pts.first().map(|&(_, f)| f).unwrap_or(0.0)));
                (isp.name().to_string(), v)
            })
            .collect();
        let plot_series: Vec<(&str, &[(f64, f64)])> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        report.notes.push(ascii_plot(&plot_series, 60, 12));
    });
    spec.push_note("paper shape: F(1.0) >= 0.5 and mass concentrated below ~1.35");
    spec
}

// ---------------------------------------------------------------- custody

fn custody_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "custody",
        "C1 — Custody-cache feasibility (paper Sec. 3.3)",
        ["link", "cache", "holding time", ">= 500ms RTT budget"],
    );
    spec.push_cell("rate x size sweep", |_ctx| {
        let feas = experiments::custody_feasibility();
        let headline = feas.headline;
        let mut out = CellOutput::new().with_note(format!(
            "headline: 10 GB cache behind a 40 Gbps link holds line-rate traffic \
             for {headline} (paper: 2 seconds)"
        ));
        for r in &feas.rows {
            out = out.with_row([
                r.link.to_string(),
                r.cache.to_string(),
                r.holding.to_string(),
                if r.feasible { "yes" } else { "no" }.to_string(),
            ]);
        }
        out
    });
    spec
}

// ------------------------------------------------------------ Ablation A1

fn detour_depth_spec(opts: &SweepOptions) -> SweepSpec {
    let cfg = if opts.quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(4),
            load: 1.5,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    let mut spec = SweepSpec::new(
        "ablation-detour-depth",
        format!("A1 — Detour depth sweep (Exodus, load {}x)", cfg.load).as_str(),
        ["detour depth", "throughput", "gain over SP"],
    );
    for depth in [0u8, 1, 2] {
        spec.push_cell(format!("depth {depth}"), move |_ctx| {
            let res = experiments::ablation_detour_depth(Isp::Exodus, &cfg, &[depth]);
            CellOutput::new().with_data([res[0].depth as f64, res[0].throughput])
        });
    }
    spec.set_finish(|outputs, report| {
        let base = outputs[0].data[1];
        for o in outputs {
            let (depth, thr) = (o.data[0] as u8, o.data[1]);
            let label = match depth {
                0 => "0 (= SP baseline)".to_string(),
                1 => "1 hop".to_string(),
                d => format!("{d} hops (paper's Fig. 4 setup)"),
            };
            report.rows.push(vec![
                label,
                f(thr, 3),
                format!("{:+.1}%", 100.0 * (thr - base) / base),
            ]);
        }
    });
    spec
}

// ------------------------------------------------------------ Ablation A2

fn anticipation_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "ablation-anticipation",
        "A2 — Anticipation window sweep (Fig. 3 network, 600-chunk flow 1->4)",
        ["A_c (chunks)", "flow completion time"],
    );
    for ac in [0u64, 1, 2, 4, 8, 16, 32] {
        spec.push_cell(format!("A_c {ac}"), move |_ctx| {
            let res = experiments::ablation_anticipation(&[ac]);
            CellOutput::new().with_row([ac.to_string(), format!("{}s", f(res[0].fct_secs, 3))])
        });
    }
    spec.push_note(
        "expectation: tiny windows starve the pipe (request-rate limited); larger \
         windows approach the pooled-capacity completion time",
    );
    spec
}

// ------------------------------------------------------------ Ablation A3

fn cache_size_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "ablation-cache-size",
        "A3 — Custody budget sweep (Fig. 3 network, 2 overloading flows)",
        ["budget (x BDP)", "chunks dropped", "chunks custodied"],
    );
    for m in [0.1, 0.5, 1.0, 2.0, 10.0, 100.0] {
        spec.push_cell(format!("budget {m}x BDP"), move |_ctx| {
            let res = experiments::ablation_cache_size(&[m]);
            CellOutput::new().with_row([
                res[0].budget_x_bdp.to_string(),
                res[0].chunks_dropped.to_string(),
                res[0].chunks_custodied.to_string(),
            ])
        });
    }
    spec.push_note(
        "expectation: more custody headroom absorbs bursts that would otherwise \
         drop; beyond a few BDP the benefit flattens",
    );
    spec
}

// ------------------------------------------------------------ Ablation A4

fn backpressure_spec() -> SweepSpec {
    use inrpp::InrppConfig;
    use inrpp_packetsim::{AimdConfig, TransportKind};
    let mut spec = SweepSpec::new(
        "ablation-backpressure",
        "A4 — INRPP vs AIMD on the Fig. 3 bottleneck (800-chunk flow 1->4)",
        [
            "transport",
            "FCT",
            "goodput",
            "drops",
            "detoured",
            "custodied",
            "bp msgs",
            "retransmits",
        ],
    );
    let transports = [
        ("INRPP", TransportKind::Inrpp(InrppConfig::default())),
        ("AIMD", TransportKind::Aimd(AimdConfig::default())),
    ];
    for (label, kind) in transports {
        spec.push_cell(label, move |_ctx| {
            let r = experiments::ablation_transport_single(kind);
            let fct = r.flows[0].fct_secs.unwrap_or(f64::NAN);
            let bits = r.flows[0].delivered_bits;
            let s = *r.packet().expect("packet engine run");
            CellOutput::new().with_row([
                r.strategy.clone(),
                format!("{}s", f(fct, 2)),
                format!("{} Mbps", f(bits / fct / 1e6, 2)),
                s.chunks_dropped.to_string(),
                s.chunks_detoured.to_string(),
                s.chunks_custodied.to_string(),
                s.backpressure_msgs.to_string(),
                r.flows[0].retransmits.to_string(),
            ])
        });
    }
    spec.push_note(
        "expectation: INRPP finishes faster (pooling the node-3 path) and without \
         loss; AIMD is capped by the 2 Mbps bottleneck",
    );
    spec
}

// ------------------------------------------------------------ Ablation A5

fn interval_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "ablation-interval",
        "A5 — Estimator interval sweep (Fig. 3 network, 600-chunk flow)",
        ["T_i (ms)", "FCT", "chunks detoured"],
    );
    for ms in [10u64, 25, 50, 100, 200, 400] {
        spec.push_cell(format!("T_i {ms}ms"), move |_ctx| {
            let res = experiments::ablation_interval(&[ms]);
            CellOutput::new().with_row([
                res[0].interval_ms.to_string(),
                format!("{}s", f(res[0].fct_secs, 3)),
                res[0].chunks_detoured.to_string(),
            ])
        });
    }
    spec.push_note(
        "expectation: FCT is broadly insensitive (detouring is also queue-triggered); \
         very long windows react sluggishly at flow start",
    );
    spec
}

// ------------------------------------------------------------ Ablation A6

fn coexistence_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "coexistence",
        "A6 — Coexistence: does INRPP starve an AIMD (TCP-like) flow?",
        [
            "scenario",
            "AIMD probe goodput",
            "companion goodput",
            "drops",
        ],
    );
    for scenario in CoexistenceScenario::all() {
        spec.push_cell(scenario.label(), move |_ctx| {
            let r = experiments::coexistence_scenario(scenario);
            CellOutput::new().with_row([
                r.scenario.to_string(),
                format!("{} Mbps", f(r.aimd_goodput / 1e6, 2)),
                r.companion_goodput
                    .map(|g| format!("{} Mbps", f(g / 1e6, 2)))
                    .unwrap_or_else(|| "-".to_string()),
                r.drops.to_string(),
            ])
        });
    }
    spec.push_note(
        "reading: an INRPP companion pools the node-3 side path instead of fighting \
         for the 2 Mbps bottleneck, so the AIMD probe keeps (at least) its fair \
         share — in-network pooling is TCP-friendly by construction",
    );
    spec
}

// ------------------------------------------------------------ Ablation A7

fn load_sweep_spec(opts: &SweepOptions) -> SweepSpec {
    let base = if opts.quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(3),
            mean_flow_bits: 60e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    let mut spec = SweepSpec::new(
        "ablation-load-sweep",
        "A7 — Load sweep on Exodus (URP gain vs offered load)",
        ["load (x capacity proxy)", "SP", "URP", "URP gain"],
    );
    for load in [0.1, 0.25, 0.5, 1.0, 1.5, 2.0] {
        spec.push_cell(format!("load {load}x"), move |_ctx| {
            let rows = experiments::load_sweep(Isp::Exodus, &base, &[load]);
            CellOutput::new().with_row([
                rows[0].load.to_string(),
                f(rows[0].sp, 3),
                f(rows[0].urp, 3),
                format!("{:+.1}%", rows[0].gain_pct),
            ])
        });
    }
    spec.push_note(
        "reading: near-zero gain while the network carries everything, a pooling \
         peak at moderate congestion, and a declining dividend under deep \
         overload — once the detour paths saturate too, no routing scheme can \
         manufacture capacity",
    );
    spec
}

// ------------------------------------------------------------ Ablation A8

fn link_failure_spec(opts: &SweepOptions) -> SweepSpec {
    let cfg = if opts.quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(3),
            mean_flow_bits: 60e6,
            load: 1.0,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    const FRACTIONS: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
    let mut spec = SweepSpec::new(
        "ablation-link-failure",
        format!("A8 — Link-failure robustness (Exodus, load {}x)", cfg.load).as_str(),
        ["links failed", "SP", "URP", "URP edge"],
    );
    for frac in FRACTIONS {
        spec.push_cell(format!("{:.0}% failed", frac * 100.0), move |_ctx| {
            // every cell recomputes the *identical* victim set (pure
            // function of topology, seed, and the full fraction grid)
            // instead of sharing it — the price of embarrassing parallelism
            let base = generate_with_capacities(&Isp::Exodus.profile(), cfg.seed, cfg.capacities);
            let victims = experiments::link_failure_victims(
                &base,
                cfg.seed,
                experiments::link_failure_max_kill(&base, &FRACTIONS),
            );
            let p = experiments::link_failure_point(&base, &victims, &cfg, frac);
            if p.sp.is_nan() {
                return CellOutput::new().with_row([
                    format!("{:.0}%", p.fraction * 100.0),
                    "(partitioned)".to_string(),
                    String::new(),
                    String::new(),
                ]);
            }
            CellOutput::new().with_row([
                format!("{:.0}%", p.fraction * 100.0),
                f(p.sp, 3),
                f(p.urp, 3),
                format!("{:+.1}%", 100.0 * (p.urp - p.sp) / p.sp),
            ])
        });
    }
    spec.push_note(
        "reading: URP's detour machinery keeps soaking up capacity lost to \
         failures; SP throughput falls with every shortest-path tree the \
         failures break",
    );
    spec
}

// ----------------------------------------------------------------- export

fn export_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "export-topologies",
        "Exported ISP topologies (plain-text edge lists)",
        ["ISP", "file", "nodes", "links", "diameter"],
    );
    for isp in Isp::all() {
        spec.push_cell(isp.name(), move |_ctx| {
            let topo = generate_isp(isp, SEED);
            let stats = inrpp_topology::stats::graph_stats(&topo);
            let file = format!("{}.topo", slug(isp.name()));
            CellOutput::new()
                .with_row([
                    isp.name().to_string(),
                    file.clone(),
                    stats.nodes.to_string(),
                    stats.links.to_string(),
                    format!("{:?}", stats.diameter),
                ])
                .with_artifact(file, inrpp_topology::io::write_topology(&topo))
        });
    }
    spec.push_note("reload with inrpp_topology::io::read_topology(&fs::read_to_string(path)?)");
    spec
}

// ---------------------------------------------------------------- formats

/// How a report is printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable aligned table plus notes (the default).
    #[default]
    Table,
    /// RFC 4180 CSV of the tabular part.
    Csv,
    /// One canonical JSON object.
    Json,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(OutputFormat::Table),
            "csv" => Ok(OutputFormat::Csv),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!(
                "unknown format '{other}' (expected table|csv|json)"
            )),
        }
    }
}

/// Render a merged report in the requested format.
pub fn render(report: &SweepReport, format: OutputFormat) -> String {
    match format {
        OutputFormat::Csv => report.to_csv(),
        OutputFormat::Json => {
            let mut s = report.to_json();
            s.push('\n');
            s
        }
        OutputFormat::Table => {
            let mut t = Table::new(report.columns.to_vec());
            for row in &report.rows {
                t.row(row.clone());
            }
            let mut out = format!("{}\n\n{}", report.title, t.render());
            for note in &report.notes {
                out.push_str(note);
                out.push('\n');
            }
            out
        }
    }
}

// ------------------------------------------------------- legacy bin shell

/// Shared `main` for the sixteen legacy one-experiment binaries: parses
/// the flags they have always accepted (`--quick`, `--seeds N`, plus the
/// runner's `--threads N`), executes the sweep on the worker pool, and
/// prints the table rendering. `export-topologies` additionally writes
/// its artifacts to the directory given as the first positional argument
/// (default `data`), preserving the old binary's contract.
pub fn legacy_main(id: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions {
        quick: args.iter().any(|a| a == "--quick"),
        seeds: flag_value(&args, "--seeds")
            .map(|v| v.parse().expect("--seeds takes a count"))
            .unwrap_or(1),
    };
    let threads = flag_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads takes a count"))
        .unwrap_or_else(|| RunnerConfig::default().threads);
    let spec = build(id, &opts).unwrap_or_else(|| panic!("unknown experiment '{id}'"));
    let report = run_sweep(&spec, &RunnerConfig { threads });
    print!("{}", render(&report, OutputFormat::Table));
    if args.iter().any(|a| a == "--csv") {
        if id == "fig4b" {
            // the historical fig4b_stretch --csv contract: long-format
            // `stretch,cdf,topology` rows at the paper's x-axis grid
            print!("{}", fig4b_legacy_csv(&report));
        } else {
            print!("{}", render(&report, OutputFormat::Csv));
        }
    }
    if id == "export-topologies" {
        let dir = positionals(&args)
            .first()
            .cloned()
            .unwrap_or_else(|| "data".to_string());
        write_artifacts(&report, std::path::Path::new(&dir));
    }
}

/// The pre-runner `fig4b_stretch --csv` output: long-format
/// `stretch,cdf,topology` rows sampled at the paper's x-axis grid,
/// reconstructed from the sweep's full-resolution CDF artifacts (which
/// are emitted in `fig4_topologies()` order).
fn fig4b_legacy_csv(report: &SweepReport) -> String {
    let grid = [1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.5, 2.0];
    let mut out = String::from("stretch,cdf,topology\n");
    for (isp, artifact) in inrpp::scenario::fig4_topologies()
        .iter()
        .zip(&report.artifacts)
    {
        let pts: Vec<(f64, f64)> = artifact
            .contents
            .lines()
            .skip(1) // "stretch,cdf" header
            .filter_map(|l| {
                let (x, y) = l.split_once(',')?;
                Some((x.parse().ok()?, y.parse().ok()?))
            })
            .collect();
        for &g in &grid {
            let v = pts
                .iter()
                .take_while(|&&(x, _)| x <= g)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0);
            out.push_str(&format!("{g},{v:.4},{}\n", isp.name()));
        }
    }
    out
}

/// Arguments that are neither flags nor the values of value-taking flags.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seeds" || a == "--threads" {
            let _ = it.next(); // skip the flag's value
        } else if !a.starts_with("--") {
            out.push(a.clone());
        }
    }
    out
}

/// Write every artifact of `report` under `dir` (created if needed),
/// echoing one line per file to **stderr** — stdout stays clean for the
/// `--format csv|json` machine-readable streams.
///
/// # Panics
/// Panics if the directory or a file cannot be written — artifact export
/// is the whole point of the callers that use it.
pub fn write_artifacts(report: &SweepReport, dir: &std::path::Path) {
    std::fs::create_dir_all(dir).expect("create artifact output directory");
    for a in &report.artifacts {
        let path = dir.join(&a.name);
        std::fs::write(&path, &a.contents).expect("write artifact");
        eprintln!("wrote {}", path.display());
    }
}

/// Value following a `--flag` in an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_id_and_rejects_unknown() {
        let opts = SweepOptions::default();
        for e in EXPERIMENTS {
            let id = e.id;
            let spec = build(id, &opts).unwrap_or_else(|| panic!("{id} missing"));
            assert_eq!(spec.id(), id);
            assert!(!spec.is_empty(), "{id} has no cells");
            assert!(!spec.columns().is_empty(), "{id} has no columns");
        }
        assert!(build("no-such-experiment", &opts).is_none());
        assert!(
            build("all", &opts).is_none(),
            "'all' is a CLI alias, not a sweep"
        );
    }

    #[test]
    fn quick_table1_sweep_matches_direct_computation() {
        let spec = build("table1", &SweepOptions::default()).unwrap();
        let report = run_sweep(&spec, &RunnerConfig { threads: 2 });
        // 9 ISPs + the Average row
        assert_eq!(report.rows.len(), 10);
        let direct = experiments::table1(SEED);
        for (row, d) in report.rows.iter().zip(&direct) {
            assert_eq!(row[0], d.isp.name());
            assert_eq!(row[3], pct(d.measured[0]));
        }
        assert_eq!(report.rows[9][0], "Average");
        assert!(report.notes[0].contains("worst per-cell deviation"));
    }

    #[test]
    fn scenario_catalog_is_fully_registered() {
        // every catalog cell has a registry row, and every registered
        // scenario id resolves to a catalog cell
        let registered: Vec<&str> = EXPERIMENTS
            .iter()
            .map(|e| e.id)
            .filter(|id| id.starts_with("scenario:"))
            .collect();
        let catalog = inrpp::scenario::scenario_catalog();
        assert_eq!(registered.len(), catalog.len());
        assert!(
            registered.len() >= 8,
            "catalog must expose at least 8 sweeps"
        );
        for spec in &catalog {
            assert!(
                registered.contains(&spec.id().as_str()),
                "{} unregistered",
                spec.id()
            );
        }
        assert!(build("scenario:not-a:family", &SweepOptions::default()).is_none());
    }

    #[test]
    fn scenario_sweep_runs_the_trio() {
        let opts = SweepOptions {
            quick: true,
            ..SweepOptions::default()
        };
        let spec = build("scenario:het-dumbbell:heavy-tail", &opts).unwrap();
        assert_eq!(spec.len(), 3, "one cell per strategy");
        let report = run_sweep(&spec, &RunnerConfig { threads: 2 });
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0][0], "SP");
        assert_eq!(report.rows[1][0], "ECMP");
        assert_eq!(report.rows[2][0], "URP");
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("URP vs SP throughput")),
            "missing gain note: {:?}",
            report.notes
        );
    }

    #[test]
    fn fig4a_multiseed_grid_is_topology_major() {
        let opts = SweepOptions {
            quick: true,
            seeds: 2,
        };
        let spec = build("fig4a", &opts).unwrap();
        assert_eq!(spec.len(), 6, "3 topologies x 2 seeds");
        assert!(spec.cells()[0].label.starts_with("Telstra"));
        assert!(spec.cells()[1].label.ends_with("seed 1"));
        assert!(spec.cells()[2].label.starts_with("Exodus"));
    }

    #[test]
    fn formats_parse_and_render() {
        use std::str::FromStr;
        assert_eq!(OutputFormat::from_str("json").unwrap(), OutputFormat::Json);
        assert!(OutputFormat::from_str("xml").is_err());
        let report = SweepReport {
            experiment: "x".to_string(),
            title: "T".to_string(),
            columns: vec!["a".to_string()],
            rows: vec![vec!["1".to_string()]],
            notes: vec!["n".to_string()],
            artifacts: vec![],
        };
        let table = render(&report, OutputFormat::Table);
        assert!(table.starts_with("T\n\n"));
        assert!(table.contains('a') && table.ends_with("n\n"));
        assert_eq!(render(&report, OutputFormat::Csv), "a\n1\n");
        assert!(render(&report, OutputFormat::Json).starts_with("{\"experiment\":\"x\""));
    }

    #[test]
    fn export_sweep_produces_loadable_artifacts() {
        let spec = build("export-topologies", &SweepOptions::default()).unwrap();
        let report = run_sweep(&spec, &RunnerConfig::default());
        assert_eq!(report.artifacts.len(), 9);
        assert_eq!(
            report.artifacts[0].name,
            format!("{}.topo", slug(Isp::all()[0].name()))
        );
        let reloaded =
            inrpp_topology::io::read_topology(&report.artifacts[0].contents).expect("round-trip");
        assert!(reloaded.node_count() > 0);
    }
}
