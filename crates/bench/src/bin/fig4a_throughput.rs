//! Regenerates **Fig. 4a**: normalised network throughput of SP, ECMP and
//! URP (INRP) on the Telstra, Exodus and Tiscali topologies under Poisson
//! overload.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig4a_throughput [--quick]
//! ```
//!
//! The paper reports URP gaining 9–15% over SP with ECMP in between; the
//! run prints measured gains next to that expectation.

use inrpp::scenario::Fig4Config;
use inrpp_bench::experiments::{fig4a, fig4a_multiseed, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp_sim::time::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Option<usize> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--seeds")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--seeds takes a count"))
    };
    let cfg = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(5),
            load: 1.25,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    println!(
        "Fig. 4a — Network throughput under Poisson arrivals (load {}x, {}s window{})\n",
        cfg.load,
        cfg.duration.as_secs_f64(),
        if quick { ", quick mode" } else { "" }
    );
    if let Some(n) = seeds {
        let seed_list: Vec<u64> = (0..n as u64).map(|i| SEED + i).collect();
        let rows = fig4a_multiseed(&cfg, &seed_list);
        let mut t = Table::new(vec![
            "topology", "SP mean", "ECMP mean", "URP mean", "gain mean", "gain sd", "paper",
        ]);
        for (name, sp, ecmp, urp, gain) in &rows {
            t.row(vec![
                name.clone(),
                f(sp.mean(), 3),
                f(ecmp.mean(), 3),
                f(urp.mean(), 3),
                format!("{:+.1}%", gain.mean()),
                f(gain.std_dev(), 2),
                "+9..15%".to_string(),
            ]);
        }
        println!("{}", t.render());
        println!("aggregated over {n} seeds starting at {SEED}");
        return;
    }
    let rows = fig4a(&cfg);
    let mut t = Table::new(vec![
        "topology", "SP", "ECMP", "URP", "URP vs SP", "paper", "flows", "jain(URP)",
    ]);
    for row in &rows {
        t.row(vec![
            row.topology.clone(),
            f(row.sp.throughput(), 3),
            f(row.ecmp.throughput(), 3),
            f(row.urp.throughput(), 3),
            format!("{:+.1}%", row.urp_gain_over_sp_pct()),
            "+9..15%".to_string(),
            row.urp.arrived_flows.to_string(),
            f(row.urp.mean_jain, 3),
        ]);
    }
    println!("{}", t.render());
    println!("shape checks: URP >= ECMP >= SP per topology; gain in the paper's band");
}
