//! Regenerates **Fig. 4a**: normalised network throughput of SP, ECMP and
//! URP (INRP) on the Telstra, Exodus and Tiscali topologies under Poisson
//! overload.
//!
//! Thin wrapper over the `fig4a` sweep — equivalent to `inrpp run fig4a`;
//! accepts `--quick`, `--seeds N` (seed-aggregated variant, one cell per
//! topology × seed), and `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig4a_throughput [--quick] [--seeds N]
//! ```
//!
//! The paper reports URP gaining 9–15% over SP with ECMP in between; the
//! run prints measured gains next to that expectation.

fn main() {
    inrpp_bench::sweeps::legacy_main("fig4a");
}
