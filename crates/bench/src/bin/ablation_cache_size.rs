//! **Ablation A3** — custody budget: drops vs custody hand-offs as the
//! cache shrinks below / grows beyond the bottleneck BDP under overload.
//!
//! Thin wrapper over the `ablation-cache-size` sweep — equivalent to
//! `inrpp run ablation-cache-size`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_cache_size
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-cache-size");
}
