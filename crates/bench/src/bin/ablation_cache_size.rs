//! **Ablation A3** — custody budget: drops vs custody hand-offs as the
//! cache shrinks below / grows beyond the bottleneck BDP under overload.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_cache_size
//! ```

use inrpp_bench::experiments::ablation_cache_size;
use inrpp_bench::table::Table;

fn main() {
    println!("A3 — Custody budget sweep (Fig. 3 network, 2 overloading flows)\n");
    let res = ablation_cache_size(&[0.1, 0.5, 1.0, 2.0, 10.0, 100.0]);
    let mut t = Table::new(vec!["budget (x BDP)", "chunks dropped", "chunks custodied"]);
    for (m, dropped, custodied) in &res {
        t.row(vec![m.to_string(), dropped.to_string(), custodied.to_string()]);
    }
    println!("{}", t.render());
    println!(
        "expectation: more custody headroom absorbs bursts that would \
         otherwise drop; beyond a few BDP the benefit flattens"
    );
}
