//! Regenerates the **§3.3 custody arithmetic** (experiment C1): "a 10GB
//! cache after a 40Gbps link can hold incoming traffic for 2 seconds",
//! plus a link-rate × cache-size feasibility sweep.
//!
//! Thin wrapper over the `custody` sweep — equivalent to
//! `inrpp run custody`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin custody_feasibility
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("custody");
}
