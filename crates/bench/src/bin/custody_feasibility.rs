//! Regenerates the **§3.3 custody arithmetic** (experiment C1): "a 10GB
//! cache after a 40Gbps link can hold incoming traffic for 2 seconds",
//! plus a link-rate × cache-size feasibility sweep.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin custody_feasibility
//! ```

use inrpp_bench::experiments::custody_feasibility;
use inrpp_bench::table::Table;

fn main() {
    let (headline, rows) = custody_feasibility();
    println!("C1 — Custody-cache feasibility (paper §3.3)\n");
    println!(
        "headline: 10 GB cache behind a 40 Gbps link holds line-rate traffic for {headline} \
         (paper: 2 seconds)\n"
    );
    let mut t = Table::new(vec!["link", "cache", "holding time", ">= 500ms RTT budget"]);
    for r in &rows {
        t.row(vec![
            r.link.to_string(),
            r.cache.to_string(),
            r.holding.to_string(),
            if r.feasible { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());
}
