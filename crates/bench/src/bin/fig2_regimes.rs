//! **Fig. 2 made measurable** — the paper's conceptual figure contrasts
//! three resource-utilisation regimes: (i) single path, (ii) end-to-end
//! multipath pooling (MPTCP/e2eRPP), (iii) in-network pooling (INRPP).
//! This binary runs all three on the Fig. 4 topologies under the same
//! workload.
//!
//! Thin wrapper over the `fig2` sweep — equivalent to `inrpp run fig2`;
//! accepts `--quick` and `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig2_regimes [--quick]
//! ```
//!
//! Both pooling regimes clearly beat single-path. Note the *idealisation*:
//! the MPTCP model here gets perfect edge-disjoint path control, which the
//! real Internet does not offer end-hosts (the paper's Take-away III —
//! "it is still left to the end-points to ... choose which of the
//! available paths to follow" is precisely the unsolved part). URP needs
//! no end-host path control and no multihoming, and additionally pools
//! cache space — advantages invisible at the fluid level.

fn main() {
    inrpp_bench::sweeps::legacy_main("fig2");
}
