//! **Fig. 2 made measurable** — the paper's conceptual figure contrasts
//! three resource-utilisation regimes: (i) single path, (ii) end-to-end
//! multipath pooling (MPTCP/e2eRPP), (iii) in-network pooling (INRPP).
//! This binary runs all three on the Fig. 4 topologies under the same
//! workload.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig2_regimes [--quick]
//! ```
//!
//! Both pooling regimes clearly beat single-path. Note the *idealisation*:
//! the MPTCP model here gets perfect edge-disjoint path control, which the
//! real Internet does not offer end-hosts (the paper's Take-away III —
//! "it is still left to the end-points to ... choose which of the
//! available paths to follow" is precisely the unsolved part). URP needs
//! no end-host path control and no multihoming, and additionally pools
//! cache space — advantages invisible at the fluid level.

use inrpp::scenario::Fig4Config;
use inrpp_bench::experiments::{fig2_regimes, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp_sim::time::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(4),
            load: 1.25,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    println!(
        "Fig. 2 regimes — single path vs e2e multipath vs in-network pooling (load {}x)\n",
        cfg.load
    );
    let rows = fig2_regimes(&cfg);
    let mut t = Table::new(vec![
        "topology",
        "(i) SP",
        "(ii) MPTCP",
        "(iii) URP",
        "MPTCP vs SP",
        "URP vs SP",
    ]);
    for (name, sp, mptcp, urp) in &rows {
        t.row(vec![
            name.clone(),
            f(*sp, 3),
            f(*mptcp, 3),
            f(*urp, 3),
            format!("{:+.1}%", 100.0 * (mptcp - sp) / sp),
            format!("{:+.1}%", 100.0 * (urp - sp) / sp),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: both pooling regimes clearly beat single-path routing. \
         The MPTCP column is an idealised upper bound (perfect disjoint \
         end-to-end path control, which IP does not give end-hosts); URP \
         reaches the same regime with purely local, in-network decisions \
         and no multihoming requirement — the paper's deployability \
         argument, quantified"
    );
}
