//! Regenerates **Table 1**: available detour paths in the nine ISP
//! topologies, measured on the calibrated generated graphs and compared
//! cell-by-cell with the published values.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin table1_detours
//! ```

use inrpp_bench::experiments::{table1, table1_average, SEED};
use inrpp_bench::table::{pct, Table};

fn main() {
    let rows = table1(SEED);
    let mut t = Table::new(vec![
        "ISP", "nodes", "links", "1 hop", "(paper)", "2 hops", "(paper)", "3+ hops", "(paper)",
        "N/A", "(paper)",
    ]);
    for r in &rows {
        t.row(vec![
            r.isp.name().to_string(),
            r.nodes.to_string(),
            r.links.to_string(),
            pct(r.measured[0]),
            pct(r.paper[0]),
            pct(r.measured[1]),
            pct(r.paper[1]),
            pct(r.measured[2]),
            pct(r.paper[2]),
            pct(r.measured[3]),
            pct(r.paper[3]),
        ]);
    }
    let (m, p) = table1_average(&rows);
    t.row(vec![
        "Average".to_string(),
        String::new(),
        String::new(),
        pct(m[0]),
        pct(p[0]),
        pct(m[1]),
        pct(p[1]),
        pct(m[2]),
        pct(p[2]),
        pct(m[3]),
        pct(p[3]),
    ]);
    println!("Table 1 — Available Detour Paths (measured vs paper)\n");
    println!("{}", t.render());
    let worst = rows
        .iter()
        .map(|r| r.max_deviation())
        .fold(0.0f64, f64::max);
    println!("worst per-cell deviation from the paper: {worst:.2} percentage points");
}
