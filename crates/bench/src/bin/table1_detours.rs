//! Regenerates **Table 1**: available detour paths in the nine ISP
//! topologies, measured on the calibrated generated graphs and compared
//! cell-by-cell with the published values.
//!
//! Thin wrapper over the `table1` sweep — equivalent to
//! `inrpp run table1`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin table1_detours
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("table1");
}
