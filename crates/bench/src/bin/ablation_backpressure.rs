//! **Ablation A4** — transport head-to-head: INRPP (push/detour/custody/
//! back-pressure) vs a receiver-driven AIMD baseline on the same channel
//! model — the paper's claim that in-network pooling "moves traffic faster
//! without causing packet drops".
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_backpressure
//! ```

use inrpp_bench::experiments::ablation_transport;
use inrpp_bench::table::{f, Table};

fn main() {
    println!("A4 — INRPP vs AIMD on the Fig. 3 bottleneck (800-chunk flow 1->4)\n");
    let (inrpp, aimd) = ablation_transport();
    let mut t = Table::new(vec![
        "transport",
        "FCT",
        "goodput",
        "drops",
        "detoured",
        "custodied",
        "bp msgs",
        "retransmits",
    ]);
    for r in [&inrpp, &aimd] {
        let fct = r.flows[0].fct().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        let bits = r.flows[0].chunks_delivered as f64 * r.chunk_bytes.as_bits() as f64;
        t.row(vec![
            r.transport.clone(),
            format!("{}s", f(fct, 2)),
            format!("{} Mbps", f(bits / fct / 1e6, 2)),
            r.chunks_dropped.to_string(),
            r.chunks_detoured.to_string(),
            r.chunks_custodied.to_string(),
            r.backpressure_msgs.to_string(),
            r.flows[0].retransmits.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expectation: INRPP finishes faster (pooling the node-3 path) and \
         without loss; AIMD is capped by the 2 Mbps bottleneck"
    );
}
