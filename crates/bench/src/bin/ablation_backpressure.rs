//! **Ablation A4** — transport head-to-head: INRPP (push/detour/custody/
//! back-pressure) vs a receiver-driven AIMD baseline on the same channel
//! model — the paper's claim that in-network pooling "moves traffic faster
//! without causing packet drops".
//!
//! Thin wrapper over the `ablation-backpressure` sweep — equivalent to
//! `inrpp run ablation-backpressure`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_backpressure
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-backpressure");
}
