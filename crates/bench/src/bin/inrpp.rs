//! The unified experiment CLI: every paper artifact and ablation behind
//! one binary, with a worker-pool `--threads` knob and machine-readable
//! output — results are byte-identical at any thread count.
//!
//! ```text
//! inrpp list
//! inrpp run <experiment>... [--threads N] [--format table|csv|json]
//!                           [--quick] [--seeds N] [--out DIR]
//! inrpp run all --quick --threads 8
//! inrpp bench [--quick] [--out FILE] [--note key=value]...
//! ```
//!
//! Examples:
//!
//! ```text
//! inrpp run table1                        # Table 1, all cores
//! inrpp run table1 --threads 1            # same bytes, one core
//! inrpp run fig4a --seeds 8 --format csv  # seed-aggregated Fig. 4a as CSV
//! inrpp run export-topologies --out data  # write the nine .topo files
//! ```

use std::process::ExitCode;

use inrpp_bench::sweeps::{self, OutputFormat, SweepOptions};
use inrpp_runner::{run_sweep, RunnerConfig};

const USAGE: &str = "\
usage: inrpp <command>

commands:
  list                       show every experiment id with a description
  run <experiment>...        run one or more sweeps (or 'all')
      --threads N            worker threads (default: all cores; results
                             are byte-identical for every N)
      --format table|csv|json  output format (default: table)
      --quick                short-horizon configuration where available
      --seeds N              aggregate Fig. 4a over N derived seeds
      --out DIR              write sweep artifacts (.topo files, CDF dumps)
  bench                      time representative sweeps, record the perf
                             baseline (wall-clock, cells/sec, events/sec)
      --quick                short-horizon workloads (the CI setting)
      --out FILE             output path (default: BENCH_flowsim.json)
      --note KEY=VALUE       pin a context note into the recorded file
      --compare OLD [NEW]    with two files: diff them without running;
                             with one file: run the bench, then diff the
                             fresh result against it. Exits non-zero on a
                             >10% cells/sec regression (same-mode files)
                             or a drifted workload set
  serve                      service mode: the multi-session daemon speaking
                             line-delimited JSON — open/feed/advance/snapshot/
                             checkpoint/resume steppable sessions on either
                             engine (see the inrpp-server crate docs for the
                             protocol and determinism contract)
      --listen ADDR          serve many clients over a socket instead of
                             stdio: a TCP bind address ('127.0.0.1:0' picks
                             a free port; the bound address is announced as
                             a {\"event\":\"listening\"} line on stdout) or
                             'unix:PATH' for a Unix-domain socket
      --workers N            simulation-worker slots — how many sessions may
                             compute concurrently (default: all cores; replies
                             are byte-identical for every N)
  help                       this text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            print!("{}", sweeps::render_experiment_list());
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("serve") => match serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("inrpp serve: {e}");
                ExitCode::FAILURE
            }
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("inrpp: unknown command '{other}'\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `inrpp run` invocation.
struct RunArgs {
    experiments: Vec<String>,
    threads: usize,
    format: OutputFormat,
    opts: SweepOptions,
    out_dir: Option<String>,
}

fn parse_run(args: &[String]) -> Result<RunArgs, String> {
    let mut experiments = Vec::new();
    let mut threads = RunnerConfig::default().threads;
    let mut format = OutputFormat::Table;
    let mut opts = SweepOptions::default();
    let mut out_dir = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = value_of(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads takes a positive integer".to_string())?;
            }
            "--format" => {
                format = value_of(&mut it, "--format")?.parse()?;
            }
            "--seeds" => {
                opts.seeds = value_of(&mut it, "--seeds")?
                    .parse()
                    .map_err(|_| "--seeds takes a positive integer".to_string())?;
            }
            "--out" => out_dir = Some(value_of(&mut it, "--out")?.to_string()),
            "--quick" => opts.quick = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag '{flag}'"));
            }
            id => experiments.push(id.to_string()),
        }
    }
    if experiments.is_empty() {
        return Err("nothing to run: name an experiment or 'all' (try 'inrpp list')".to_string());
    }
    Ok(RunArgs {
        experiments,
        threads,
        format,
        opts,
        out_dir,
    })
}

fn value_of<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// `inrpp serve [--listen ADDR] [--workers N]`: stdio by default, the
/// socket daemon with `--listen`.
fn serve(args: &[String]) -> Result<(), String> {
    use inrpp_server::{Daemon, DaemonConfig, SocketTransport, StdioTransport, Transport};
    let mut listen: Option<String> = None;
    let mut workers = DaemonConfig::default().workers;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = Some(value_of(&mut it, "--listen")?.to_string()),
            "--workers" => {
                workers = value_of(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers takes a positive integer".to_string())?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let daemon = Daemon::new(DaemonConfig { workers });
    match listen {
        None => {
            let mut transport = StdioTransport::new();
            daemon.serve(&mut transport).map_err(|e| e.to_string())
        }
        Some(spec) => {
            let mut transport = SocketTransport::bind(&spec)
                .map_err(|e| format!("cannot listen on {spec:?}: {e}"))?;
            // announce the bound address (crucial for ':0' port picks)
            // on stdout so drivers can discover where to connect
            let addr = transport.local_addr().unwrap_or(spec);
            use std::io::Write as _;
            let mut stdout = std::io::stdout();
            let _ = writeln!(
                stdout,
                "{{\"event\":\"listening\",\"addr\":\"{}\",\"workers\":{workers}}}",
                addr.replace('\\', "\\\\").replace('"', "\\\"")
            );
            let _ = stdout.flush();
            daemon.serve(&mut transport).map_err(|e| e.to_string())
        }
    }
}

fn bench(args: &[String]) -> ExitCode {
    use inrpp_bench::perf::{compare, BenchSnapshot};
    let mut quick = false;
    let mut out_path = "BENCH_flowsim.json".to_string();
    let mut notes: Vec<(String, String)> = Vec::new();
    let mut compare_files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match value_of(&mut it, "--out") {
                Ok(v) => out_path = v.to_string(),
                Err(e) => {
                    eprintln!("inrpp bench: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--note" => match value_of(&mut it, "--note").map(|v| v.split_once('=')) {
                Ok(Some((k, v))) => notes.push((k.to_string(), v.to_string())),
                Ok(None) => {
                    eprintln!("inrpp bench: --note takes KEY=VALUE");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("inrpp bench: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match value_of(&mut it, "--compare") {
                Ok(v) => compare_files.push(v.to_string()),
                Err(e) => {
                    eprintln!("inrpp bench: {e}");
                    return ExitCode::FAILURE;
                }
            },
            // bare paths after --compare extend the comparison set
            other if !other.starts_with("--") && !compare_files.is_empty() => {
                compare_files.push(other.to_string());
            }
            other => {
                eprintln!("inrpp bench: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if compare_files.len() > 2 {
        eprintln!("inrpp bench: --compare takes at most two files");
        return ExitCode::FAILURE;
    }

    // pure diff mode: two files, no fresh run
    if compare_files.len() == 2 {
        let load = |p: &str| {
            BenchSnapshot::load(std::path::Path::new(p)).unwrap_or_else(|e| {
                eprintln!("inrpp bench: {e}");
                std::process::exit(1);
            })
        };
        let report = compare(&load(&compare_files[0]), &load(&compare_files[1]));
        print!("{}", report.render_table());
        return if report.failed() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let report = inrpp_bench::perf::run_bench(quick, notes);
    print!("{}", report.render_table());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("inrpp bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    // run-then-compare mode: one baseline file
    if let Some(baseline) = compare_files.first() {
        let old = match BenchSnapshot::load(std::path::Path::new(baseline)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("inrpp bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let diff = compare(&old, &BenchSnapshot::of(&report));
        print!("\n{}", diff.render_table());
        if diff.failed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_run(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("inrpp run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut jobs: Vec<(String, inrpp_runner::SweepSpec)> = Vec::new();
    for id in &parsed.experiments {
        if id == "all" {
            for e in sweeps::EXPERIMENTS {
                jobs.push((
                    e.id.to_string(),
                    sweeps::build(e.id, &parsed.opts).expect("registry id"),
                ));
            }
        } else if let Some(spec) = sweeps::build(id, &parsed.opts) {
            jobs.push((id.clone(), spec));
        } else {
            eprintln!("inrpp run: unknown experiment '{id}' (try 'inrpp list')");
            return ExitCode::FAILURE;
        }
    }
    let many = jobs.len() > 1;
    let mut json_reports = Vec::new();
    for (i, (id, spec)) in jobs.iter().enumerate() {
        let report = run_sweep(
            spec,
            &RunnerConfig {
                threads: parsed.threads,
            },
        );
        match parsed.format {
            OutputFormat::Json => json_reports.push(report.to_json()),
            OutputFormat::Csv => {
                if many {
                    if i > 0 {
                        println!();
                    }
                    println!("# {id}");
                }
                print!("{}", sweeps::render(&report, OutputFormat::Csv));
            }
            OutputFormat::Table => {
                if many {
                    if i > 0 {
                        println!();
                    }
                    println!("=== {id} {}", "=".repeat(60usize.saturating_sub(id.len())));
                    println!();
                }
                print!("{}", sweeps::render(&report, OutputFormat::Table));
            }
        }
        if let Some(dir) = &parsed.out_dir {
            if !report.artifacts.is_empty() {
                sweeps::write_artifacts(&report, std::path::Path::new(dir));
            }
        }
    }
    if parsed.format == OutputFormat::Json {
        if many {
            println!("[{}]", json_reports.join(","));
        } else {
            println!("{}", json_reports[0]);
        }
    }
    ExitCode::SUCCESS
}
