//! Regenerates **Fig. 4b**: the CDF of path stretch experienced by traffic
//! under URP (INRP) on Exodus, Telstra and Tiscali.
//!
//! Thin wrapper over the `fig4b` sweep — equivalent to `inrpp run fig4b`;
//! accepts `--quick`, `--csv` (append the summary grid as CSV), and
//! `--threads N`. The full per-topology CDFs are emitted as sweep
//! artifacts: `inrpp run fig4b --out DIR` writes `fig4b_<isp>.csv` files.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig4b_stretch [--quick] [--csv]
//! ```
//!
//! The paper's CDF starts at ≥0.5 for stretch 1.0 (most traffic stays on
//! the shortest path) and reaches 1.0 by stretch ≈ 1.35.

fn main() {
    inrpp_bench::sweeps::legacy_main("fig4b");
}
