//! Regenerates **Fig. 4b**: the CDF of path stretch experienced by traffic
//! under URP (INRP) on Exodus, Telstra and Tiscali.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig4b_stretch [--quick] [--csv]
//! ```
//!
//! The paper's CDF starts at ≥0.5 for stretch 1.0 (most traffic stays on
//! the shortest path) and reaches 1.0 by stretch ≈ 1.35.

use inrpp::scenario::Fig4Config;
use inrpp_bench::experiments::{fig4b, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp_sim::time::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(5),
            load: 1.25,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    let series = fig4b(&cfg);
    println!("Fig. 4b — URP path-stretch CDF (traffic-weighted)\n");
    // summarise at the paper's x-axis grid
    let grid = [1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.5, 2.0];
    let mut t = Table::new(vec![
        "topology", "F(1.0)", "F(1.1)", "F(1.2)", "F(1.35)", "F(1.5)", "F(2.0)",
    ]);
    for (name, pts) in &series {
        let frac = |x: f64| -> f64 {
            pts.iter()
                .take_while(|&&(v, _)| v <= x)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0)
        };
        t.row(vec![
            name.clone(),
            f(frac(1.0), 3),
            f(frac(1.1), 3),
            f(frac(1.2), 3),
            f(frac(1.35), 3),
            f(frac(1.5), 3),
            f(frac(2.0), 3),
        ]);
    }
    println!("{}", t.render());
    // figure-like rendering of the CDFs, clipped to the paper's x-range
    let clipped: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(name, pts)| {
            let mut v: Vec<(f64, f64)> =
                pts.iter().copied().filter(|&(x, _)| x <= 1.4).collect();
            v.insert(0, (1.0, pts.first().map(|&(_, f)| f).unwrap_or(0.0)));
            (name.clone(), v)
        })
        .collect();
    let plot_series: Vec<(&str, &[(f64, f64)])> = clipped
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!("{}", inrpp_bench::table::ascii_plot(&plot_series, 60, 12));
    println!("paper shape: F(1.0) >= 0.5 and mass concentrated below ~1.35\n");
    if csv {
        println!("stretch,cdf,topology");
        for (name, pts) in &series {
            for &g in &grid {
                let v = pts
                    .iter()
                    .take_while(|&&(x, _)| x <= g)
                    .last()
                    .map(|&(_, f)| f)
                    .unwrap_or(0.0);
                println!("{g},{v:.4},{name}");
            }
        }
    }
}
