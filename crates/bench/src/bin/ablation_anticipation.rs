//! **Ablation A2** — anticipation window `A_c`: how far ahead should
//! receivers request? Measured as the completion time of a bottlenecked
//! transfer on the Fig. 3 network (packet-level simulation).
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_anticipation
//! ```

use inrpp_bench::experiments::ablation_anticipation;
use inrpp_bench::table::{f, Table};

fn main() {
    println!("A2 — Anticipation window sweep (Fig. 3 network, 600-chunk flow 1->4)\n");
    let res = ablation_anticipation(&[0, 1, 2, 4, 8, 16, 32]);
    let mut t = Table::new(vec!["A_c (chunks)", "flow completion time"]);
    for (ac, fct) in &res {
        t.row(vec![ac.to_string(), format!("{}s", f(*fct, 3))]);
    }
    println!("{}", t.render());
    println!(
        "expectation: tiny windows starve the pipe (request-rate limited); \
         larger windows approach the pooled-capacity completion time"
    );
}
