//! **Ablation A2** — anticipation window `A_c`: how far ahead should
//! receivers request? Measured as the completion time of a bottlenecked
//! transfer on the Fig. 3 network (packet-level simulation).
//!
//! Thin wrapper over the `ablation-anticipation` sweep — equivalent to
//! `inrpp run ablation-anticipation`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_anticipation
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-anticipation");
}
