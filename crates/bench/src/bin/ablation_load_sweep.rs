//! **Ablation A7** — load sweep: URP's advantage over SP as offered load
//! crosses the network's carrying capacity. At light load both deliver
//! everything (no gain); the pooling dividend appears as links saturate.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_load_sweep [--quick]
//! ```

use inrpp::scenario::Fig4Config;
use inrpp_bench::experiments::{load_sweep, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp_sim::time::SimDuration;
use inrpp_topology::rocketfuel::Isp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(3),
            mean_flow_bits: 60e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    println!("A7 — Load sweep on Exodus (URP gain vs offered load)\n");
    let loads = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0];
    let rows = load_sweep(Isp::Exodus, &base, &loads);
    let mut t = Table::new(vec!["load (x capacity proxy)", "SP", "URP", "URP gain"]);
    for (load, sp, urp, gain) in &rows {
        t.row(vec![
            load.to_string(),
            f(*sp, 3),
            f(*urp, 3),
            format!("{gain:+.1}%"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: near-zero gain while the network carries everything, a \
         pooling peak at moderate congestion, and a declining dividend \
         under deep overload — once the detour paths saturate too, no \
         routing scheme can manufacture capacity"
    );
}
