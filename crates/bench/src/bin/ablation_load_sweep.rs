//! **Ablation A7** — load sweep: URP's advantage over SP as offered load
//! crosses the network's carrying capacity. At light load both deliver
//! everything (no gain); the pooling dividend appears as links saturate.
//!
//! Thin wrapper over the `ablation-load-sweep` sweep — equivalent to
//! `inrpp run ablation-load-sweep`; accepts `--quick` and `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_load_sweep [--quick]
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-load-sweep");
}
