//! Regenerates the **Fig. 3 worked example**: e2e flow control vs INRPP on
//! the 4-node topology — per-flow rates and Jain's fairness index.
//!
//! Thin wrapper over the `fig3` sweep — equivalent to `inrpp run fig3`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig3_fairness
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("fig3");
}
