//! Regenerates the **Fig. 3 worked example**: e2e flow control vs INRPP on
//! the 4-node topology — per-flow rates and Jain's fairness index.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin fig3_fairness
//! ```

use inrpp_bench::experiments::fig3;
use inrpp_bench::table::{f, Table};

fn main() {
    let out = fig3();
    println!("Fig. 3 — Global Fairness vs e2e Flow Control\n");
    let mut t = Table::new(vec!["scheme", "flow 1->4", "flow 1->3", "Jain", "(paper)"]);
    t.row(vec![
        "e2e (TCP-like)".to_string(),
        format!("{} Mbps", f(out.e2e_rates[0] / 1e6, 2)),
        format!("{} Mbps", f(out.e2e_rates[1] / 1e6, 2)),
        f(out.e2e_jain, 3),
        "0.73".to_string(),
    ]);
    t.row(vec![
        "INRPP".to_string(),
        format!("{} Mbps", f(out.inrpp_rates[0] / 1e6, 2)),
        format!("{} Mbps", f(out.inrpp_rates[1] / 1e6, 2)),
        f(out.inrpp_jain, 3),
        "1.00".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "paper expectation: e2e rates (2, 8) Mbps; INRPP rates (5, 5) Mbps \
         with 3 Mbps detoured via node 3"
    );
}
