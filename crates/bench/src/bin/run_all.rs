//! Runs every experiment in sequence — the one-shot regeneration of all
//! paper artifacts plus ablations, in the order of `DESIGN.md` §6.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin run_all [--quick]
//! ```
//!
//! Output sections mirror `EXPERIMENTS.md`.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins = [
        ("T1", "table1_detours", false),
        ("F2", "fig2_regimes", true),
        ("F3", "fig3_fairness", false),
        ("F4a", "fig4a_throughput", true),
        ("F4b", "fig4b_stretch", true),
        ("C1", "custody_feasibility", false),
        ("A1", "ablation_detour_depth", true),
        ("A2", "ablation_anticipation", false),
        ("A3", "ablation_cache_size", false),
        ("A4", "ablation_backpressure", false),
        ("A5", "ablation_interval", false),
        ("A6", "coexistence", false),
        ("A7", "ablation_load_sweep", true),
        ("A8", "ablation_link_failure", true),
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for (id, bin, takes_quick) in bins {
        println!("\n=== [{id}] {bin} {}", "=".repeat(50_usize.saturating_sub(bin.len())));
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick && takes_quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("[{id}] {bin} exited with {s}"),
            Err(e) => eprintln!(
                "[{id}] could not launch {bin}: {e} (build all bins first: \
                 cargo build --release -p inrpp-bench --bins)"
            ),
        }
    }
}
