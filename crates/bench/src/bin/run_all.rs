//! Runs every experiment in sequence — the one-shot regeneration of all
//! paper artifacts plus ablations, equivalent to `inrpp run all`.
//!
//! Unlike the pre-runner incarnation (which spawned the sibling binaries
//! as child processes), this executes every sweep in-process on the
//! shared worker pool — but keeps the old contract that one failing
//! experiment is reported and skipped, never allowed to abort the rest
//! of the regeneration.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin run_all [--quick] [--threads N]
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use inrpp_bench::sweeps::{self, OutputFormat, SweepOptions};
use inrpp_runner::{run_sweep, RunnerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions {
        quick: args.iter().any(|a| a == "--quick"),
        ..SweepOptions::default()
    };
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a count"))
        .unwrap_or_else(|| RunnerConfig::default().threads);
    let mut failures = 0u32;
    for e in sweeps::EXPERIMENTS {
        let id = e.id;
        println!(
            "\n=== {id} {}",
            "=".repeat(60usize.saturating_sub(id.len()))
        );
        println!();
        // one broken experiment must not cost the other fourteen
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let spec = sweeps::build(id, &opts).expect("registry id");
            run_sweep(&spec, &RunnerConfig { threads })
        }));
        match outcome {
            Ok(report) => print!("{}", sweeps::render(&report, OutputFormat::Table)),
            Err(_) => {
                failures += 1;
                eprintln!("[{id}] experiment panicked; continuing with the rest");
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
