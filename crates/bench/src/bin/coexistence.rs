//! **Ablation A6** — TCP/IP coexistence (paper §4: "co-existence with
//! TCP/IP will have to be investigated"). An AIMD probe flow crosses the
//! Fig. 3 bottleneck alone, next to a second AIMD flow, and next to an
//! INRPP flow, measuring how much goodput each companion costs it.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin coexistence
//! ```

use inrpp_bench::experiments::coexistence;
use inrpp_bench::table::{f, Table};

fn main() {
    println!("A6 — Coexistence: does INRPP starve an AIMD (TCP-like) flow?\n");
    let rows = coexistence();
    let mut t = Table::new(vec![
        "scenario",
        "AIMD probe goodput",
        "companion goodput",
        "drops",
    ]);
    for r in &rows {
        t.row(vec![
            r.scenario.to_string(),
            format!("{} Mbps", f(r.aimd_goodput / 1e6, 2)),
            r.companion_goodput
                .map(|g| format!("{} Mbps", f(g / 1e6, 2)))
                .unwrap_or_else(|| "-".to_string()),
            r.drops.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: an INRPP companion pools the node-3 side path instead of \
         fighting for the 2 Mbps bottleneck, so the AIMD probe keeps (at \
         least) its fair share — in-network pooling is TCP-friendly by \
         construction"
    );
}
