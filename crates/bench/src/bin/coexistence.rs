//! **Ablation A6** — TCP/IP coexistence (paper §4: "co-existence with
//! TCP/IP will have to be investigated"). An AIMD probe flow crosses the
//! Fig. 3 bottleneck alone, next to a second AIMD flow, and next to an
//! INRPP flow, measuring how much goodput each companion costs it.
//!
//! Thin wrapper over the `coexistence` sweep — equivalent to
//! `inrpp run coexistence`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin coexistence
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("coexistence");
}
