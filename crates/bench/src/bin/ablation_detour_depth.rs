//! **Ablation A1** — detour depth: how much of URP's Fig. 4a gain comes
//! from 1-hop detours vs the recursive "one extra hop"?
//!
//! Thin wrapper over the `ablation-detour-depth` sweep — equivalent to
//! `inrpp run ablation-detour-depth`; accepts `--quick` and `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_detour_depth [--quick]
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-detour-depth");
}
