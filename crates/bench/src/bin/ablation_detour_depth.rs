//! **Ablation A1** — detour depth: how much of URP's Fig. 4a gain comes
//! from 1-hop detours vs the recursive "one extra hop"?
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_detour_depth [--quick]
//! ```

use inrpp_bench::experiments::{ablation_detour_depth, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp::scenario::Fig4Config;
use inrpp_sim::time::SimDuration;
use inrpp_topology::rocketfuel::Isp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(4),
            load: 1.5,
            mean_flow_bits: 80e6,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    println!("A1 — Detour depth sweep (Exodus, load {}x)\n", cfg.load);
    let res = ablation_detour_depth(Isp::Exodus, &cfg, &[0, 1, 2]);
    let base = res[0].1;
    let mut t = Table::new(vec!["detour depth", "throughput", "gain over SP"]);
    for (depth, thr) in &res {
        let label = match depth {
            0 => "0 (= SP baseline)".to_string(),
            1 => "1 hop".to_string(),
            d => format!("{d} hops (paper's Fig. 4 setup)"),
        };
        t.row(vec![
            label,
            f(*thr, 3),
            format!("{:+.1}%", 100.0 * (thr - base) / base),
        ]);
    }
    println!("{}", t.render());
}
