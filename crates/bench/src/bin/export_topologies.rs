//! Exports the nine calibrated ISP topologies as plain-text edge lists —
//! the reproduction's stand-in for redistributing Rocketfuel map files.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin export_topologies [dir]
//! ```
//!
//! Writes `<dir>/<isp>.topo` (default `./data`), one file per ISP, in the
//! format parsed by `inrpp_topology::io::read_topology`.

use std::fs;
use std::path::PathBuf;

use inrpp_bench::experiments::SEED;
use inrpp_topology::io::write_topology;
use inrpp_topology::rocketfuel::{generate_isp, Isp};
use inrpp_topology::stats::graph_stats;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data".to_string())
        .into();
    fs::create_dir_all(&dir).expect("create output directory");
    for isp in Isp::all() {
        let topo = generate_isp(isp, SEED);
        let stats = graph_stats(&topo);
        let slug: String = isp
            .name()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        let path = dir.join(format!("{slug}.topo"));
        fs::write(&path, write_topology(&topo)).expect("write topology file");
        println!(
            "{:<24} -> {} ({} nodes, {} links, diameter {:?})",
            isp.name(),
            path.display(),
            stats.nodes,
            stats.links,
            stats.diameter
        );
    }
    println!("\nreload with inrpp_topology::io::read_topology(&fs::read_to_string(path)?)");
}
