//! Exports the nine calibrated ISP topologies as plain-text edge lists —
//! the reproduction's stand-in for redistributing Rocketfuel map files.
//!
//! Thin wrapper over the `export-topologies` sweep — equivalent to
//! `inrpp run export-topologies --out <dir>`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin export_topologies [dir]
//! ```
//!
//! Writes `<dir>/<isp>.topo` (default `./data`), one file per ISP, in the
//! format parsed by `inrpp_topology::io::read_topology`.

fn main() {
    inrpp_bench::sweeps::legacy_main("export-topologies");
}
