//! **Ablation A8** — link-failure robustness: SP vs URP throughput as a
//! growing fraction of (non-bridge) links fails. Detour-capable routing
//! should degrade more gracefully — the resilience half of the resource
//! pooling argument.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_link_failure [--quick]
//! ```

use inrpp::scenario::Fig4Config;
use inrpp_bench::experiments::{ablation_link_failure, quick_fig4_config, SEED};
use inrpp_bench::table::{f, Table};
use inrpp_sim::time::SimDuration;
use inrpp_topology::rocketfuel::Isp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        quick_fig4_config()
    } else {
        Fig4Config {
            duration: SimDuration::from_secs(3),
            mean_flow_bits: 60e6,
            load: 1.0,
            seed: SEED,
            ..Fig4Config::default()
        }
    };
    println!("A8 — Link-failure robustness (Exodus, load {}x)\n", cfg.load);
    let rows = ablation_link_failure(Isp::Exodus, &cfg, &[0.0, 0.05, 0.1, 0.2]);
    let mut t = Table::new(vec!["links failed", "SP", "URP", "URP edge"]);
    for (frac, sp, urp) in &rows {
        if sp.is_nan() {
            t.row(vec![
                format!("{:.0}%", frac * 100.0),
                "(partitioned)".to_string(),
                String::new(),
                String::new(),
            ]);
            continue;
        }
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            f(*sp, 3),
            f(*urp, 3),
            format!("{:+.1}%", 100.0 * (urp - sp) / sp),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: URP's detour machinery keeps soaking up capacity lost to \
         failures; SP throughput falls with every shortest-path tree the \
         failures break"
    );
}
