//! **Ablation A8** — link-failure robustness: SP vs URP throughput as a
//! growing fraction of (non-bridge) links fails. Detour-capable routing
//! should degrade more gracefully — the resilience half of the resource
//! pooling argument.
//!
//! Thin wrapper over the `ablation-link-failure` sweep — equivalent to
//! `inrpp run ablation-link-failure`; accepts `--quick` and `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_link_failure [--quick]
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-link-failure");
}
