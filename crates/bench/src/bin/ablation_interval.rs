//! **Ablation A5** — estimator interval `T_i`: sensitivity of INRPP to
//! the anticipated-rate accounting window (the paper's footnote 4 leaves
//! the setting open and suggests the mean chunk RTT).
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_interval
//! ```

use inrpp_bench::experiments::ablation_interval;
use inrpp_bench::table::{f, Table};

fn main() {
    println!("A5 — Estimator interval sweep (Fig. 3 network, 600-chunk flow)\n");
    let res = ablation_interval(&[10, 25, 50, 100, 200, 400]);
    let mut t = Table::new(vec!["T_i (ms)", "FCT", "chunks detoured"]);
    for (ms, fct, detoured) in &res {
        t.row(vec![
            ms.to_string(),
            format!("{}s", f(*fct, 3)),
            detoured.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expectation: FCT is broadly insensitive (detouring is also queue- \
         triggered); very long windows react sluggishly at flow start"
    );
}
