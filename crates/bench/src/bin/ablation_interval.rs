//! **Ablation A5** — estimator interval `T_i`: sensitivity of INRPP to
//! the anticipated-rate accounting window (the paper's footnote 4 leaves
//! the setting open and suggests the mean chunk RTT).
//!
//! Thin wrapper over the `ablation-interval` sweep — equivalent to
//! `inrpp run ablation-interval`; accepts `--threads N`.
//!
//! ```text
//! cargo run --release -p inrpp-bench --bin ablation_interval
//! ```

fn main() {
    inrpp_bench::sweeps::legacy_main("ablation-interval");
}
