//! `inrpp serve` — service mode over line-delimited JSON.
//!
//! The protocol, transports, and session scheduler moved to the
//! `inrpp-server` crate when service mode grew into a concurrent
//! multi-session daemon (see `inrpp_server`'s crate docs for the full
//! protocol and determinism contract). This module re-exports the
//! stdio entry point the bench CLI and the original tests were built
//! on, and keeps a wire-compatibility test pinning the v1 protocol
//! bytes.

pub use inrpp_server::{serve_lines, serve_lines_with};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(script: &str) -> Vec<String> {
        let mut input = Cursor::new(script.to_string());
        let mut out = Vec::new();
        serve_lines(&mut input, &mut out).expect("serve loop");
        String::from_utf8(out)
            .expect("utf8 replies")
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// The v1 wire format must survive the move to the daemon: plain
    /// sid-less scripts produce the same reply shapes as before.
    #[test]
    fn v1_wire_format_is_preserved() {
        for engine in ["fluid", "packet"] {
            let script = format!(
                concat!(
                    r#"{{"cmd":"open","engine":"{}","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}}"#,
                    "\n",
                    r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}}"#,
                    "\n",
                    r#"{{"cmd":"advance","to_secs":1.5}}"#,
                    "\n",
                    r#"{{"cmd":"snapshot"}}"#,
                    "\n",
                    r#"{{"cmd":"close"}}"#,
                    "\n",
                ),
                engine
            );
            let replies = run(&script);
            assert_eq!(replies.len(), 5, "{engine}: {replies:?}");
            for r in &replies {
                assert!(r.starts_with("{\"ok\":true"), "expected ok: {r}");
                assert!(!r.contains("\"sid\""), "bare sessions carry no sid: {r}");
            }
            assert!(replies[0].contains("\"event\":\"open\""), "{}", replies[0]);
            assert!(replies[2].contains("\"now_secs\":1.5"), "{}", replies[2]);
            assert!(
                replies[4].contains("\"event\":\"close\"")
                    && replies[4].contains("\"arrived_flows\":1")
                    && replies[4].contains("\"completed_flows\":1"),
                "{engine}: {}",
                replies[4]
            );
        }
    }

    /// Error replies keep their v1 kinds and ordering.
    #[test]
    fn v1_error_kinds_are_preserved() {
        let replies = run(concat!(
            "not json\n",
            r#"{"cmd":"warp"}"#,
            "\n",
            r#"{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":5}"#,
            "\n",
            r#"{"cmd":"teleport"}"#,
            "\n",
            r#"{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":5}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        ));
        assert_eq!(replies.len(), 6, "{replies:?}");
        let kind = |r: &str, k: &str| {
            assert!(
                r.starts_with(&format!("{{\"ok\":false,\"kind\":\"{k}\"")),
                "expected kind {k:?}: {r}"
            );
        };
        kind(&replies[0], "parse");
        kind(&replies[1], "state");
        assert!(replies[2].starts_with("{\"ok\":true"), "{}", replies[2]);
        kind(&replies[3], "unknown_cmd");
        kind(&replies[4], "state"); // double open
        assert!(replies[5].starts_with("{\"ok\":true"), "{}", replies[5]);
    }
}
