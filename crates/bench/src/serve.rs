//! `inrpp serve` — service mode over line-delimited JSON on stdio.
//!
//! Each request is one flat JSON object per line; each reply is one JSON
//! object per line with an `"ok"` field. The protocol drives an
//! [`inrpp::service::ServiceSession`] (fluid or packet): open a session,
//! stream transfers in (`feed` or a `# inrpp-trace v1` file), advance
//! the clock, take [`RunReport`] snapshots, checkpoint to a file, and
//! resume bit-identically in a later process.
//!
//! ```text
//! {"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30}
//! {"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}
//! {"cmd":"advance","to_secs":1.5}
//! {"cmd":"snapshot"}
//! {"cmd":"checkpoint","path":"run.ckpt"}
//! {"cmd":"close"}
//! ```
//!
//! Resume replays the same `open` fields (the checkpoint's embedded
//! session fingerprint rejects any drift) plus the checkpoint path:
//!
//! ```text
//! {"cmd":"resume","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"path":"run.ckpt"}
//! ```
//!
//! `open`/`resume` accept `seed`, `workers`, `chunk_bytes` (transfer
//! quantum, default 1250 bytes) and `trace` (path to a trace file whose
//! transfers are pumped automatically at each `advance` boundary;
//! on resume, entries already fed before the checkpoint are skipped).
//! Errors are replies, not crashes: `{"ok":false,"kind":"...",
//! "error":"..."}` leaves the session (if any) open. `kind` classifies
//! the failure — `parse` (malformed JSON / bad fields), `unknown_cmd`,
//! `config` (bad spec values), `state` (out-of-order requests, e.g. an
//! `advance` target before `now`), `session` (engine errors),
//! `checkpoint` (unreadable/corrupt checkpoints), `io`, and `timeout`.
//!
//! ## Self-healing
//!
//! `open`/`resume` also accept:
//!
//! - `faults`: a fault-plan string ([`FaultPlan::parse`] syntax, e.g.
//!   `"linkdown@1.5:3; linkup@2.5:3"`) applied deterministically by the
//!   engine mid-run.
//! - `ckpt_dir` + `ckpt_every` + `ckpt_retain`: auto-checkpoint into
//!   `ckpt_dir/ckpt-NNNNNN.ckpt` after every `ckpt_every` successful
//!   `advance`s (default 1), keeping the last `ckpt_retain` files
//!   (default 3). Writes are atomic (tmp + rename), so a crash mid-write
//!   never corrupts an existing checkpoint.
//! - `resume` with `ckpt_dir` and no `path` recovers from the **newest
//!   readable** auto-checkpoint, falling back past truncated or corrupt
//!   files (each skipped file is reported in the `resume` reply).
//! - `advance` accepts `timeout_ms`: a wall-clock budget for that one
//!   request. On expiry the reply is `kind":"timeout"` with the partial
//!   `now_secs` reached; the session stays open and a later `advance`
//!   continues from there (simulated results are unaffected — advance
//!   boundaries never change report bytes).
//!
//! JSON is hand-rolled on both sides — requests must be *flat* objects
//! of strings, numbers, and booleans; replies may nest (`snapshot`
//! carries a per-flow array).

use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use inrpp::config::InrppConfig;
use inrpp::service::{Checkpoint, FluidBacking, FluidService, ServiceSession};
use inrpp::session::{EngineKind, RunReport, Session, SessionError, SessionStrategy, Transfer};
use inrpp::source::{pump, skip_until, TraceSource, WorkloadSource};
use inrpp_packetsim::{AimdConfig, PacketEngine, PacketService, PacketSimConfig, TransportKind};
use inrpp_sim::fault::FaultPlan;
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::{ByteSize, Rate};
use inrpp_topology::Topology;

// ===================================================================
// Flat JSON (requests)
// ===================================================================

/// A value in a flat request object.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// A JSON string.
    Str(String),
    /// Any JSON number (integers included).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parse one flat JSON object (`{"k": v, ...}` — no nesting) into its
/// key/value pairs. Line-oriented protocol, so errors are plain strings.
fn parse_object(s: &str) -> Result<Vec<(String, Json)>, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    skip_ws(b, &mut i);
    expect(b, &mut i, b'{')?;
    skip_ws(b, &mut i);
    if peek(b, i) == Some(b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(b, &mut i);
            let key = parse_string(b, &mut i)?;
            skip_ws(b, &mut i);
            expect(b, &mut i, b':')?;
            skip_ws(b, &mut i);
            let val = parse_value(b, &mut i)?;
            out.push((key, val));
            skip_ws(b, &mut i);
            match peek(b, i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {i}, found {:?}",
                        other.map(char::from)
                    ))
                }
            }
        }
    }
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing input after object at byte {i}"));
    }
    Ok(out)
}

fn peek(b: &[u8], i: usize) -> Option<u8> {
    b.get(i).copied()
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while matches!(peek(b, *i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, want: u8) -> Result<(), String> {
    if peek(b, *i) == Some(want) {
        *i += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            char::from(want),
            *i,
            peek(b, *i).map(char::from)
        ))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    expect(b, i, b'"')?;
    let mut out = String::new();
    loop {
        match peek(b, *i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                let esc = peek(b, *i).ok_or("unterminated escape")?;
                *i += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape '\\{}'", char::from(other))),
                }
            }
            Some(_) => {
                // advance one UTF-8 scalar, not one byte
                let rest = &b[*i..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *i += ch.len_utf8();
            }
        }
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    match peek(b, *i) {
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(b'{' | b'[') => Err("nested values are not supported; requests are flat".into()),
        Some(_) => {
            let start = *i;
            while matches!(
                peek(b, *i),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                *i += 1;
            }
            let text = std::str::from_utf8(&b[start..*i]).unwrap_or("");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("not a number: {text:?}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: `null` for non-finite floats (JSON has no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

// ===================================================================
// Request field access
// ===================================================================

type Obj = [(String, Json)];

fn field<'o>(obj: &'o Obj, key: &str) -> Option<&'o Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(obj: &Obj, key: &str) -> Result<String, String> {
    match field(obj, key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn num_field(obj: &Obj, key: &str) -> Result<f64, String> {
    match field(obj, key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(_) => Err(format!("field {key:?} must be a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn opt_num_field(obj: &Obj, key: &str) -> Result<Option<f64>, String> {
    match field(obj, key) {
        Some(Json::Num(v)) => Ok(Some(*v)),
        Some(Json::Null) | None => Ok(None),
        Some(_) => Err(format!("field {key:?} must be a number")),
    }
}

fn opt_str_field(obj: &Obj, key: &str) -> Result<Option<String>, String> {
    match field(obj, key) {
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(Json::Null) | None => Ok(None),
        Some(_) => Err(format!("field {key:?} must be a string")),
    }
}

fn u64_field(obj: &Obj, key: &str) -> Result<u64, String> {
    let v = num_field(obj, key)?;
    if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
        Ok(v as u64)
    } else {
        Err(format!("field {key:?} must be a non-negative integer"))
    }
}

// ===================================================================
// Session spec
// ===================================================================

/// Where a `resume` pulls its checkpoint from.
enum ResumeFrom {
    /// An explicit checkpoint file.
    Path(String),
    /// The newest readable auto-checkpoint under the spec's `ckpt_dir`
    /// (crash recovery: falls back past truncated/corrupt files).
    Newest,
}

/// Everything an `open` / `resume` request pins down.
struct OpenSpec {
    engine: EngineKind,
    topology: String,
    strategy: String,
    horizon_secs: f64,
    seed: Option<u64>,
    workers: Option<u64>,
    chunk_bytes: u64,
    trace: Option<String>,
    /// Fault-plan string ([`FaultPlan::parse`] syntax).
    faults: Option<String>,
    /// Auto-checkpoint directory; `None` disables auto-checkpointing.
    ckpt_dir: Option<String>,
    /// Auto-checkpoint after every this many successful `advance`s.
    ckpt_every: u64,
    /// Keep the newest this many auto-checkpoints.
    ckpt_retain: usize,
    /// `Some` for `resume`, `None` for `open`.
    checkpoint: Option<ResumeFrom>,
}

impl OpenSpec {
    fn parse(obj: &Obj, resume: bool) -> Result<Self, String> {
        let engine = match str_field(obj, "engine")?.as_str() {
            "fluid" => EngineKind::Fluid,
            "packet" => EngineKind::Packet,
            other => return Err(format!("unknown engine {other:?} (fluid|packet)")),
        };
        let chunk_bytes = match opt_num_field(obj, "chunk_bytes")? {
            Some(v) if v >= 1.0 && v.fract() == 0.0 => v as u64,
            Some(v) => return Err(format!("chunk_bytes must be a positive integer, got {v}")),
            None => 1250,
        };
        let ckpt_every = match opt_num_field(obj, "ckpt_every")? {
            Some(v) if v >= 1.0 && v.fract() == 0.0 => v as u64,
            Some(v) => return Err(format!("ckpt_every must be a positive integer, got {v}")),
            None => 1,
        };
        let ckpt_retain = match opt_num_field(obj, "ckpt_retain")? {
            Some(v) if v >= 1.0 && v.fract() == 0.0 => v as usize,
            Some(v) => return Err(format!("ckpt_retain must be a positive integer, got {v}")),
            None => 3,
        };
        let ckpt_dir = opt_str_field(obj, "ckpt_dir")?;
        let checkpoint = if resume {
            match opt_str_field(obj, "path")? {
                Some(p) => Some(ResumeFrom::Path(p)),
                None if ckpt_dir.is_some() => Some(ResumeFrom::Newest),
                None => {
                    return Err("resume needs \"path\" (a checkpoint file) or \"ckpt_dir\" \
                         (recover from the newest auto-checkpoint)"
                        .into())
                }
            }
        } else {
            None
        };
        Ok(OpenSpec {
            engine,
            topology: str_field(obj, "topology")?,
            strategy: str_field(obj, "strategy")?,
            horizon_secs: num_field(obj, "horizon_secs")?,
            seed: opt_num_field(obj, "seed")?.map(|v| v as u64),
            workers: opt_num_field(obj, "workers")?.map(|v| v as u64),
            chunk_bytes,
            trace: opt_str_field(obj, "trace")?,
            faults: opt_str_field(obj, "faults")?,
            ckpt_dir,
            ckpt_every,
            ckpt_retain,
            checkpoint,
        })
    }

    fn strategy(&self) -> Result<SessionStrategy, String> {
        match self.strategy.as_str() {
            "urp" | "inrpp" => Ok(SessionStrategy::urp()),
            "sp" => Ok(SessionStrategy::Sp),
            other => Err(format!("unknown strategy {other:?} (urp|sp)")),
        }
    }

    /// The packet engine matching the strategy, with the session's
    /// transfer quantum.
    fn packet_engine(&self) -> Result<PacketEngine, String> {
        let transport = match self.strategy()? {
            SessionStrategy::Urp(_) => TransportKind::Inrpp(InrppConfig::default()),
            SessionStrategy::Sp => TransportKind::Aimd(AimdConfig::default()),
            other => return Err(format!("no packet transport for {}", other.name())),
        };
        Ok(PacketEngine::new(PacketSimConfig {
            chunk_bytes: ByteSize::bytes(self.chunk_bytes),
            transport,
            ..PacketSimConfig::default()
        }))
    }
}

/// The topology catalog: `fig3`, or `line:N` / `ring:N` / `star:N` /
/// `mesh:N` / `dumbbell:N` with the serve defaults (10 Mbit/s links,
/// 10 ms delay; dumbbell bottleneck 10 Mbit/s, access 40 Mbit/s).
fn topology_by_name(name: &str) -> Result<Topology, String> {
    if name == "fig3" {
        return Ok(Topology::fig3());
    }
    let (kind, n) = match name.split_once(':') {
        Some((k, n)) => (
            k,
            n.parse::<usize>()
                .map_err(|_| format!("bad node count in topology {name:?}"))?,
        ),
        None => return Err(format!("unknown topology {name:?}")),
    };
    let cap = Rate::mbps(10.0);
    let delay = SimDuration::from_millis(10);
    match kind {
        "line" => Ok(Topology::line(n, cap, delay)),
        "ring" => Ok(Topology::ring(n, cap, delay)),
        "star" => Ok(Topology::star(n, cap, delay)),
        "mesh" => Ok(Topology::full_mesh(n, cap, delay)),
        "dumbbell" => Ok(Topology::dumbbell(n, Rate::mbps(40.0), cap, delay)),
        _ => Err(format!("unknown topology {name:?}")),
    }
}

// ===================================================================
// Replies
// ===================================================================

/// An error reply with a machine-readable `kind`: `parse`,
/// `unknown_cmd`, `config`, `state`, `session`, `checkpoint`, `io`,
/// `timeout`. The session (if any) stays open.
fn fail_kind(out: &mut dyn Write, kind: &str, msg: &str) -> io::Result<()> {
    writeln!(
        out,
        "{{\"ok\":false,\"kind\":\"{}\",\"error\":\"{}\"}}",
        esc(kind),
        esc(msg)
    )
}

/// An error reply for a [`SessionError`], classified by variant.
fn fail_session(out: &mut dyn Write, e: &SessionError) -> io::Result<()> {
    let kind = match e {
        SessionError::CheckpointMismatch(_) => "checkpoint",
        SessionError::InvalidConfig(_) => "config",
        _ => "session",
    };
    fail_kind(out, kind, &e.to_string())
}

fn ok_event(out: &mut dyn Write, event: &str, extra: &str) -> io::Result<()> {
    if extra.is_empty() {
        writeln!(out, "{{\"ok\":true,\"event\":\"{}\"}}", esc(event))
    } else {
        writeln!(out, "{{\"ok\":true,\"event\":\"{}\",{extra}}}", esc(event))
    }
}

/// Serialise a [`RunReport`] reply (`snapshot` / `close`).
fn write_report(
    out: &mut dyn Write,
    event: &str,
    topo: &Topology,
    report: &RunReport,
) -> io::Result<()> {
    let a = &report.aggregates;
    let mut flows = String::new();
    for (i, f) in report.flows.iter().enumerate() {
        if i > 0 {
            flows.push(',');
        }
        let _ = write!(
            flows,
            "{{\"flow\":{},\"src\":\"{}\",\"dst\":\"{}\",\"offered_bits\":{},\
             \"delivered_bits\":{},\"arrival_secs\":{},\"fct_secs\":{},\"retransmits\":{}",
            f.flow,
            esc(&topo.node(f.src).name),
            esc(&topo.node(f.dst).name),
            num(f.offered_bits),
            num(f.delivered_bits),
            num(f.arrival.as_secs_f64()),
            f.fct_secs.map(num).unwrap_or_else(|| "null".into()),
            f.retransmits,
        );
        // recovery metrics appear only when a fault actually touched
        // the flow, so fault-free replies keep their exact shape
        if f.detours > 0 || f.custody_rescues > 0 || f.outage_delay_secs > 0.0 {
            let _ = write!(
                flows,
                ",\"detours\":{},\"custody_rescues\":{},\"outage_delay_secs\":{}",
                f.detours,
                f.custody_rescues,
                num(f.outage_delay_secs),
            );
        }
        flows.push('}');
    }
    writeln!(
        out,
        "{{\"ok\":true,\"event\":\"{}\",\"engine\":\"{}\",\"strategy\":\"{}\",\
         \"topology\":\"{}\",\"arrived_flows\":{},\"completed_flows\":{},\
         \"offered_bits\":{},\"delivered_bits\":{},\"duration_secs\":{},\
         \"mean_fct_secs\":{},\"mean_utilisation\":{},\"flows\":[{}]}}",
        esc(event),
        report.engine,
        esc(&report.strategy),
        esc(&report.topology),
        a.arrived_flows,
        a.completed_flows,
        num(a.offered_bits),
        num(a.delivered_bits),
        num(a.duration.as_secs_f64()),
        num(a.mean_fct_secs),
        num(a.mean_utilisation),
        flows,
    )
}

// ===================================================================
// Self-healing: auto-checkpoints, crash recovery, guarded advance
// ===================================================================

/// List `ckpt-NNNNNN.ckpt` files in `dir` as `(sequence, path)` pairs
/// (unsorted; missing or unreadable directories yield an empty list).
fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ckpt"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out
}

/// Crash recovery: decode the newest readable checkpoint in `dir`,
/// falling back past truncated/corrupt files. Returns the checkpoint,
/// its sequence number (auto-checkpointing continues from there), and a
/// diagnostic per skipped file.
fn recover_newest(dir: &Path) -> Result<(Checkpoint, u64, Vec<String>), String> {
    let mut found = list_checkpoints(dir);
    if found.is_empty() {
        return Err(format!(
            "no checkpoints matching ckpt-*.ckpt in {:?}",
            dir.display()
        ));
    }
    found.sort();
    let mut skipped = Vec::new();
    for (seq, path) in found.into_iter().rev() {
        match fs::read(&path) {
            Err(e) => skipped.push(format!("{}: {e}", path.display())),
            Ok(bytes) => match Checkpoint::from_bytes(&bytes) {
                Ok(c) => return Ok((c, seq, skipped)),
                Err(e) => skipped.push(format!("{}: {e}", path.display())),
            },
        }
    }
    Err(format!(
        "no usable checkpoint in {:?}: {}",
        dir.display(),
        skipped.join("; ")
    ))
}

/// Auto-checkpoint state: write `ckpt_dir/ckpt-NNNNNN.ckpt` after every
/// `every` successful advances, atomically (tmp + rename), pruning all
/// but the newest `retain` files.
struct AutoCkpt {
    dir: PathBuf,
    every: u64,
    retain: usize,
    advances: u64,
    seq: u64,
}

impl AutoCkpt {
    /// Record one successful advance; write + prune when due. Returns
    /// the new checkpoint's sequence number when one was written.
    fn after_advance(&mut self, svc: &dyn ServiceSession) -> Result<Option<u64>, String> {
        self.advances += 1;
        if self.advances % self.every != 0 {
            return Ok(None);
        }
        let bytes = svc.checkpoint().to_bytes();
        self.seq += 1;
        let name = format!("ckpt-{:06}.ckpt", self.seq);
        fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        // atomic publish: a crash mid-write leaves only a .tmp behind,
        // never a truncated ckpt-*.ckpt
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let path = self.dir.join(&name);
        fs::write(&tmp, &bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path).map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
        let mut all = list_checkpoints(&self.dir);
        all.sort();
        while all.len() > self.retain {
            let (_, old) = all.remove(0);
            fs::remove_file(old).ok(); // best-effort
        }
        Ok(Some(self.seq))
    }
}

/// How a guarded advance failed.
enum AdvanceError {
    /// The wall-clock budget expired; the session stopped (consistently)
    /// at the contained instant and can be advanced again later.
    Timeout(SimTime),
    /// The engine rejected the advance.
    Session(SessionError),
}

/// Advance to `to`, optionally under a wall-clock deadline. With a
/// deadline the span is advanced in slices and the clock consulted
/// between them; intermediate boundaries never change simulated results
/// (the service contract), so a timed-out advance can simply be
/// re-issued.
fn advance_guarded(
    mut source: Option<&mut dyn WorkloadSource>,
    svc: &mut dyn ServiceSession,
    to: SimTime,
    deadline: Option<Instant>,
) -> Result<SimTime, AdvanceError> {
    let Some(deadline) = deadline else {
        let r = match source {
            Some(ref mut s) => pump(&mut **s, svc, to, &mut []),
            None => svc.advance(to, &mut []),
        };
        return r.map_err(AdvanceError::Session);
    };
    const SLICES: u64 = 64;
    let start = svc.now();
    let step = SimDuration::from_nanos((to.duration_since(start).as_nanos() / SLICES).max(1));
    let mut next = start;
    loop {
        let reached = svc.now();
        if reached >= to {
            return Ok(reached);
        }
        if Instant::now() > deadline {
            return Err(AdvanceError::Timeout(reached));
        }
        next = (next + step).min(to);
        let r = match source {
            Some(ref mut s) => pump(&mut **s, svc, next, &mut []),
            None => svc.advance(next, &mut []),
        };
        if let Err(e) = r {
            return Err(AdvanceError::Session(e));
        }
    }
}

// ===================================================================
// The serve loop
// ===================================================================

/// Run the serve protocol until EOF. Testable: `inrpp serve` calls this
/// with locked stdio, tests call it with in-memory buffers.
pub fn serve_lines(input: &mut dyn BufRead, out: &mut dyn Write) -> io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let obj = match parse_object(trimmed) {
            Ok(o) => o,
            Err(e) => {
                fail_kind(out, "parse", &format!("bad request: {e}"))?;
                continue;
            }
        };
        match str_field(&obj, "cmd").as_deref() {
            Ok("open") | Ok("resume") => {
                let resume = matches!(str_field(&obj, "cmd").as_deref(), Ok("resume"));
                match OpenSpec::parse(&obj, resume) {
                    Ok(spec) => drive(&spec, input, out)?,
                    Err(e) => fail_kind(out, "config", &e)?,
                }
            }
            Ok("exit") => return Ok(()),
            Ok(other) => fail_kind(
                out,
                "state",
                &format!("no open session; expected open|resume|exit, got {other:?}"),
            )?,
            Err(e) => fail_kind(out, "parse", e)?,
        }
    }
}

/// Open (or resume) one session and process commands against it until
/// `close` / EOF. The nested scope is what owns the borrow chain:
/// topology → session spec → fluid backing → service.
fn drive(spec: &OpenSpec, input: &mut dyn BufRead, out: &mut dyn Write) -> io::Result<()> {
    let topo = match topology_by_name(&spec.topology) {
        Ok(t) => t,
        Err(e) => return fail_kind(out, "config", &e),
    };
    let strategy = match spec.strategy() {
        Ok(s) => s,
        Err(e) => return fail_kind(out, "config", &e),
    };
    // serve sessions are streaming-only: traffic arrives via feed/trace,
    // so the spec (and its fingerprint) carries an empty transfer list
    let mut builder = Session::builder()
        .topology(&topo)
        .transfers(Vec::new())
        .strategy(strategy)
        .horizon_secs(spec.horizon_secs);
    if let Some(seed) = spec.seed {
        builder = builder.seed(seed);
    }
    if let Some(workers) = spec.workers {
        builder = builder.workers(workers as usize);
    }
    if let Some(text) = &spec.faults {
        match FaultPlan::parse(text) {
            Ok(plan) => builder = builder.faults(plan),
            Err(e) => return fail_kind(out, "config", &format!("bad fault plan: {e}")),
        }
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => return fail_session(out, &e),
    };

    // resume source: an explicit file, or crash recovery from the newest
    // readable auto-checkpoint (skipping truncated/corrupt files)
    let mut recovered_seq = 0u64;
    let mut recovery_skipped: Vec<String> = Vec::new();
    let checkpoint = match &spec.checkpoint {
        None => None,
        Some(ResumeFrom::Path(path)) => match fs::read(path) {
            Ok(bytes) => match Checkpoint::from_bytes(&bytes) {
                Ok(c) => Some(c),
                Err(e) => return fail_session(out, &e),
            },
            Err(e) => {
                return fail_kind(
                    out,
                    "checkpoint",
                    &format!("cannot read checkpoint {path:?}: {e}"),
                )
            }
        },
        Some(ResumeFrom::Newest) => {
            let dir = spec.ckpt_dir.as_deref().expect("validated at parse");
            match recover_newest(Path::new(dir)) {
                Ok((c, seq, skipped)) => {
                    recovered_seq = seq;
                    recovery_skipped = skipped;
                    Some(c)
                }
                Err(e) => return fail_kind(out, "checkpoint", &e),
            }
        }
    };

    let backing;
    let mut svc: Box<dyn ServiceSession + '_> = match spec.engine {
        EngineKind::Fluid => {
            backing = FluidBacking::empty_for(&session);
            let opened = match &checkpoint {
                Some(c) => FluidService::resume(&session, &backing, c),
                None => FluidService::open(&session, &backing),
            };
            match opened {
                Ok(s) => Box::new(s),
                Err(e) => return fail_session(out, &e),
            }
        }
        EngineKind::Packet => {
            let engine = match spec.packet_engine() {
                Ok(e) => e,
                Err(e) => return fail_kind(out, "config", &e),
            };
            let opened = match &checkpoint {
                Some(c) => PacketService::resume(&engine, &session, c),
                None => PacketService::open(&engine, &session),
            };
            match opened {
                Ok(s) => Box::new(s),
                Err(e) => return fail_session(out, &e),
            }
        }
    };

    let mut trace = match &spec.trace {
        Some(path) => match fs::File::open(path) {
            Ok(f) => {
                let mut ts = TraceSource::new(&topo, BufReader::new(f));
                // entries the interrupted run already fed by the
                // checkpoint boundary must not be fed twice
                if let Err(e) = skip_until(&mut ts, svc.now()) {
                    return fail_session(out, &e);
                }
                Some(ts)
            }
            Err(e) => return fail_kind(out, "io", &format!("cannot read trace {path:?}: {e}")),
        },
        None => None,
    };

    let mut auto = spec.ckpt_dir.as_ref().map(|dir| AutoCkpt {
        dir: PathBuf::from(dir),
        every: spec.ckpt_every,
        retain: spec.ckpt_retain,
        advances: 0,
        seq: recovered_seq,
    });

    let mut open_extra = format!(
        "\"engine\":\"{}\",\"now_secs\":{},\"horizon_secs\":{},\"fingerprint\":\"{:016x}\"",
        svc.kind(),
        num(svc.now().as_secs_f64()),
        num(svc.horizon().as_secs_f64()),
        session.fingerprint(),
    );
    if matches!(spec.checkpoint, Some(ResumeFrom::Newest)) {
        let _ = write!(
            open_extra,
            ",\"recovered_seq\":{recovered_seq},\"skipped_checkpoints\":{}",
            recovery_skipped.len()
        );
        if !recovery_skipped.is_empty() {
            let _ = write!(
                open_extra,
                ",\"diagnostics\":\"{}\"",
                esc(&recovery_skipped.join("; "))
            );
        }
    }
    ok_event(
        out,
        if checkpoint.is_some() {
            "resume"
        } else {
            "open"
        },
        &open_extra,
    )?;

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: drop the session unfinished
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let obj = match parse_object(trimmed) {
            Ok(o) => o,
            Err(e) => {
                fail_kind(out, "parse", &format!("bad request: {e}"))?;
                continue;
            }
        };
        let cmd = match str_field(&obj, "cmd") {
            Ok(c) => c,
            Err(e) => {
                fail_kind(out, "parse", &e)?;
                continue;
            }
        };
        match cmd.as_str() {
            "feed" => match parse_feed(&obj, &topo, spec.chunk_bytes) {
                Ok(t) => match svc.feed(&t) {
                    Ok(()) => ok_event(out, "feed", &format!("\"flow\":{}", t.flow))?,
                    Err(e) => fail_session(out, &e)?,
                },
                Err(e) => fail_kind(out, "parse", &e)?,
            },
            "advance" => {
                let to = match num_field(&obj, "to_secs")
                    .and_then(|s| secs_to_time(s).map_err(|e| e.to_string()))
                {
                    Ok(t) => t,
                    Err(e) => {
                        fail_kind(out, "parse", &e)?;
                        continue;
                    }
                };
                if to < svc.now() {
                    fail_kind(
                        out,
                        "state",
                        &format!(
                            "advance target {}s precedes now {}s (time only moves forward)",
                            num(to.as_secs_f64()),
                            num(svc.now().as_secs_f64())
                        ),
                    )?;
                    continue;
                }
                let deadline = match opt_num_field(&obj, "timeout_ms") {
                    Ok(Some(ms)) if ms > 0.0 && ms.is_finite() => {
                        Some(Instant::now() + Duration::from_millis(ms as u64))
                    }
                    Ok(Some(ms)) => {
                        fail_kind(
                            out,
                            "parse",
                            &format!("timeout_ms must be positive, got {ms}"),
                        )?;
                        continue;
                    }
                    Ok(None) => None,
                    Err(e) => {
                        fail_kind(out, "parse", &e)?;
                        continue;
                    }
                };
                let source = trace.as_mut().map(|ts| ts as &mut dyn WorkloadSource);
                match advance_guarded(source, &mut *svc, to, deadline) {
                    Ok(now) => {
                        let mut extra = format!("\"now_secs\":{}", num(now.as_secs_f64()));
                        if let Some(auto) = auto.as_mut() {
                            match auto.after_advance(&*svc) {
                                Ok(Some(seq)) => {
                                    let _ = write!(extra, ",\"ckpt_seq\":{seq}");
                                }
                                Ok(None) => {}
                                Err(e) => {
                                    fail_kind(out, "io", &format!("auto-checkpoint failed: {e}"))?;
                                    continue;
                                }
                            }
                        }
                        ok_event(out, "advance", &extra)?;
                    }
                    Err(AdvanceError::Timeout(reached)) => fail_kind(
                        out,
                        "timeout",
                        &format!(
                            "advance timed out at {}s (target {}s); re-issue to continue",
                            num(reached.as_secs_f64()),
                            num(to.as_secs_f64())
                        ),
                    )?,
                    Err(AdvanceError::Session(e)) => fail_session(out, &e)?,
                }
            }
            "snapshot" => write_report(out, "snapshot", &topo, &svc.snapshot())?,
            "checkpoint" => match str_field(&obj, "path") {
                Ok(path) => {
                    let bytes = svc.checkpoint().to_bytes();
                    match fs::write(&path, &bytes) {
                        Ok(()) => ok_event(
                            out,
                            "checkpoint",
                            &format!("\"path\":\"{}\",\"bytes\":{}", esc(&path), bytes.len()),
                        )?,
                        Err(e) => {
                            fail_kind(out, "io", &format!("cannot write checkpoint {path:?}: {e}"))?
                        }
                    }
                }
                Err(e) => fail_kind(out, "parse", &e)?,
            },
            "close" => {
                match svc.finish(&mut []) {
                    Ok(report) => write_report(out, "close", &topo, &report)?,
                    Err(e) => fail_session(out, &e)?,
                }
                return Ok(());
            }
            "open" | "resume" => {
                fail_kind(out, "state", "a session is already open; close it first")?
            }
            other => fail_kind(
                out,
                "unknown_cmd",
                &format!("unknown command {other:?} (feed|advance|snapshot|checkpoint|close)"),
            )?,
        }
    }
}

fn secs_to_time(secs: f64) -> Result<SimTime, SessionError> {
    Ok(SimTime::ZERO + SimDuration::try_from_secs_f64(secs)?)
}

/// Parse a `feed` request into a [`Transfer`] quantised with the
/// session's chunk size.
fn parse_feed(obj: &Obj, topo: &Topology, chunk_bytes: u64) -> Result<Transfer, String> {
    let node = |key: &str| -> Result<_, String> {
        let name = str_field(obj, key)?;
        topo.node_by_name(&name)
            .ok_or_else(|| format!("unknown node {name:?}"))
    };
    let start = secs_to_time(num_field(obj, "start_secs")?).map_err(|e| e.to_string())?;
    Ok(Transfer {
        flow: u64_field(obj, "flow")?,
        src: node("src")?,
        dst: node("dst")?,
        chunks: u64_field(obj, "chunks")?,
        chunk_bytes: ByteSize::bytes(chunk_bytes),
        start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(script: &str) -> Vec<String> {
        let mut input = Cursor::new(script.to_string());
        let mut out = Vec::new();
        serve_lines(&mut input, &mut out).expect("serve loop");
        String::from_utf8(out)
            .expect("utf8 replies")
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn assert_ok(reply: &str) {
        assert!(reply.starts_with("{\"ok\":true"), "expected ok: {reply}");
    }

    fn assert_err(reply: &str) {
        assert!(
            reply.starts_with("{\"ok\":false"),
            "expected error: {reply}"
        );
    }

    #[test]
    fn parses_flat_objects() {
        let obj = parse_object(
            r#"{"cmd":"open","engine":"fluid","horizon_secs":30.5,"quick":true,"note":null}"#,
        )
        .unwrap();
        assert_eq!(str_field(&obj, "cmd").unwrap(), "open");
        assert_eq!(num_field(&obj, "horizon_secs").unwrap(), 30.5);
        assert_eq!(field(&obj, "quick"), Some(&Json::Bool(true)));
        assert_eq!(field(&obj, "note"), Some(&Json::Null));
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err(), "nested rejected");
        assert!(
            parse_object(r#"{"a":1} extra"#).is_err(),
            "trailing rejected"
        );
        let esc = parse_object(r#"{"s":"a\"b\\c\nd"}"#).unwrap();
        assert_eq!(str_field(&esc, "s").unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn full_session_over_the_wire() {
        for engine in ["fluid", "packet"] {
            let script = format!(
                concat!(
                    r#"{{"cmd":"open","engine":"{}","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}}"#,
                    "\n",
                    r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}}"#,
                    "\n",
                    r#"{{"cmd":"advance","to_secs":1.5}}"#,
                    "\n",
                    r#"{{"cmd":"snapshot"}}"#,
                    "\n",
                    r#"{{"cmd":"close"}}"#,
                    "\n",
                ),
                engine
            );
            let replies = run(&script);
            assert_eq!(replies.len(), 5, "{engine}: {replies:?}");
            for r in &replies {
                assert_ok(r);
            }
            assert!(replies[0].contains("\"event\":\"open\""), "{}", replies[0]);
            assert!(replies[2].contains("\"now_secs\":1.5"), "{}", replies[2]);
            assert!(
                replies[4].contains("\"event\":\"close\"")
                    && replies[4].contains("\"arrived_flows\":1")
                    && replies[4].contains("\"completed_flows\":1"),
                "{engine}: {}",
                replies[4]
            );
        }
    }

    #[test]
    fn bad_requests_are_replies_not_crashes() {
        let script = concat!(
            "not json\n",
            r#"{"cmd":"advance","to_secs":1}"#,
            "\n",
            r#"{"cmd":"open","engine":"warp","topology":"fig3","strategy":"urp","horizon_secs":1}"#,
            "\n",
            r#"{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":1}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"nowhere","chunks":5,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":-2}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        );
        let replies = run(script);
        assert_eq!(replies.len(), 7, "{replies:?}");
        for r in &replies[..3] {
            assert_err(r);
        }
        assert_ok(&replies[3]); // open
        assert_err(&replies[4]); // unknown node
        assert_err(&replies[5]); // negative time
        assert_ok(&replies[6]); // close still works
    }

    fn assert_kind(reply: &str, kind: &str) {
        assert!(
            reply.starts_with(&format!("{{\"ok\":false,\"kind\":\"{kind}\"")),
            "expected kind {kind:?}: {reply}"
        );
    }

    #[test]
    fn error_replies_carry_typed_kinds() {
        let open = concat!(
            r#"{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":5}"#,
            "\n",
        );
        let script = format!(
            concat!(
                "{{not json\n", // parse
                r#"{{"cmd":"warp"}}"#,
                "\n", // state (no session)
                "{open}",
                r#"{{"cmd":"advance","to_secs":2}}"#,
                "\n",
                r#"{{"cmd":"advance","to_secs":1}}"#,
                "\n", // state (out of order)
                r#"{{"cmd":"teleport"}}"#,
                "\n", // unknown_cmd
                r#"{{"cmd":"feed","flow":"x"}}"#,
                "\n", // parse (bad field)
                r#"{{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":5}}"#,
                "\n", // state (already open)
                r#"{{"cmd":"close"}}"#,
                "\n",
            ),
            open = open
        );
        let replies = run(&script);
        assert_eq!(replies.len(), 9, "{replies:?}");
        assert_kind(&replies[0], "parse");
        assert_kind(&replies[1], "state");
        assert_ok(&replies[2]); // open
        assert_ok(&replies[3]); // advance 2
        assert_kind(&replies[4], "state");
        assert_kind(&replies[5], "unknown_cmd");
        assert_kind(&replies[6], "parse");
        assert_kind(&replies[7], "state");
        assert_ok(&replies[8]); // session survived every error
    }

    #[test]
    fn bad_fault_plan_and_bad_resume_are_config_and_checkpoint_errors() {
        let replies = run(concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":5,"faults":"linkdown@x:3"}"#,
            "\n",
            r#"{"cmd":"resume","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":5}"#,
            "\n",
            r#"{"cmd":"resume","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":5,"path":"/nonexistent/x.ckpt"}"#,
            "\n",
            // a fault plan naming a link fig3 does not have is rejected
            // at build time by the typed validation
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":5,"faults":"linkdown@1:99"}"#,
            "\n",
        ));
        assert_eq!(replies.len(), 4, "{replies:?}");
        assert_kind(&replies[0], "config"); // unparseable plan
        assert_kind(&replies[1], "config"); // resume without path or ckpt_dir
        assert_kind(&replies[2], "checkpoint"); // unreadable file
        assert_kind(&replies[3], "config"); // link index out of range
        assert!(
            replies[3].contains("link 99"),
            "validation names the bad link: {}",
            replies[3]
        );
    }

    #[test]
    fn fault_plan_over_the_wire_changes_the_run() {
        let open = |faults: &str| {
            format!(
                concat!(
                    r#"{{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7{}}}"#,
                    "\n",
                    r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":400,"start_secs":0}}"#,
                    "\n",
                    r#"{{"cmd":"close"}}"#,
                    "\n",
                ),
                faults
            )
        };
        let quiet = run(&open(""));
        let faulted = run(&open(r#","faults":"linkdown@0.2:1; linkup@10:1""#));
        assert_ok(quiet.last().unwrap());
        assert_ok(faulted.last().unwrap());
        assert!(
            quiet.last() != faulted.last(),
            "a mid-run outage must change the final report"
        );
        // determinism: the same plan yields byte-identical bytes
        let again = run(&open(r#","faults":"linkdown@0.2:1; linkup@10:1""#));
        assert_eq!(faulted.last(), again.last());
    }

    #[test]
    fn auto_checkpoints_rotate_and_recover_past_corruption() {
        let dir = std::env::temp_dir().join(format!("inrpp-selfheal-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let open = format!(
            concat!(
                r#"{{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","#,
                r#""horizon_secs":30,"seed":7,"ckpt_dir":"{d}","ckpt_retain":2}}"#,
                "\n",
                r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}}"#,
                "\n",
                r#"{{"cmd":"advance","to_secs":0.5}}"#,
                "\n",
                r#"{{"cmd":"advance","to_secs":1}}"#,
                "\n",
                r#"{{"cmd":"advance","to_secs":1.5}}"#,
                "\n",
            ),
            d = dir.display()
        );
        let head = run(&open);
        assert!(head[2].contains("\"ckpt_seq\":1"), "{}", head[2]);
        assert!(head[4].contains("\"ckpt_seq\":3"), "{}", head[4]);
        // retention: only the newest two survive
        let mut seqs: Vec<u64> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
        seqs.sort();
        assert_eq!(seqs, vec![2, 3], "keep-last-2 rotation");

        // the uninterrupted run for comparison
        let straight = run(concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":0.5}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":1}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":1.5}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        ));

        // truncate the newest checkpoint (simulated crash mid-anything);
        // recovery must fall back to seq 2 and note the skipped file
        let newest = dir.join("ckpt-000003.ckpt");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let tail = run(&format!(
            concat!(
                r#"{{"cmd":"resume","engine":"packet","topology":"fig3","strategy":"urp","#,
                r#""horizon_secs":30,"seed":7,"ckpt_dir":"{d}"}}"#,
                "\n",
                r#"{{"cmd":"advance","to_secs":1.5}}"#,
                "\n",
                r#"{{"cmd":"close"}}"#,
                "\n",
            ),
            d = dir.display()
        ));
        assert!(tail[0].contains("\"event\":\"resume\""), "{}", tail[0]);
        assert!(
            tail[0].contains("\"recovered_seq\":2")
                && tail[0].contains("\"skipped_checkpoints\":1"),
            "recovery diagnostics: {}",
            tail[0]
        );
        assert_eq!(
            straight.last().unwrap(),
            tail.last().unwrap(),
            "recovered final report must be byte-identical to the uninterrupted run"
        );

        // with every checkpoint unusable, the error is typed
        for (_, p) in list_checkpoints(&dir) {
            fs::write(&p, b"garbage").unwrap();
        }
        let none = run(&format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\"horizon_secs\":30,\"seed\":7,\"ckpt_dir\":\"{}\"}}\n",
            dir.display()
        ));
        assert_kind(&none[0], "checkpoint");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advance_timeout_is_resumable() {
        // a zero-ish budget can't finish a 20 s advance: expect a typed
        // timeout with partial progress, then a plain advance finishes
        let script = concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":2000,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":20,"timeout_ms":0.001}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":20}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        );
        let replies = run(script);
        assert_eq!(replies.len(), 5, "{replies:?}");
        assert_kind(&replies[2], "timeout");
        assert_ok(&replies[3]);
        assert!(replies[3].contains("\"now_secs\":20"), "{}", replies[3]);
        assert_ok(&replies[4]);

        // and a sliced (timed) advance that *does* finish yields the same
        // final bytes as an unsliced one — boundaries don't leak
        let timed = run(concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":400,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":5,"timeout_ms":60000}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        ));
        let plain = run(concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":400,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":5}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        ));
        assert_ok(timed.last().unwrap());
        assert_eq!(timed.last(), plain.last(), "slicing must not change bytes");
    }

    #[test]
    fn checkpoint_resume_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("inrpp-serve-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("run.ckpt");
        let trace = dir.join("run.trace");
        fs::write(
            &trace,
            "# inrpp-trace v1\n0 1 1 4 800 1250\n0.2 2 2 3 200 1250\n2.5 3 1 3 100 1250\n",
        )
        .unwrap();

        let open = concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","#,
            r#""horizon_secs":30,"seed":7,"#
        );
        // uninterrupted trace-driven run
        let straight = run(&format!(
            "{open}\"trace\":\"{t}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":1}}\n{{\"cmd\":\"advance\",\"to_secs\":3}}\n{{\"cmd\":\"close\"}}\n",
            t = trace.display()
        ));

        // same drive schedule, checkpointed at the 1 s boundary...
        let head = run(&format!(
            "{open}\"trace\":\"{t}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":1}}\n{{\"cmd\":\"checkpoint\",\"path\":\"{c}\"}}\n",
            t = trace.display(),
            c = ckpt.display()
        ));
        assert_ok(&head[1]);
        assert!(head[2].contains("\"event\":\"checkpoint\""), "{}", head[2]);

        // ...and resumed in a fresh serve loop (fresh process, in effect)
        let tail = run(&format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\"horizon_secs\":30,\"seed\":7,\"trace\":\"{t}\",\"path\":\"{c}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":3}}\n{{\"cmd\":\"close\"}}\n",
            t = trace.display(),
            c = ckpt.display()
        ));
        assert!(tail[0].contains("\"event\":\"resume\""), "{}", tail[0]);
        assert!(tail[0].contains("\"now_secs\":1"), "{}", tail[0]);
        assert_eq!(
            straight.last().unwrap(),
            tail.last().unwrap(),
            "resumed final report must be byte-identical"
        );

        // a wrong spec is rejected by the fingerprint
        let wrong = run(&format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\"horizon_secs\":60,\"seed\":7,\"path\":\"{c}\"}}\n",
            c = ckpt.display()
        ));
        assert_err(&wrong[0]);
        assert!(wrong[0].contains("fingerprint"), "{}", wrong[0]);

        fs::remove_dir_all(&dir).ok();
    }
}
