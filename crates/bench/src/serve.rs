//! `inrpp serve` — service mode over line-delimited JSON on stdio.
//!
//! Each request is one flat JSON object per line; each reply is one JSON
//! object per line with an `"ok"` field. The protocol drives an
//! [`inrpp::service::ServiceSession`] (fluid or packet): open a session,
//! stream transfers in (`feed` or a `# inrpp-trace v1` file), advance
//! the clock, take [`RunReport`] snapshots, checkpoint to a file, and
//! resume bit-identically in a later process.
//!
//! ```text
//! {"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30}
//! {"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}
//! {"cmd":"advance","to_secs":1.5}
//! {"cmd":"snapshot"}
//! {"cmd":"checkpoint","path":"run.ckpt"}
//! {"cmd":"close"}
//! ```
//!
//! Resume replays the same `open` fields (the checkpoint's embedded
//! session fingerprint rejects any drift) plus the checkpoint path:
//!
//! ```text
//! {"cmd":"resume","engine":"packet","topology":"fig3","strategy":"urp","horizon_secs":30,"path":"run.ckpt"}
//! ```
//!
//! `open`/`resume` accept `seed`, `workers`, `chunk_bytes` (transfer
//! quantum, default 1250 bytes) and `trace` (path to a trace file whose
//! transfers are pumped automatically at each `advance` boundary;
//! on resume, entries already fed before the checkpoint are skipped).
//! Errors are replies, not crashes: `{"ok":false,"error":"..."}` leaves
//! the session (if any) open.
//!
//! JSON is hand-rolled on both sides — requests must be *flat* objects
//! of strings, numbers, and booleans; replies may nest (`snapshot`
//! carries a per-flow array).

use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};

use inrpp::config::InrppConfig;
use inrpp::service::{Checkpoint, FluidBacking, FluidService, ServiceSession};
use inrpp::session::{EngineKind, RunReport, Session, SessionError, SessionStrategy, Transfer};
use inrpp::source::{pump, skip_until, TraceSource};
use inrpp_packetsim::{AimdConfig, PacketEngine, PacketService, PacketSimConfig, TransportKind};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::{ByteSize, Rate};
use inrpp_topology::Topology;

// ===================================================================
// Flat JSON (requests)
// ===================================================================

/// A value in a flat request object.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// A JSON string.
    Str(String),
    /// Any JSON number (integers included).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parse one flat JSON object (`{"k": v, ...}` — no nesting) into its
/// key/value pairs. Line-oriented protocol, so errors are plain strings.
fn parse_object(s: &str) -> Result<Vec<(String, Json)>, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    skip_ws(b, &mut i);
    expect(b, &mut i, b'{')?;
    skip_ws(b, &mut i);
    if peek(b, i) == Some(b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(b, &mut i);
            let key = parse_string(b, &mut i)?;
            skip_ws(b, &mut i);
            expect(b, &mut i, b':')?;
            skip_ws(b, &mut i);
            let val = parse_value(b, &mut i)?;
            out.push((key, val));
            skip_ws(b, &mut i);
            match peek(b, i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {i}, found {:?}",
                        other.map(char::from)
                    ))
                }
            }
        }
    }
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing input after object at byte {i}"));
    }
    Ok(out)
}

fn peek(b: &[u8], i: usize) -> Option<u8> {
    b.get(i).copied()
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while matches!(peek(b, *i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, want: u8) -> Result<(), String> {
    if peek(b, *i) == Some(want) {
        *i += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            char::from(want),
            *i,
            peek(b, *i).map(char::from)
        ))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    expect(b, i, b'"')?;
    let mut out = String::new();
    loop {
        match peek(b, *i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                let esc = peek(b, *i).ok_or("unterminated escape")?;
                *i += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape '\\{}'", char::from(other))),
                }
            }
            Some(_) => {
                // advance one UTF-8 scalar, not one byte
                let rest = &b[*i..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *i += ch.len_utf8();
            }
        }
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    match peek(b, *i) {
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(b'{' | b'[') => Err("nested values are not supported; requests are flat".into()),
        Some(_) => {
            let start = *i;
            while matches!(
                peek(b, *i),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                *i += 1;
            }
            let text = std::str::from_utf8(&b[start..*i]).unwrap_or("");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("not a number: {text:?}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: `null` for non-finite floats (JSON has no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

// ===================================================================
// Request field access
// ===================================================================

type Obj = [(String, Json)];

fn field<'o>(obj: &'o Obj, key: &str) -> Option<&'o Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(obj: &Obj, key: &str) -> Result<String, String> {
    match field(obj, key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn num_field(obj: &Obj, key: &str) -> Result<f64, String> {
    match field(obj, key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(_) => Err(format!("field {key:?} must be a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn opt_num_field(obj: &Obj, key: &str) -> Result<Option<f64>, String> {
    match field(obj, key) {
        Some(Json::Num(v)) => Ok(Some(*v)),
        Some(Json::Null) | None => Ok(None),
        Some(_) => Err(format!("field {key:?} must be a number")),
    }
}

fn opt_str_field(obj: &Obj, key: &str) -> Result<Option<String>, String> {
    match field(obj, key) {
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(Json::Null) | None => Ok(None),
        Some(_) => Err(format!("field {key:?} must be a string")),
    }
}

fn u64_field(obj: &Obj, key: &str) -> Result<u64, String> {
    let v = num_field(obj, key)?;
    if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
        Ok(v as u64)
    } else {
        Err(format!("field {key:?} must be a non-negative integer"))
    }
}

// ===================================================================
// Session spec
// ===================================================================

/// Everything an `open` / `resume` request pins down.
struct OpenSpec {
    engine: EngineKind,
    topology: String,
    strategy: String,
    horizon_secs: f64,
    seed: Option<u64>,
    workers: Option<u64>,
    chunk_bytes: u64,
    trace: Option<String>,
    /// `Some(path)` for `resume`, `None` for `open`.
    checkpoint: Option<String>,
}

impl OpenSpec {
    fn parse(obj: &Obj, resume: bool) -> Result<Self, String> {
        let engine = match str_field(obj, "engine")?.as_str() {
            "fluid" => EngineKind::Fluid,
            "packet" => EngineKind::Packet,
            other => return Err(format!("unknown engine {other:?} (fluid|packet)")),
        };
        let chunk_bytes = match opt_num_field(obj, "chunk_bytes")? {
            Some(v) if v >= 1.0 && v.fract() == 0.0 => v as u64,
            Some(v) => return Err(format!("chunk_bytes must be a positive integer, got {v}")),
            None => 1250,
        };
        Ok(OpenSpec {
            engine,
            topology: str_field(obj, "topology")?,
            strategy: str_field(obj, "strategy")?,
            horizon_secs: num_field(obj, "horizon_secs")?,
            seed: opt_num_field(obj, "seed")?.map(|v| v as u64),
            workers: opt_num_field(obj, "workers")?.map(|v| v as u64),
            chunk_bytes,
            trace: opt_str_field(obj, "trace")?,
            checkpoint: if resume {
                Some(str_field(obj, "path")?)
            } else {
                None
            },
        })
    }

    fn strategy(&self) -> Result<SessionStrategy, String> {
        match self.strategy.as_str() {
            "urp" | "inrpp" => Ok(SessionStrategy::urp()),
            "sp" => Ok(SessionStrategy::Sp),
            other => Err(format!("unknown strategy {other:?} (urp|sp)")),
        }
    }

    /// The packet engine matching the strategy, with the session's
    /// transfer quantum.
    fn packet_engine(&self) -> Result<PacketEngine, String> {
        let transport = match self.strategy()? {
            SessionStrategy::Urp(_) => TransportKind::Inrpp(InrppConfig::default()),
            SessionStrategy::Sp => TransportKind::Aimd(AimdConfig::default()),
            other => return Err(format!("no packet transport for {}", other.name())),
        };
        Ok(PacketEngine::new(PacketSimConfig {
            chunk_bytes: ByteSize::bytes(self.chunk_bytes),
            transport,
            ..PacketSimConfig::default()
        }))
    }
}

/// The topology catalog: `fig3`, or `line:N` / `ring:N` / `star:N` /
/// `mesh:N` / `dumbbell:N` with the serve defaults (10 Mbit/s links,
/// 10 ms delay; dumbbell bottleneck 10 Mbit/s, access 40 Mbit/s).
fn topology_by_name(name: &str) -> Result<Topology, String> {
    if name == "fig3" {
        return Ok(Topology::fig3());
    }
    let (kind, n) = match name.split_once(':') {
        Some((k, n)) => (
            k,
            n.parse::<usize>()
                .map_err(|_| format!("bad node count in topology {name:?}"))?,
        ),
        None => return Err(format!("unknown topology {name:?}")),
    };
    let cap = Rate::mbps(10.0);
    let delay = SimDuration::from_millis(10);
    match kind {
        "line" => Ok(Topology::line(n, cap, delay)),
        "ring" => Ok(Topology::ring(n, cap, delay)),
        "star" => Ok(Topology::star(n, cap, delay)),
        "mesh" => Ok(Topology::full_mesh(n, cap, delay)),
        "dumbbell" => Ok(Topology::dumbbell(n, Rate::mbps(40.0), cap, delay)),
        _ => Err(format!("unknown topology {name:?}")),
    }
}

// ===================================================================
// Replies
// ===================================================================

fn fail(out: &mut dyn Write, msg: &str) -> io::Result<()> {
    writeln!(out, "{{\"ok\":false,\"error\":\"{}\"}}", esc(msg))
}

fn ok_event(out: &mut dyn Write, event: &str, extra: &str) -> io::Result<()> {
    if extra.is_empty() {
        writeln!(out, "{{\"ok\":true,\"event\":\"{}\"}}", esc(event))
    } else {
        writeln!(out, "{{\"ok\":true,\"event\":\"{}\",{extra}}}", esc(event))
    }
}

/// Serialise a [`RunReport`] reply (`snapshot` / `close`).
fn write_report(
    out: &mut dyn Write,
    event: &str,
    topo: &Topology,
    report: &RunReport,
) -> io::Result<()> {
    let a = &report.aggregates;
    let mut flows = String::new();
    for (i, f) in report.flows.iter().enumerate() {
        if i > 0 {
            flows.push(',');
        }
        let _ = write!(
            flows,
            "{{\"flow\":{},\"src\":\"{}\",\"dst\":\"{}\",\"offered_bits\":{},\
             \"delivered_bits\":{},\"arrival_secs\":{},\"fct_secs\":{},\"retransmits\":{}}}",
            f.flow,
            esc(&topo.node(f.src).name),
            esc(&topo.node(f.dst).name),
            num(f.offered_bits),
            num(f.delivered_bits),
            num(f.arrival.as_secs_f64()),
            f.fct_secs.map(num).unwrap_or_else(|| "null".into()),
            f.retransmits,
        );
    }
    writeln!(
        out,
        "{{\"ok\":true,\"event\":\"{}\",\"engine\":\"{}\",\"strategy\":\"{}\",\
         \"topology\":\"{}\",\"arrived_flows\":{},\"completed_flows\":{},\
         \"offered_bits\":{},\"delivered_bits\":{},\"duration_secs\":{},\
         \"mean_fct_secs\":{},\"mean_utilisation\":{},\"flows\":[{}]}}",
        esc(event),
        report.engine,
        esc(&report.strategy),
        esc(&report.topology),
        a.arrived_flows,
        a.completed_flows,
        num(a.offered_bits),
        num(a.delivered_bits),
        num(a.duration.as_secs_f64()),
        num(a.mean_fct_secs),
        num(a.mean_utilisation),
        flows,
    )
}

// ===================================================================
// The serve loop
// ===================================================================

/// Run the serve protocol until EOF. Testable: `inrpp serve` calls this
/// with locked stdio, tests call it with in-memory buffers.
pub fn serve_lines(input: &mut dyn BufRead, out: &mut dyn Write) -> io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let obj = match parse_object(trimmed) {
            Ok(o) => o,
            Err(e) => {
                fail(out, &format!("bad request: {e}"))?;
                continue;
            }
        };
        match str_field(&obj, "cmd").as_deref() {
            Ok("open") | Ok("resume") => {
                let resume = matches!(str_field(&obj, "cmd").as_deref(), Ok("resume"));
                match OpenSpec::parse(&obj, resume) {
                    Ok(spec) => drive(&spec, input, out)?,
                    Err(e) => fail(out, &e)?,
                }
            }
            Ok("exit") => return Ok(()),
            Ok(other) => fail(
                out,
                &format!("no open session; expected open|resume|exit, got {other:?}"),
            )?,
            Err(e) => fail(out, e)?,
        }
    }
}

/// Open (or resume) one session and process commands against it until
/// `close` / EOF. The nested scope is what owns the borrow chain:
/// topology → session spec → fluid backing → service.
fn drive(spec: &OpenSpec, input: &mut dyn BufRead, out: &mut dyn Write) -> io::Result<()> {
    let topo = match topology_by_name(&spec.topology) {
        Ok(t) => t,
        Err(e) => return fail(out, &e),
    };
    let strategy = match spec.strategy() {
        Ok(s) => s,
        Err(e) => return fail(out, &e),
    };
    // serve sessions are streaming-only: traffic arrives via feed/trace,
    // so the spec (and its fingerprint) carries an empty transfer list
    let mut builder = Session::builder()
        .topology(&topo)
        .transfers(Vec::new())
        .strategy(strategy)
        .horizon_secs(spec.horizon_secs);
    if let Some(seed) = spec.seed {
        builder = builder.seed(seed);
    }
    if let Some(workers) = spec.workers {
        builder = builder.workers(workers as usize);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => return fail(out, &e.to_string()),
    };

    let checkpoint = match &spec.checkpoint {
        Some(path) => match fs::read(path) {
            Ok(bytes) => match Checkpoint::from_bytes(&bytes) {
                Ok(c) => Some(c),
                Err(e) => return fail(out, &e.to_string()),
            },
            Err(e) => return fail(out, &format!("cannot read checkpoint {path:?}: {e}")),
        },
        None => None,
    };

    let backing;
    let mut svc: Box<dyn ServiceSession + '_> = match spec.engine {
        EngineKind::Fluid => {
            backing = FluidBacking::empty_for(&session);
            let opened = match &checkpoint {
                Some(c) => FluidService::resume(&session, &backing, c),
                None => FluidService::open(&session, &backing),
            };
            match opened {
                Ok(s) => Box::new(s),
                Err(e) => return fail(out, &e.to_string()),
            }
        }
        EngineKind::Packet => {
            let engine = match spec.packet_engine() {
                Ok(e) => e,
                Err(e) => return fail(out, &e),
            };
            let opened = match &checkpoint {
                Some(c) => PacketService::resume(&engine, &session, c),
                None => PacketService::open(&engine, &session),
            };
            match opened {
                Ok(s) => Box::new(s),
                Err(e) => return fail(out, &e.to_string()),
            }
        }
    };

    let mut trace = match &spec.trace {
        Some(path) => match fs::File::open(path) {
            Ok(f) => {
                let mut ts = TraceSource::new(&topo, BufReader::new(f));
                // entries the interrupted run already fed by the
                // checkpoint boundary must not be fed twice
                if let Err(e) = skip_until(&mut ts, svc.now()) {
                    return fail(out, &e.to_string());
                }
                Some(ts)
            }
            Err(e) => return fail(out, &format!("cannot read trace {path:?}: {e}")),
        },
        None => None,
    };

    ok_event(
        out,
        if checkpoint.is_some() {
            "resume"
        } else {
            "open"
        },
        &format!(
            "\"engine\":\"{}\",\"now_secs\":{},\"horizon_secs\":{},\"fingerprint\":\"{:016x}\"",
            svc.kind(),
            num(svc.now().as_secs_f64()),
            num(svc.horizon().as_secs_f64()),
            session.fingerprint(),
        ),
    )?;

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(()); // EOF: drop the session unfinished
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let obj = match parse_object(trimmed) {
            Ok(o) => o,
            Err(e) => {
                fail(out, &format!("bad request: {e}"))?;
                continue;
            }
        };
        let cmd = match str_field(&obj, "cmd") {
            Ok(c) => c,
            Err(e) => {
                fail(out, &e)?;
                continue;
            }
        };
        match cmd.as_str() {
            "feed" => match parse_feed(&obj, &topo, spec.chunk_bytes) {
                Ok(t) => match svc.feed(&t) {
                    Ok(()) => ok_event(out, "feed", &format!("\"flow\":{}", t.flow))?,
                    Err(e) => fail(out, &e.to_string())?,
                },
                Err(e) => fail(out, &e)?,
            },
            "advance" => {
                let to = match num_field(&obj, "to_secs")
                    .and_then(|s| secs_to_time(s).map_err(|e| e.to_string()))
                {
                    Ok(t) => t,
                    Err(e) => {
                        fail(out, &e)?;
                        continue;
                    }
                };
                let advanced = match trace.as_mut() {
                    Some(ts) => pump(ts, &mut *svc, to, &mut []),
                    None => svc.advance(to, &mut []),
                };
                match advanced {
                    Ok(now) => ok_event(
                        out,
                        "advance",
                        &format!("\"now_secs\":{}", num(now.as_secs_f64())),
                    )?,
                    Err(e) => fail(out, &e.to_string())?,
                }
            }
            "snapshot" => write_report(out, "snapshot", &topo, &svc.snapshot())?,
            "checkpoint" => match str_field(&obj, "path") {
                Ok(path) => {
                    let bytes = svc.checkpoint().to_bytes();
                    match fs::write(&path, &bytes) {
                        Ok(()) => ok_event(
                            out,
                            "checkpoint",
                            &format!("\"path\":\"{}\",\"bytes\":{}", esc(&path), bytes.len()),
                        )?,
                        Err(e) => fail(out, &format!("cannot write checkpoint {path:?}: {e}"))?,
                    }
                }
                Err(e) => fail(out, &e)?,
            },
            "close" => {
                match svc.finish(&mut []) {
                    Ok(report) => write_report(out, "close", &topo, &report)?,
                    Err(e) => fail(out, &e.to_string())?,
                }
                return Ok(());
            }
            "open" | "resume" => fail(out, "a session is already open; close it first")?,
            other => fail(
                out,
                &format!("unknown command {other:?} (feed|advance|snapshot|checkpoint|close)"),
            )?,
        }
    }
}

fn secs_to_time(secs: f64) -> Result<SimTime, SessionError> {
    Ok(SimTime::ZERO + SimDuration::try_from_secs_f64(secs)?)
}

/// Parse a `feed` request into a [`Transfer`] quantised with the
/// session's chunk size.
fn parse_feed(obj: &Obj, topo: &Topology, chunk_bytes: u64) -> Result<Transfer, String> {
    let node = |key: &str| -> Result<_, String> {
        let name = str_field(obj, key)?;
        topo.node_by_name(&name)
            .ok_or_else(|| format!("unknown node {name:?}"))
    };
    let start = secs_to_time(num_field(obj, "start_secs")?).map_err(|e| e.to_string())?;
    Ok(Transfer {
        flow: u64_field(obj, "flow")?,
        src: node("src")?,
        dst: node("dst")?,
        chunks: u64_field(obj, "chunks")?,
        chunk_bytes: ByteSize::bytes(chunk_bytes),
        start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(script: &str) -> Vec<String> {
        let mut input = Cursor::new(script.to_string());
        let mut out = Vec::new();
        serve_lines(&mut input, &mut out).expect("serve loop");
        String::from_utf8(out)
            .expect("utf8 replies")
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn assert_ok(reply: &str) {
        assert!(reply.starts_with("{\"ok\":true"), "expected ok: {reply}");
    }

    fn assert_err(reply: &str) {
        assert!(
            reply.starts_with("{\"ok\":false"),
            "expected error: {reply}"
        );
    }

    #[test]
    fn parses_flat_objects() {
        let obj = parse_object(
            r#"{"cmd":"open","engine":"fluid","horizon_secs":30.5,"quick":true,"note":null}"#,
        )
        .unwrap();
        assert_eq!(str_field(&obj, "cmd").unwrap(), "open");
        assert_eq!(num_field(&obj, "horizon_secs").unwrap(), 30.5);
        assert_eq!(field(&obj, "quick"), Some(&Json::Bool(true)));
        assert_eq!(field(&obj, "note"), Some(&Json::Null));
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err(), "nested rejected");
        assert!(
            parse_object(r#"{"a":1} extra"#).is_err(),
            "trailing rejected"
        );
        let esc = parse_object(r#"{"s":"a\"b\\c\nd"}"#).unwrap();
        assert_eq!(str_field(&esc, "s").unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn full_session_over_the_wire() {
        for engine in ["fluid", "packet"] {
            let script = format!(
                concat!(
                    r#"{{"cmd":"open","engine":"{}","topology":"fig3","strategy":"urp","horizon_secs":30,"seed":7}}"#,
                    "\n",
                    r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":800,"start_secs":0}}"#,
                    "\n",
                    r#"{{"cmd":"advance","to_secs":1.5}}"#,
                    "\n",
                    r#"{{"cmd":"snapshot"}}"#,
                    "\n",
                    r#"{{"cmd":"close"}}"#,
                    "\n",
                ),
                engine
            );
            let replies = run(&script);
            assert_eq!(replies.len(), 5, "{engine}: {replies:?}");
            for r in &replies {
                assert_ok(r);
            }
            assert!(replies[0].contains("\"event\":\"open\""), "{}", replies[0]);
            assert!(replies[2].contains("\"now_secs\":1.5"), "{}", replies[2]);
            assert!(
                replies[4].contains("\"event\":\"close\"")
                    && replies[4].contains("\"arrived_flows\":1")
                    && replies[4].contains("\"completed_flows\":1"),
                "{engine}: {}",
                replies[4]
            );
        }
    }

    #[test]
    fn bad_requests_are_replies_not_crashes() {
        let script = concat!(
            "not json\n",
            r#"{"cmd":"advance","to_secs":1}"#,
            "\n",
            r#"{"cmd":"open","engine":"warp","topology":"fig3","strategy":"urp","horizon_secs":1}"#,
            "\n",
            r#"{"cmd":"open","engine":"fluid","topology":"fig3","strategy":"urp","horizon_secs":1}"#,
            "\n",
            r#"{"cmd":"feed","flow":1,"src":"1","dst":"nowhere","chunks":5,"start_secs":0}"#,
            "\n",
            r#"{"cmd":"advance","to_secs":-2}"#,
            "\n",
            r#"{"cmd":"close"}"#,
            "\n",
        );
        let replies = run(script);
        assert_eq!(replies.len(), 7, "{replies:?}");
        for r in &replies[..3] {
            assert_err(r);
        }
        assert_ok(&replies[3]); // open
        assert_err(&replies[4]); // unknown node
        assert_err(&replies[5]); // negative time
        assert_ok(&replies[6]); // close still works
    }

    #[test]
    fn checkpoint_resume_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("inrpp-serve-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("run.ckpt");
        let trace = dir.join("run.trace");
        fs::write(
            &trace,
            "# inrpp-trace v1\n0 1 1 4 800 1250\n0.2 2 2 3 200 1250\n2.5 3 1 3 100 1250\n",
        )
        .unwrap();

        let open = concat!(
            r#"{"cmd":"open","engine":"packet","topology":"fig3","strategy":"urp","#,
            r#""horizon_secs":30,"seed":7,"#
        );
        // uninterrupted trace-driven run
        let straight = run(&format!(
            "{open}\"trace\":\"{t}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":1}}\n{{\"cmd\":\"advance\",\"to_secs\":3}}\n{{\"cmd\":\"close\"}}\n",
            t = trace.display()
        ));

        // same drive schedule, checkpointed at the 1 s boundary...
        let head = run(&format!(
            "{open}\"trace\":\"{t}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":1}}\n{{\"cmd\":\"checkpoint\",\"path\":\"{c}\"}}\n",
            t = trace.display(),
            c = ckpt.display()
        ));
        assert_ok(&head[1]);
        assert!(head[2].contains("\"event\":\"checkpoint\""), "{}", head[2]);

        // ...and resumed in a fresh serve loop (fresh process, in effect)
        let tail = run(&format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\"horizon_secs\":30,\"seed\":7,\"trace\":\"{t}\",\"path\":\"{c}\"}}\n{{\"cmd\":\"advance\",\"to_secs\":3}}\n{{\"cmd\":\"close\"}}\n",
            t = trace.display(),
            c = ckpt.display()
        ));
        assert!(tail[0].contains("\"event\":\"resume\""), "{}", tail[0]);
        assert!(tail[0].contains("\"now_secs\":1"), "{}", tail[0]);
        assert_eq!(
            straight.last().unwrap(),
            tail.last().unwrap(),
            "resumed final report must be byte-identical"
        );

        // a wrong spec is rejected by the fingerprint
        let wrong = run(&format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\"horizon_secs\":60,\"seed\":7,\"path\":\"{c}\"}}\n",
            c = ckpt.display()
        ));
        assert_err(&wrong[0]);
        assert!(wrong[0].contains("fingerprint"), "{}", wrong[0]);

        fs::remove_dir_all(&dir).ok();
    }
}
