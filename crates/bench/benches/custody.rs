//! Micro-benchmark: custody store operations at line rate (C1 companion —
//! the feasibility argument needs store/release to be cheap, not just the
//! byte arithmetic to work out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inrpp_cache::custody::{CustodyStore, EvictionPolicy};
use inrpp_sim::time::SimTime;
use inrpp_sim::units::ByteSize;

fn bench_custody(c: &mut Criterion) {
    let mut group = c.benchmark_group("custody");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &nflows in &[1u64, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("store_pop_cycle", nflows),
            &nflows,
            |b, &nf| {
                b.iter(|| {
                    let mut s = CustodyStore::new(ByteSize::mb(10), EvictionPolicy::Reject);
                    let t = SimTime::ZERO;
                    for i in 0..4_000u64 {
                        let flow = i % nf;
                        s.store(t, flow, i / nf, ByteSize::bytes(1250))
                            .expect("fits");
                    }
                    let mut total = 0u64;
                    for f in 0..nf {
                        while let Some((c, _)) = s.pop_next(f) {
                            total += c;
                        }
                    }
                    total
                })
            },
        );
    }
    group.bench_function("fifo_eviction_churn", |b| {
        b.iter(|| {
            let mut s = CustodyStore::new(ByteSize::kb(125), EvictionPolicy::Fifo);
            let t = SimTime::ZERO;
            for i in 0..10_000u64 {
                let _ = s.store(t, i % 8, i, ByteSize::bytes(1250));
            }
            s.stats().1
        })
    });
    group.finish();
}

criterion_group!(benches, bench_custody);
criterion_main!(benches);
