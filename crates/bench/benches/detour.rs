//! Micro-benchmark: Table 1 detour classification and detour-table
//! construction on generated ISP topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inrpp_topology::detour::{analyze, DetourTable};
use inrpp_topology::rocketfuel::{generate_isp, Isp};

fn bench_detour(c: &mut Criterion) {
    let mut group = c.benchmark_group("detour");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for isp in [Isp::Vsnl, Isp::Exodus, Isp::Level3] {
        let topo = generate_isp(isp, 1);
        let label = format!("{} ({} links)", isp.name(), topo.link_count());
        group.bench_with_input(BenchmarkId::new("classify_all", &label), &topo, |b, t| {
            b.iter(|| analyze(t))
        });
        group.bench_with_input(BenchmarkId::new("build_table", &label), &topo, |b, t| {
            b.iter(|| DetourTable::build(t, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detour);
criterion_main!(benches);
