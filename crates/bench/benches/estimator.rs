//! Micro-benchmark: the Eq. 1 anticipated-rate estimator — runs on every
//! forwarded request, so per-op cost bounds the simulated router's
//! request-plane throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inrpp::rate::RateEstimator;
use inrpp_sim::time::{SimDuration, SimTime};

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate_estimator");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &ifaces in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("record_and_roll", ifaces),
            &ifaces,
            |b, &n| {
                b.iter(|| {
                    let mut e = RateEstimator::new(n, SimDuration::from_millis(100), SimTime::ZERO);
                    for i in 0..10_000u64 {
                        let t = SimTime::from_micros(i * 50);
                        e.record_request(t, (i as usize) % n, (i as usize + 1) % n, 10_000.0);
                    }
                    e.anticipated_rates()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
