//! Micro-benchmark: the multipath max-min allocator — the inner loop of
//! every flow-level experiment (re-run on each arrival/departure) — in
//! both formulations: the from-scratch reference and the incremental
//! arena-backed engine the simulator actually runs (bit-identical
//! outputs; see `inrpp_flowsim::engine`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inrpp_flowsim::allocator::max_min_allocate;
use inrpp_flowsim::engine::AllocEngine;
use inrpp_flowsim::strategy::{InrpStrategy, RoutingStrategy, SinglePathStrategy};
use inrpp_sim::rng::SimRng;
use inrpp_topology::rocketfuel::{generate_isp, Isp};
use inrpp_topology::spath::Path;

fn flow_sets(n_flows: usize, inrp: bool) -> (inrpp_topology::Topology, Vec<Vec<Path>>) {
    let topo = generate_isp(Isp::Exodus, 1);
    let mut rng = SimRng::from_seed_u64(7);
    let nodes: Vec<_> = topo.node_ids().collect();
    let strat_inrp = InrpStrategy::with_defaults(&topo);
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let src = *rng.pick(&nodes);
        let dst = *rng.pick(&nodes);
        if src == dst {
            continue;
        }
        let paths = if inrp {
            strat_inrp.paths_for(&topo, src, dst, flows.len() as u64)
        } else {
            SinglePathStrategy.paths_for(&topo, src, dst, flows.len() as u64)
        };
        if !paths.is_empty() {
            flows.push(paths);
        }
    }
    (topo, flows)
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_allocate");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[10usize, 50, 200] {
        let (topo, sp) = flow_sets(n, false);
        group.bench_with_input(BenchmarkId::new("single_path", n), &n, |b, _| {
            b.iter(|| max_min_allocate(&topo, &sp))
        });
        let (topo, multi) = flow_sets(n, true);
        group.bench_with_input(BenchmarkId::new("inrp_multipath", n), &n, |b, _| {
            b.iter(|| max_min_allocate(&topo, &multi))
        });
        // the incremental engine re-allocating over a resident flow set —
        // what an event in the simulator's steady state actually costs
        let mut engine = AllocEngine::new(&topo);
        for (k, paths) in multi.iter().enumerate() {
            engine
                .insert(k as u64, paths)
                .expect("strategy paths resolve");
        }
        group.bench_with_input(BenchmarkId::new("engine_reallocate", n), &n, |b, _| {
            b.iter(|| {
                engine.allocate();
                engine.flow_rates()[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
