//! Micro-benchmark: the DES core — push/pop throughput of the
//! deterministic event queue under interleaved scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inrpp_sim::event::EventQueue;
use inrpp_sim::rng::SimRng;
use inrpp_sim::time::SimTime;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000, 100_000] {
        // pre-generate deterministic pseudo-random timestamps
        let mut rng = SimRng::from_seed_u64(1);
        let times: Vec<SimTime> = (0..n)
            .map(|_| SimTime::from_nanos(rng.index(1_000_000_000) as u64))
            .collect();
        group.bench_with_input(BenchmarkId::new("push_pop", n), &times, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(t, i);
                }
                let mut last = SimTime::ZERO;
                while let Some((t, _)) = q.pop() {
                    debug_assert!(t >= last);
                    last = t;
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
