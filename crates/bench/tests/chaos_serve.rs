//! Chaos gate for the self-healing `inrpp serve`: SIGKILL a serving
//! process mid-run — inside a fault-plan outage window, after its
//! auto-checkpointer has published a few rotations — restart it from
//! the checkpoint directory, and require the recovered run's final
//! report to be **byte-equal** to an uninterrupted process's. The kill
//! lands between requests (the only instants a checkpoint is current),
//! which is exactly the contract `ckpt_every: 1` provides: at most one
//! advance of progress is lost, never correctness.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};

struct Serve {
    child: Child,
    out: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn() -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_inrpp"))
            .arg("serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn inrpp serve");
        let out = BufReader::new(child.stdout.take().expect("piped stdout"));
        Serve { child, out }
    }

    /// Send one request line and read its reply line.
    fn roundtrip(&mut self, line: &str) -> String {
        let stdin = self.child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "{line}").expect("write request");
        stdin.flush().expect("flush request");
        let mut reply = String::new();
        self.out.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "serve hung up on: {line}");
        reply.trim_end().to_string()
    }

    /// SIGKILL — no shutdown courtesy, the whole point of the test.
    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        self.child.wait().expect("reap serve");
    }

    fn wait(mut self) {
        drop(self.child.stdin.take()); // EOF ends the serve loop
        self.child.wait().expect("serve exit");
    }
}

fn open_line(dir: Option<&Path>) -> String {
    let ckpt = match dir {
        Some(d) => format!(",\"ckpt_dir\":\"{}\",\"ckpt_retain\":3", d.display()),
        None => String::new(),
    };
    format!(
        "{{\"cmd\":\"open\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\
         \"faults\":\"linkdown@0.3:1; linkup@2:1\"{ckpt}}}"
    )
}

const FEEDS: [&str; 2] = [
    r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":600,"start_secs":0}"#,
    r#"{"cmd":"feed","flow":2,"src":"2","dst":"3","chunks":250,"start_secs":0.12}"#,
];

#[test]
fn sigkill_mid_outage_recovers_to_a_byte_equal_report() {
    let dir = std::env::temp_dir().join(format!("inrpp-chaos-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    // victim: auto-checkpointing run, killed inside the outage window
    let mut victim = Serve::spawn();
    let opened = victim.roundtrip(&open_line(Some(&dir)));
    assert!(opened.contains("\"ok\":true"), "open failed: {opened}");
    for feed in FEEDS {
        assert!(victim.roundtrip(feed).contains("\"ok\":true"));
    }
    for (i, to) in ["0.5", "1", "1.5"].iter().enumerate() {
        let reply = victim.roundtrip(&format!("{{\"cmd\":\"advance\",\"to_secs\":{to}}}"));
        let want = format!("\"ckpt_seq\":{}", i + 1);
        assert!(reply.contains(&want), "advance {to}: {reply}");
    }
    victim.kill();

    // the victim published ckpt-000003.ckpt before dying; the link is
    // still down at 1.5s, so recovery restarts mid-outage
    assert!(dir.join("ckpt-000003.ckpt").exists(), "rotation on disk");

    // phoenix: recover from the newest checkpoint in the directory and
    // run to completion
    let mut phoenix = Serve::spawn();
    let resumed = phoenix.roundtrip(&format!(
        "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\
         \"faults\":\"linkdown@0.3:1; linkup@2:1\",\"ckpt_dir\":\"{}\"}}",
        dir.display()
    ));
    assert!(
        resumed.contains("\"ok\":true") && resumed.contains("\"recovered_seq\":3"),
        "resume reply: {resumed}"
    );
    assert!(phoenix
        .roundtrip(r#"{"cmd":"advance","to_secs":5}"#)
        .contains("\"ok\":true"));
    let recovered = phoenix.roundtrip(r#"{"cmd":"close"}"#);
    phoenix.wait();

    // control: one process, never interrupted, no checkpointing at all
    let mut control = Serve::spawn();
    assert!(control.roundtrip(&open_line(None)).contains("\"ok\":true"));
    for feed in FEEDS {
        assert!(control.roundtrip(feed).contains("\"ok\":true"));
    }
    assert!(control
        .roundtrip(r#"{"cmd":"advance","to_secs":5}"#)
        .contains("\"ok\":true"));
    let straight = control.roundtrip(r#"{"cmd":"close"}"#);
    control.wait();

    assert_eq!(
        recovered, straight,
        "final report after SIGKILL + recovery must be byte-equal to the uninterrupted run"
    );

    fs::remove_dir_all(&dir).ok();
}

/// The kill can also land *before any checkpoint exists*: recovery then
/// has nothing to reopen, and the typed `checkpoint` error must say so
/// without crashing the new process — it stays up and accepts a fresh
/// `open` on the same connection.
#[test]
fn sigkill_before_first_checkpoint_yields_a_typed_error_then_a_fresh_start() {
    let dir = std::env::temp_dir().join(format!("inrpp-chaos-empty-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    let mut victim = Serve::spawn();
    assert!(victim
        .roundtrip(&open_line(Some(&dir)))
        .contains("\"ok\":true"));
    victim.kill(); // no advance ever ran: the directory is empty

    let mut phoenix = Serve::spawn();
    let resumed = phoenix.roundtrip(&format!(
        "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\"ckpt_dir\":\"{}\"}}",
        dir.display()
    ));
    assert!(
        resumed.starts_with("{\"ok\":false,\"kind\":\"checkpoint\""),
        "typed recovery failure: {resumed}"
    );
    // the session loop survived the failed resume: start over from zero
    assert!(phoenix.roundtrip(&open_line(None)).contains("\"ok\":true"));
    let report = phoenix.roundtrip(r#"{"cmd":"close"}"#);
    assert!(report.contains("\"event\":\"close\""), "close: {report}");
    phoenix.wait();

    fs::remove_dir_all(&dir).ok();
}
