//! Chaos gate for the self-healing `inrpp serve`: SIGKILL a serving
//! process mid-run — inside a fault-plan outage window, after its
//! auto-checkpointer has published a few rotations — restart it from
//! the checkpoint directory, and require the recovered run's final
//! report to be **byte-equal** to an uninterrupted process's. The kill
//! lands between requests (the only instants a checkpoint is current),
//! which is exactly the contract `ckpt_every: 1` provides: at most one
//! advance of progress is lost, never correctness.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};

struct Serve {
    child: Child,
    out: BufReader<ChildStdout>,
}

impl Serve {
    fn spawn() -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_inrpp"))
            .arg("serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn inrpp serve");
        let out = BufReader::new(child.stdout.take().expect("piped stdout"));
        Serve { child, out }
    }

    /// Send one request line and read its reply line.
    fn roundtrip(&mut self, line: &str) -> String {
        let stdin = self.child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "{line}").expect("write request");
        stdin.flush().expect("flush request");
        let mut reply = String::new();
        self.out.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "serve hung up on: {line}");
        reply.trim_end().to_string()
    }

    /// SIGKILL — no shutdown courtesy, the whole point of the test.
    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        self.child.wait().expect("reap serve");
    }

    fn wait(mut self) {
        drop(self.child.stdin.take()); // EOF ends the serve loop
        self.child.wait().expect("serve exit");
    }
}

fn open_line(dir: Option<&Path>) -> String {
    let ckpt = match dir {
        Some(d) => format!(",\"ckpt_dir\":\"{}\",\"ckpt_retain\":3", d.display()),
        None => String::new(),
    };
    format!(
        "{{\"cmd\":\"open\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\
         \"faults\":\"linkdown@0.3:1; linkup@2:1\"{ckpt}}}"
    )
}

const FEEDS: [&str; 2] = [
    r#"{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":600,"start_secs":0}"#,
    r#"{"cmd":"feed","flow":2,"src":"2","dst":"3","chunks":250,"start_secs":0.12}"#,
];

#[test]
fn sigkill_mid_outage_recovers_to_a_byte_equal_report() {
    let dir = std::env::temp_dir().join(format!("inrpp-chaos-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    // victim: auto-checkpointing run, killed inside the outage window
    let mut victim = Serve::spawn();
    let opened = victim.roundtrip(&open_line(Some(&dir)));
    assert!(opened.contains("\"ok\":true"), "open failed: {opened}");
    for feed in FEEDS {
        assert!(victim.roundtrip(feed).contains("\"ok\":true"));
    }
    for (i, to) in ["0.5", "1", "1.5"].iter().enumerate() {
        let reply = victim.roundtrip(&format!("{{\"cmd\":\"advance\",\"to_secs\":{to}}}"));
        let want = format!("\"ckpt_seq\":{}", i + 1);
        assert!(reply.contains(&want), "advance {to}: {reply}");
    }
    victim.kill();

    // the victim published ckpt-000003.ckpt before dying; the link is
    // still down at 1.5s, so recovery restarts mid-outage
    assert!(dir.join("ckpt-000003.ckpt").exists(), "rotation on disk");

    // phoenix: recover from the newest checkpoint in the directory and
    // run to completion
    let mut phoenix = Serve::spawn();
    let resumed = phoenix.roundtrip(&format!(
        "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\
         \"faults\":\"linkdown@0.3:1; linkup@2:1\",\"ckpt_dir\":\"{}\"}}",
        dir.display()
    ));
    assert!(
        resumed.contains("\"ok\":true") && resumed.contains("\"recovered_seq\":3"),
        "resume reply: {resumed}"
    );
    assert!(phoenix
        .roundtrip(r#"{"cmd":"advance","to_secs":5}"#)
        .contains("\"ok\":true"));
    let recovered = phoenix.roundtrip(r#"{"cmd":"close"}"#);
    phoenix.wait();

    // control: one process, never interrupted, no checkpointing at all
    let mut control = Serve::spawn();
    assert!(control.roundtrip(&open_line(None)).contains("\"ok\":true"));
    for feed in FEEDS {
        assert!(control.roundtrip(feed).contains("\"ok\":true"));
    }
    assert!(control
        .roundtrip(r#"{"cmd":"advance","to_secs":5}"#)
        .contains("\"ok\":true"));
    let straight = control.roundtrip(r#"{"cmd":"close"}"#);
    control.wait();

    assert_eq!(
        recovered, straight,
        "final report after SIGKILL + recovery must be byte-equal to the uninterrupted run"
    );

    fs::remove_dir_all(&dir).ok();
}

/// The kill can also land *before any checkpoint exists*: recovery then
/// has nothing to reopen, and the typed `checkpoint` error must say so
/// without crashing the new process — it stays up and accepts a fresh
/// `open` on the same connection.
#[test]
fn sigkill_before_first_checkpoint_yields_a_typed_error_then_a_fresh_start() {
    let dir = std::env::temp_dir().join(format!("inrpp-chaos-empty-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    let mut victim = Serve::spawn();
    assert!(victim
        .roundtrip(&open_line(Some(&dir)))
        .contains("\"ok\":true"));
    victim.kill(); // no advance ever ran: the directory is empty

    let mut phoenix = Serve::spawn();
    let resumed = phoenix.roundtrip(&format!(
        "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
         \"horizon_secs\":30,\"seed\":7,\"ckpt_dir\":\"{}\"}}",
        dir.display()
    ));
    assert!(
        resumed.starts_with("{\"ok\":false,\"kind\":\"checkpoint\""),
        "typed recovery failure: {resumed}"
    );
    // the session loop survived the failed resume: start over from zero
    assert!(phoenix.roundtrip(&open_line(None)).contains("\"ok\":true"));
    let report = phoenix.roundtrip(r#"{"cmd":"close"}"#);
    assert!(report.contains("\"event\":\"close\""), "close: {report}");
    phoenix.wait();

    fs::remove_dir_all(&dir).ok();
}

// ===================================================================
// Socket transport: soak and chaos
// ===================================================================

/// A daemon child listening on a TCP port picked by the OS.
struct SocketServe {
    child: Child,
    addr: String,
}

impl SocketServe {
    fn spawn(workers: usize) -> SocketServe {
        let mut child = Command::new(env!("CARGO_BIN_EXE_inrpp"))
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                &workers.to_string(),
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn inrpp serve --listen");
        // the daemon announces its bound address as the first stdout line
        let mut out = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        out.read_line(&mut line).expect("read listening line");
        assert!(
            line.contains("\"event\":\"listening\""),
            "announcement: {line}"
        );
        let addr = line
            .split("\"addr\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("addr in announcement")
            .to_string();
        SocketServe { child, addr }
    }

    fn connect(&self) -> std::net::TcpStream {
        // the listener is already bound when the announcement prints,
        // so a straight connect suffices
        std::net::TcpStream::connect(&self.addr).expect("connect to daemon")
    }

    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    fn wait(mut self) {
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

/// Send a whole script plus `exit` over one TCP connection and read
/// every reply to EOF.
fn tcp_script(stream: std::net::TcpStream, script: &str) -> Vec<String> {
    let mut w = stream.try_clone().expect("clone stream");
    w.write_all(script.as_bytes()).expect("send script");
    w.write_all(b"{\"cmd\":\"exit\"}\n").expect("send exit");
    w.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read reply"))
        .collect()
}

/// Soak: 8 clients hammer one daemon concurrently — mixed engines,
/// faults, checkpoints, multiple advances — and every reply stream must
/// be byte-equal to the same script run against a solo stdio process.
#[test]
fn socket_soak_eight_clients_match_solo_controls() {
    let dir = std::env::temp_dir().join(format!("inrpp-soak-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    let scripts: Vec<String> = (0..8)
        .map(|i| {
            let engine = if i % 2 == 0 { "packet" } else { "fluid" };
            let faults = if i % 3 == 0 {
                r#","faults":"linkdown@0.3:1; linkup@2:1""#
            } else {
                ""
            };
            format!(
                concat!(
                    r#"{{"cmd":"open","engine":"{engine}","topology":"fig3","strategy":"urp","#,
                    r#""horizon_secs":30,"seed":{seed}{faults}}}"#,
                    "\n",
                    r#"{{"cmd":"feed","flow":1,"src":"1","dst":"4","chunks":{chunks},"start_secs":0}}"#,
                    "\n",
                    r#"{{"cmd":"advance","to_secs":1}}"#,
                    "\n",
                    r#"{{"cmd":"checkpoint","path":"{d}/soak-{i}.ckpt"}}"#,
                    "\n",
                    r#"{{"cmd":"advance","to_secs":3}}"#,
                    "\n",
                    r#"{{"cmd":"close"}}"#,
                    "\n",
                ),
                engine = engine,
                seed = 40 + i,
                faults = faults,
                chunks = 150 + 40 * i,
                d = dir.display(),
                i = i,
            )
        })
        .collect();

    // solo controls: each script against its own stdio serve process
    let controls: Vec<Vec<String>> = scripts
        .iter()
        .map(|script| {
            let mut serve = Serve::spawn();
            let replies: Vec<String> = script.lines().map(|line| serve.roundtrip(line)).collect();
            serve.wait();
            replies
        })
        .collect();

    let daemon = SocketServe::spawn(4);
    let clients: Vec<_> = scripts
        .iter()
        .map(|script| {
            let (stream, script) = (daemon.connect(), script.clone());
            std::thread::spawn(move || tcp_script(stream, &script))
        })
        .collect();
    for (i, (client, want)) in clients.into_iter().zip(&controls).enumerate() {
        let got = client.join().expect("client thread");
        assert_eq!(&got, want, "soak client {i} must match its solo control");
    }

    // clean shutdown: the daemon acknowledges and its process exits 0
    let mut stream = daemon.connect();
    stream
        .write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("send shutdown");
    stream.flush().expect("flush");
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).expect("ack");
    assert!(ack.contains("\"event\":\"shutdown\""), "ack: {ack}");
    daemon.wait();

    fs::remove_dir_all(&dir).ok();
}

/// The SIGKILL gate, socket edition: kill the whole daemon while a TCP
/// session sits mid-outage with auto-checkpoints on disk, then recover
/// through a fresh daemon and require the byte-equal final report.
#[test]
fn sigkill_socket_daemon_mid_outage_recovers_to_a_byte_equal_report() {
    let dir = std::env::temp_dir().join(format!("inrpp-chaos-sock-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();

    let drive = |stream: std::net::TcpStream, lines: &[String]| -> Vec<String> {
        let mut w = stream.try_clone().expect("clone stream");
        let mut r = BufReader::new(stream);
        lines
            .iter()
            .map(|line| {
                writeln!(w, "{line}").expect("send");
                w.flush().expect("flush");
                let mut reply = String::new();
                r.read_line(&mut reply).expect("reply");
                assert!(!reply.is_empty(), "daemon hung up on: {line}");
                reply.trim_end().to_string()
            })
            .collect()
    };

    // victim daemon: a faulted auto-checkpointing session over TCP
    let victim = SocketServe::spawn(2);
    let mut head =
        vec![open_line(Some(&dir)).replace("\"ckpt_retain\":3", "\"ckpt_retain\":3,\"sid\":\"v\"")];
    head.extend(
        FEEDS
            .iter()
            .map(|f| f.replace("{\"cmd\"", "{\"sid\":\"v\",\"cmd\"")),
    );
    for to in ["0.5", "1", "1.5"] {
        head.push(format!(
            "{{\"cmd\":\"advance\",\"sid\":\"v\",\"to_secs\":{to}}}"
        ));
    }
    let replies = drive(victim.connect(), &head);
    for r in &replies {
        assert!(r.contains("\"ok\":true"), "victim setup: {r}");
    }
    assert!(replies.last().unwrap().contains("\"ckpt_seq\":3"));
    victim.kill(); // SIGKILL: no shutdown, sockets drop mid-session

    assert!(dir.join("ckpt-000003.ckpt").exists(), "rotation on disk");

    // phoenix daemon: recover the run over a new connection
    let phoenix = SocketServe::spawn(2);
    let tail = vec![
        format!(
            "{{\"cmd\":\"resume\",\"engine\":\"packet\",\"topology\":\"fig3\",\"strategy\":\"urp\",\
             \"horizon_secs\":30,\"seed\":7,\
             \"faults\":\"linkdown@0.3:1; linkup@2:1\",\"ckpt_dir\":\"{}\"}}",
            dir.display()
        ),
        r#"{"cmd":"advance","to_secs":5}"#.to_string(),
        r#"{"cmd":"close"}"#.to_string(),
    ];
    let recovered = drive(phoenix.connect(), &tail);
    assert!(
        recovered[0].contains("\"recovered_seq\":3"),
        "resume: {}",
        recovered[0]
    );
    let mut bye = phoenix.connect();
    bye.write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("shutdown");
    bye.flush().expect("flush");
    let mut ack = String::new();
    BufReader::new(bye).read_line(&mut ack).expect("ack");
    phoenix.wait();

    // control: an uninterrupted stdio run, no checkpointing
    let mut control = Serve::spawn();
    assert!(control.roundtrip(&open_line(None)).contains("\"ok\":true"));
    for feed in FEEDS {
        assert!(control.roundtrip(feed).contains("\"ok\":true"));
    }
    assert!(control
        .roundtrip(r#"{"cmd":"advance","to_secs":5}"#)
        .contains("\"ok\":true"));
    let straight = control.roundtrip(r#"{"cmd":"close"}"#);
    control.wait();

    assert_eq!(
        recovered.last().unwrap(),
        &straight,
        "socket SIGKILL recovery must end byte-equal to the uninterrupted run"
    );

    fs::remove_dir_all(&dir).ok();
}
