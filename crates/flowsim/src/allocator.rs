//! Multipath max-min fluid bandwidth allocation.
//!
//! The allocator answers: given the flows currently in the network, each
//! with a *preference-ordered* list of subpaths, what rate does every flow
//! (and every subpath) get?
//!
//! The algorithm is progressive filling generalised to multipath:
//!
//! 1. Every unfrozen flow selects its **preferred subpath** — the first in
//!    its list whose links all have residual capacity.
//! 2. All unfrozen flows grow together by the largest `δ` no link can
//!    refuse: `δ = min over used links of residual / flows-preferring-it`.
//! 3. Links that reach zero residual are saturated; flows re-select their
//!    preferred subpath (falling over to detours) or freeze when no
//!    subpath has headroom left.
//!
//! With one subpath per flow, steps 1–3 are textbook max-min fairness —
//! the paper's e2e baseline, which on Fig. 3 yields rates (8, 2) and Jain
//! 0.73. With INRP detour subpaths appended, the same procedure yields
//! (5, 5) and Jain 1.0: bandwidth is "split equally up to the bottleneck"
//! and the excess detours, exactly the behaviour the paper describes.
//!
//! Capacities are treated **per direction**: an undirected link is two
//! independent directed channels, so opposing traffic does not compete.

use std::fmt;

use inrpp_topology::graph::{NodeId, Topology};
use inrpp_topology::spath::Path;

/// Relative tolerance for "this link is saturated".
pub(crate) const REL_EPS: f64 = 1e-9;
/// Safety bound on filling rounds (each round saturates a link, freezes a
/// flow, or forces a re-selection; this bound is never hit in practice).
pub(crate) const MAX_ROUNDS: usize = 100_000;

/// A path hop whose node pair has no link in the topology — the typed
/// error synthetic-topology callers get instead of a bare panic when they
/// feed a path that was computed on a different (or mutated) graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnresolvedHop {
    /// Hop tail.
    pub from: NodeId,
    /// Hop head.
    pub to: NodeId,
}

impl fmt::Display for UnresolvedHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path hop {}->{} has no link in the topology (was the path \
             computed on a different graph?)",
            self.from, self.to
        )
    }
}

impl std::error::Error for UnresolvedHop {}

/// Index of the directed channel `from → to`
/// (`link.idx() * 2 + direction`), or `None` when the nodes are not
/// adjacent. For per-event hot paths use
/// [`inrpp_topology::dense::DenseChannels`], the O(1) table the
/// [incremental engine](crate::engine) resolves against.
#[inline]
pub fn dir_index(topo: &Topology, from: NodeId, to: NodeId) -> Option<usize> {
    let l = topo.link_between(from, to)?;
    let fwd = topo.link(l).a == from;
    Some(l.idx() * 2 + usize::from(!fwd))
}

/// Resolve a path to its directed channel indices, or report the first
/// hop that has no link.
pub fn try_path_dir_indices(topo: &Topology, path: &Path) -> Result<Vec<usize>, UnresolvedHop> {
    path.nodes()
        .windows(2)
        .map(|w| {
            dir_index(topo, w[0], w[1]).ok_or(UnresolvedHop {
                from: w[0],
                to: w[1],
            })
        })
        .collect()
}

/// Resolve a path to its directed channel indices.
///
/// # Panics
/// Panics (with the hop that failed) when a consecutive node pair is not
/// linked; use [`try_path_dir_indices`] for a typed error instead.
pub fn path_dir_indices(topo: &Topology, path: &Path) -> Vec<usize> {
    try_path_dir_indices(topo, path).unwrap_or_else(|e| panic!("{e}"))
}

/// The result of an allocation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Total rate per flow (bits/s), indexed like the input.
    pub flow_rates: Vec<f64>,
    /// Rate per subpath per flow (bits/s), same shapes as the input lists.
    pub subpath_rates: Vec<Vec<f64>>,
    /// Bits/s consumed on every directed channel.
    pub dir_used: Vec<f64>,
    /// Filling rounds executed (diagnostics).
    pub rounds: usize,
}

impl Allocation {
    /// Utilisation in `[0, 1]` of each directed channel.
    pub fn dir_utilisation(&self, topo: &Topology) -> Vec<f64> {
        self.dir_used
            .iter()
            .enumerate()
            .map(|(i, &used)| {
                let cap = topo
                    .link(inrpp_topology::graph::LinkId((i / 2) as u32))
                    .capacity
                    .as_bps();
                if cap <= 0.0 {
                    0.0
                } else {
                    (used / cap).min(1.0)
                }
            })
            .collect()
    }

    /// Mean utilisation over directed channels that carry any capacity
    /// (zero-capacity channels are excluded from the denominator — they
    /// can never carry traffic, so counting them would dilute the mean).
    pub fn mean_utilisation(&self, topo: &Topology) -> f64 {
        let mut sum = 0.0;
        let mut carrying = 0usize;
        for (i, u) in self.dir_utilisation(topo).into_iter().enumerate() {
            let cap = topo
                .link(inrpp_topology::graph::LinkId((i / 2) as u32))
                .capacity
                .as_bps();
            if cap > 0.0 {
                sum += u;
                carrying += 1;
            }
        }
        if carrying == 0 {
            0.0
        } else {
            sum / carrying as f64
        }
    }
}

/// Allocate max-min fair rates to `flows`, where `flows[f]` is flow `f`'s
/// preference-ordered subpath list (must be non-empty for active flows;
/// an empty list means the flow is unroutable and gets rate 0).
///
/// Determinism: iteration order is flow index order everywhere; no RNG.
///
/// ```
/// use inrpp_flowsim::allocator::max_min_allocate;
/// use inrpp_topology::{spath::Path, Topology};
///
/// let topo = Topology::fig3();
/// let n = |s: &str| topo.node_by_name(s).unwrap();
/// // flow A may use the bottleneck AND the detour; flow B is single-path
/// let flows = vec![
///     vec![
///         Path::new(vec![n("1"), n("2"), n("4")]),
///         Path::new(vec![n("1"), n("2"), n("3"), n("4")]),
///     ],
///     vec![Path::new(vec![n("1"), n("2"), n("3")])],
/// ];
/// let alloc = max_min_allocate(&topo, &flows);
/// // the paper's Fig. 3 right-hand side: both flows get 5 Mbps
/// assert!((alloc.flow_rates[0] - 5e6).abs() < 1.0);
/// assert!((alloc.flow_rates[1] - 5e6).abs() < 1.0);
/// ```
pub fn max_min_allocate(topo: &Topology, flows: &[Vec<Path>]) -> Allocation {
    let ndir = topo.link_count() * 2;
    let mut residual: Vec<f64> = Vec::with_capacity(ndir);
    for l in topo.link_ids() {
        let c = topo.link(l).capacity.as_bps();
        residual.push(c);
        residual.push(c);
    }
    let caps = residual.clone();

    // Pre-resolve subpaths to directed channel lists.
    let subpath_dirs: Vec<Vec<Vec<usize>>> = flows
        .iter()
        .map(|paths| paths.iter().map(|p| path_dir_indices(topo, p)).collect())
        .collect();

    let mut subpath_rates: Vec<Vec<f64>> = flows.iter().map(|p| vec![0.0; p.len()]).collect();
    let mut frozen: Vec<bool> = flows.iter().map(|p| p.is_empty()).collect();
    // Currently preferred subpath per flow (index into its list).
    let mut preferred: Vec<usize> = vec![0; flows.len()];

    let saturated = |residual: &[f64], d: usize| residual[d] <= caps[d] * REL_EPS;

    // (Re-)select each unfrozen flow's preferred subpath.
    let reselect = |residual: &[f64], frozen: &mut Vec<bool>, preferred: &mut Vec<usize>| {
        for f in 0..flows.len() {
            if frozen[f] {
                continue;
            }
            let choice = subpath_dirs[f]
                .iter()
                .position(|dirs| !dirs.iter().any(|&d| saturated(residual, d)));
            match choice {
                Some(i) => preferred[f] = i,
                None => frozen[f] = true,
            }
        }
    };

    reselect(&residual, &mut frozen, &mut preferred);

    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        rounds += 1;
        // Count unfrozen flows per directed channel of preferred subpaths.
        let mut count = vec![0u32; ndir];
        let mut any = false;
        for f in 0..flows.len() {
            if frozen[f] {
                continue;
            }
            any = true;
            for &d in &subpath_dirs[f][preferred[f]] {
                count[d] += 1;
            }
        }
        if !any {
            break;
        }
        // Largest uniform increment no used channel can refuse.
        let mut delta = f64::INFINITY;
        for d in 0..ndir {
            if count[d] > 0 {
                delta = delta.min(residual[d] / count[d] as f64);
            }
        }
        debug_assert!(delta.is_finite(), "unfrozen flows must use channels");
        if delta > 0.0 {
            for f in 0..flows.len() {
                if frozen[f] {
                    continue;
                }
                subpath_rates[f][preferred[f]] += delta;
                for &d in &subpath_dirs[f][preferred[f]] {
                    residual[d] -= delta;
                }
            }
        }
        // Clamp channels that just saturated to exactly zero so the
        // saturation predicate is stable.
        for d in 0..ndir {
            if count[d] > 0 && saturated(&residual, d) {
                residual[d] = 0.0;
            }
        }
        reselect(&residual, &mut frozen, &mut preferred);
    }
    debug_assert!(rounds < MAX_ROUNDS, "allocator failed to converge");

    let flow_rates: Vec<f64> = subpath_rates.iter().map(|r| r.iter().sum()).collect();
    let dir_used: Vec<f64> = (0..ndir).map(|d| caps[d] - residual[d]).collect();
    Allocation {
        flow_rates,
        subpath_rates,
        dir_used,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_sim::metrics::JainIndex;
    use inrpp_sim::time::SimDuration;
    use inrpp_sim::units::Rate;

    fn mbps(v: f64) -> f64 {
        v * 1e6
    }

    fn fig3_flows_sp(topo: &Topology) -> Vec<Vec<Path>> {
        let n = |s: &str| topo.node_by_name(s).unwrap();
        vec![
            // flow A: 1 -> 4 over the bottleneck
            vec![Path::new(vec![n("1"), n("2"), n("4")])],
            // flow B: 1 -> 3
            vec![Path::new(vec![n("1"), n("2"), n("3")])],
        ]
    }

    #[test]
    fn fig3_e2e_baseline_gives_8_2() {
        // Paper Fig. 3 left: e2e flow control splits by the slowest link.
        let topo = Topology::fig3();
        let alloc = max_min_allocate(&topo, &fig3_flows_sp(&topo));
        assert!(
            (alloc.flow_rates[0] - mbps(2.0)).abs() < 1.0,
            "{:?}",
            alloc.flow_rates
        );
        assert!(
            (alloc.flow_rates[1] - mbps(8.0)).abs() < 1.0,
            "{:?}",
            alloc.flow_rates
        );
        let jain = JainIndex::compute(&alloc.flow_rates).unwrap();
        assert!((jain - 0.7353).abs() < 1e-3, "jain {jain}");
    }

    #[test]
    fn fig3_inrpp_gives_5_5() {
        // Paper Fig. 3 right: INRPP splits the shared link equally and
        // detours flow A's excess through node 3.
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let mut flows = fig3_flows_sp(&topo);
        // flow A gains the detour subpath 1-2-3-4
        flows[0].push(Path::new(vec![n("1"), n("2"), n("3"), n("4")]));
        let alloc = max_min_allocate(&topo, &flows);
        assert!(
            (alloc.flow_rates[0] - mbps(5.0)).abs() < 1.0,
            "{:?}",
            alloc.flow_rates
        );
        assert!(
            (alloc.flow_rates[1] - mbps(5.0)).abs() < 1.0,
            "{:?}",
            alloc.flow_rates
        );
        let jain = JainIndex::compute(&alloc.flow_rates).unwrap();
        assert!((jain - 1.0).abs() < 1e-6, "jain {jain}");
        // A's split: 2 on the bottleneck, 3 on the detour
        assert!((alloc.subpath_rates[0][0] - mbps(2.0)).abs() < 1.0);
        assert!((alloc.subpath_rates[0][1] - mbps(3.0)).abs() < 1.0);
    }

    #[test]
    fn single_flow_takes_bottleneck_capacity() {
        let topo = Topology::line(3, Rate::mbps(10.0), SimDuration::from_millis(1));
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let alloc = max_min_allocate(&topo, &[vec![p]]);
        assert!((alloc.flow_rates[0] - mbps(10.0)).abs() < 1.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let topo = Topology::dumbbell(
            4,
            Rate::mbps(100.0),
            Rate::mbps(10.0),
            SimDuration::from_millis(1),
        );
        let left = NodeId(4);
        let right = NodeId(5);
        let flows: Vec<Vec<Path>> = (0..4)
            .map(|i| vec![Path::new(vec![NodeId(i), left, right, NodeId(6 + i)])])
            .collect();
        let alloc = max_min_allocate(&topo, &flows);
        for r in &alloc.flow_rates {
            assert!((r - mbps(2.5)).abs() < 1.0, "{:?}", alloc.flow_rates);
        }
        assert_eq!(JainIndex::compute(&alloc.flow_rates), Some(1.0));
    }

    #[test]
    fn directions_are_independent() {
        // Two flows in opposite directions over one link both get full rate.
        let topo = Topology::line(2, Rate::mbps(10.0), SimDuration::from_millis(1));
        let fwd = Path::new(vec![NodeId(0), NodeId(1)]);
        let rev = Path::new(vec![NodeId(1), NodeId(0)]);
        let alloc = max_min_allocate(&topo, &[vec![fwd], vec![rev]]);
        assert!((alloc.flow_rates[0] - mbps(10.0)).abs() < 1.0);
        assert!((alloc.flow_rates[1] - mbps(10.0)).abs() < 1.0);
    }

    #[test]
    fn unroutable_flow_gets_zero() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let flows = vec![Vec::new(), vec![Path::new(vec![n("1"), n("2")])]];
        let alloc = max_min_allocate(&topo, &flows);
        assert_eq!(alloc.flow_rates[0], 0.0);
        assert!(alloc.flow_rates[1] > 0.0);
    }

    #[test]
    fn max_min_property_holds() {
        // No flow can raise its rate without lowering that of a flow with
        // equal-or-smaller rate: verify via saturation of each flow's
        // bottleneck.
        let topo = Topology::fig3();
        let alloc = max_min_allocate(&topo, &fig3_flows_sp(&topo));
        // every flow has at least one saturated channel on its path
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let paths = [
            Path::new(vec![n("1"), n("2"), n("4")]),
            Path::new(vec![n("1"), n("2"), n("3")]),
        ];
        for p in &paths {
            let has_sat = path_dir_indices(&topo, p).into_iter().any(|d| {
                let cap = topo
                    .link(inrpp_topology::graph::LinkId((d / 2) as u32))
                    .capacity
                    .as_bps();
                alloc.dir_used[d] >= cap * (1.0 - 1e-6)
            });
            assert!(has_sat, "flow on {p} is not bottlenecked anywhere");
        }
    }

    #[test]
    fn no_link_oversubscribed() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let mut flows = fig3_flows_sp(&topo);
        flows[0].push(Path::new(vec![n("1"), n("2"), n("3"), n("4")]));
        flows.push(vec![Path::new(vec![n("4"), n("3"), n("2")])]);
        let alloc = max_min_allocate(&topo, &flows);
        for (d, &used) in alloc.dir_used.iter().enumerate() {
            let cap = topo
                .link(inrpp_topology::graph::LinkId((d / 2) as u32))
                .capacity
                .as_bps();
            assert!(used <= cap * (1.0 + 1e-6), "channel {d} over capacity");
        }
    }

    #[test]
    fn utilisation_metrics() {
        let topo = Topology::line(2, Rate::mbps(10.0), SimDuration::from_millis(1));
        let alloc = max_min_allocate(&topo, &[vec![Path::new(vec![NodeId(0), NodeId(1)])]]);
        let u = alloc.dir_utilisation(&topo);
        assert!((u[0] - 1.0).abs() < 1e-6);
        assert_eq!(u[1], 0.0);
        assert!((alloc.mean_utilisation(&topo) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mean_utilisation_excludes_zero_capacity_channels() {
        // line 0-1-2 where link 1-2 has zero capacity: the one flow on
        // 0-1 fully saturates its forward channel, and the mean must be
        // over the two channels of link 0-1 only (1.0 and 0.0), not
        // diluted by the two dead channels of link 1-2.
        let mut topo = Topology::new("dead-tail");
        let ids = topo.add_nodes(3);
        topo.add_link(
            ids[0],
            ids[1],
            Rate::mbps(10.0),
            SimDuration::from_millis(1),
        )
        .unwrap();
        topo.add_link(ids[1], ids[2], Rate::mbps(0.0), SimDuration::from_millis(1))
            .unwrap();
        let alloc = max_min_allocate(&topo, &[vec![Path::new(vec![ids[0], ids[1]])]]);
        assert!((alloc.mean_utilisation(&topo) - 0.5).abs() < 1e-9);
        // all channels dead -> mean is 0, not NaN
        let mut dead = Topology::new("dead");
        let ids = dead.add_nodes(2);
        dead.add_link(ids[0], ids[1], Rate::mbps(0.0), SimDuration::from_millis(1))
            .unwrap();
        let alloc = max_min_allocate(&dead, &[]);
        assert_eq!(alloc.mean_utilisation(&dead), 0.0);
    }

    #[test]
    fn dir_index_is_none_for_missing_links() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        assert_eq!(dir_index(&topo, n("1"), n("4")), None);
        assert!(dir_index(&topo, n("1"), n("2")).is_some());
        let bad = Path::new(vec![n("1"), n("4")]);
        let err = try_path_dir_indices(&topo, &bad).unwrap_err();
        assert_eq!(
            err,
            UnresolvedHop {
                from: n("1"),
                to: n("4")
            }
        );
        assert!(err.to_string().contains("no link"));
    }

    #[test]
    fn empty_input_is_fine() {
        let topo = Topology::fig3();
        let alloc = max_min_allocate(&topo, &[]);
        assert!(alloc.flow_rates.is_empty());
        assert!(alloc.dir_used.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn allocation_is_deterministic() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let mut flows = fig3_flows_sp(&topo);
        flows[0].push(Path::new(vec![n("1"), n("2"), n("3"), n("4")]));
        let a = max_min_allocate(&topo, &flows);
        let b = max_min_allocate(&topo, &flows);
        assert_eq!(a, b);
    }
}
