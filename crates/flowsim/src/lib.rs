//! # inrpp-flowsim — fluid flow-level simulation of routing strategies
//!
//! The paper evaluates INRP's push-data and detour mechanisms "in a simple
//! flow-level simulator, where flows arrive Poisson distributed" (§3.3,
//! Fig. 4). This crate is that simulator, rebuilt:
//!
//! * [`allocator`] — a **multipath max-min** fluid bandwidth allocator
//!   (progressive filling over preference-ordered subpaths). With one
//!   subpath per flow it reduces to classic TCP-style max-min fairness
//!   (the paper's e2e baseline); with detour subpaths it realises INRPP's
//!   "split equally up to the bottleneck, detour the excess" semantics —
//!   both sides of Fig. 3 fall out of the same machinery.
//! * [`engine`] — the **incremental, arena-backed** allocation engine the
//!   event loop actually runs: subpaths resolve to flat channel-index
//!   slices once at flow arrival, scratch state persists across events,
//!   and every re-allocation is bit-identical to the reference allocator
//!   (see the module docs for the exactness contract).
//! * [`strategy`] — path-set construction per flow: single shortest path
//!   (SP), hash-selected equal-cost path (ECMP), and INRP (primary +
//!   detour-spliced subpaths, 1-hop plus the paper's "one extra hop").
//! * [`workload`] — Poisson arrivals, flow-size distributions, source/
//!   destination samplers.
//! * [`sim`] — the event loop: arrivals/departures with exact fluid
//!   integration between events, producing the Fig. 4a (normalised network
//!   throughput) and Fig. 4b (traffic-weighted path-stretch CDF) metrics.
//! * [`metrics`] — weighted CDF and report types shared by the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod engine;
pub mod metrics;
pub mod sim;
pub mod strategy;
pub mod workload;

pub use allocator::{max_min_allocate, Allocation, UnresolvedHop};
pub use engine::{AllocEngine, AllocatorScratch, FlowPaths};
pub use metrics::{FlowSimReport, WeightedCdf};
pub use sim::{FlowObserver, FlowSim, FlowSimConfig};
pub use strategy::{
    EcmpStrategy, InrpStrategy, MptcpStrategy, RoutingStrategy, SinglePathStrategy,
};
pub use workload::{FlowSpec, PairSelector, Workload, WorkloadConfig};
