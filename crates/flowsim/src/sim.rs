//! The fluid flow-level event loop.
//!
//! Between events the network is in a max-min equilibrium computed by the
//! incremental [`crate::engine`]; flows drain at their allocated rates,
//! integrated *exactly* over the inter-event interval (piecewise-linear
//! fluid model — no time-stepping error). Events are flow arrivals (from
//! the generated workload) and flow departures (when a flow's remaining
//! volume reaches zero at its current rate). Each event triggers a
//! re-allocation.
//!
//! Arrivals and departures update the engine's active set incrementally:
//! a flow's subpaths are resolved into the engine's arena once, at
//! arrival, and each event recomputes only the rate vectors — over
//! persistent scratch state, with no per-event path resolution or
//! allocation. The output is bit-identical to the original formulation
//! that re-ran the from-scratch reference allocator on every event (see
//! the [`crate::engine`] exactness contract).
//!
//! Departure scheduling uses the standard epoch trick: after every
//! re-allocation only the *earliest* predicted departure is scheduled,
//! tagged with the allocation epoch; stale events are ignored when they
//! fire. This keeps the event count at `O(arrivals + departures)`.

use inrpp_sim::event::{Engine, SchedulePastError};
use inrpp_sim::fault::{FaultKind, FaultPlan};
use inrpp_sim::metrics::{Cdf, JainIndex};
use inrpp_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_topology::graph::{NodeId, Topology};

use crate::engine::AllocEngine;
use crate::metrics::{FlowSimReport, WeightedCdf};
use crate::strategy::RoutingStrategy;
use crate::workload::{FlowSpec, Workload};

/// Streaming observer over the fluid event loop.
///
/// Every hook is called *during* the run, at the instant the event
/// happens, so time-resolved metrics can be collected without replaying
/// the simulation. All hooks default to no-ops; observers are purely
/// passive — the simulation's arithmetic is identical with or without
/// one (`FlowSim::run` is `run_observed(&mut ())`).
///
/// This is the flowsim-level substrate the `inrpp::session` probe API
/// adapts onto; use that facade unless you need raw engine access.
#[allow(unused_variables)]
pub trait FlowObserver {
    /// A flow arrived and was admitted with `subpaths` resolved subpaths.
    fn on_flow_start(&mut self, t: SimTime, spec: &FlowSpec, subpaths: usize) {}

    /// A flow arrived but no route exists between its endpoints.
    fn on_flow_unroutable(&mut self, t: SimTime, spec: &FlowSpec) {}

    /// A flow drained completely and left the network.
    fn on_flow_end(&mut self, t: SimTime, flow: u64, delivered_bits: f64, fct_secs: f64) {}

    /// A flow was still in flight when the horizon struck.
    fn on_flow_partial(&mut self, t: SimTime, flow: u64, delivered_bits: f64) {}

    /// A re-allocation just ran: `flows[i]` (ascending flow ids) now
    /// drains at `rates[i]` bits/s.
    fn on_allocation(&mut self, t: SimTime, flows: &[u64], rates: &[f64]) {}

    /// Fluid state was integrated up to `t`; `delivered_bits` is the
    /// cumulative volume delivered across all flows so far.
    fn on_sample(&mut self, t: SimTime, delivered_bits: f64) {}
}

/// The no-op observer (what [`FlowSim::run`] uses).
impl FlowObserver for () {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSimConfig {
    /// Hard stop; flows still active at the horizon are credited with the
    /// bits delivered so far.
    pub horizon: SimDuration,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            horizon: SimDuration::from_secs(60),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    /// `(flow id, allocation epoch)` — ignored if the epoch is stale.
    Departure(u64, u64),
    /// Fault-plan event `idx` takes effect.
    Fault(usize),
    /// The loss-burst window opened by plan event `idx` closes.
    FaultEnd(usize),
}

impl Snap for Event {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            Event::Arrival(idx) => {
                w.put_u8(0);
                w.put_usize(*idx);
            }
            Event::Departure(fid, epoch) => {
                w.put_u8(1);
                w.put_u64(*fid);
                w.put_u64(*epoch);
            }
            Event::Fault(idx) => {
                w.put_u8(2);
                w.put_usize(*idx);
            }
            Event::FaultEnd(idx) => {
                w.put_u8(3);
                w.put_usize(*idx);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Event::Arrival(r.get_usize()?)),
            1 => Ok(Event::Departure(r.get_u64()?, r.get_u64()?)),
            2 => Ok(Event::Fault(r.get_usize()?)),
            3 => Ok(Event::FaultEnd(r.get_usize()?)),
            _ => Err(SnapError::Corrupt("fluid event tag out of range")),
        }
    }
}

/// Per-flow bookkeeping, indexed by the engine's arena slot. The engine
/// owns the resolved subpaths; the simulator only needs the hop counts
/// (for the stretch CDF) and the drain state.
struct ActiveFlow {
    /// Hops of each subpath, preference order.
    subpath_hops: Vec<u32>,
    primary_hops: usize,
    size_bits: f64,
    remaining_bits: f64,
    /// bits delivered per subpath (for the stretch CDF)
    subpath_bits: Vec<f64>,
    arrival: SimTime,
}

impl Snap for ActiveFlow {
    fn encode(&self, w: &mut SnapWriter) {
        self.subpath_hops.encode(w);
        w.put_usize(self.primary_hops);
        w.put_f64(self.size_bits);
        w.put_f64(self.remaining_bits);
        self.subpath_bits.encode(w);
        self.arrival.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ActiveFlow {
            subpath_hops: Vec::<u32>::decode(r)?,
            primary_hops: r.get_usize()?,
            size_bits: r.get_f64()?,
            remaining_bits: r.get_f64()?,
            subpath_bits: Vec::<f64>::decode(r)?,
            arrival: SimTime::decode(r)?,
        })
    }
}

/// The flow-level simulator. Construct with a topology, strategy and
/// workload; consume with [`FlowSim::run`].
pub struct FlowSim<'a> {
    topo: &'a Topology,
    strategy: &'a dyn RoutingStrategy,
    workload: &'a Workload,
    config: FlowSimConfig,
    faults: FaultPlan,
}

impl<'a> FlowSim<'a> {
    /// Bundle the inputs of one run.
    pub fn new(
        topo: &'a Topology,
        strategy: &'a dyn RoutingStrategy,
        workload: &'a Workload,
        config: FlowSimConfig,
    ) -> Self {
        FlowSim {
            topo,
            strategy,
            workload,
            config,
            faults: FaultPlan::empty(),
        }
    }

    /// Attach a fault plan: its timed events join the event stream and
    /// trigger a re-allocation on every capacity transition.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Execute the run and produce the report.
    pub fn run(self) -> FlowSimReport {
        self.run_observed(&mut ())
    }

    /// Execute the run with a streaming [`FlowObserver`].
    ///
    /// The observer sees every arrival, departure, re-allocation and
    /// integration step as it happens; the produced report is
    /// bit-identical to an unobserved [`FlowSim::run`].
    pub fn run_observed(self, obs: &mut dyn FlowObserver) -> FlowSimReport {
        self.start().finish(obs)
    }

    /// Begin a *stepping* run: events are not processed until the caller
    /// drives the returned [`FlowRun`] with
    /// [`run_until`](FlowRun::run_until) / [`finish`](FlowRun::finish).
    /// This is the service-mode entry point — it adds streaming arrivals
    /// ([`feed`](FlowRun::feed)) and checkpoint/resume on top of the
    /// same event loop, with bit-identical results.
    pub fn start(self) -> FlowRun<'a> {
        FlowRun::new(
            self.topo,
            self.strategy,
            self.workload,
            self.config,
            self.faults,
        )
    }
}

/// An in-flight fluid simulation that can be driven in steps,
/// checkpointed, and fed additional arrivals while running.
///
/// # Determinism contract
/// `finish` processes events with the engine's plain `next()` loop;
/// `run_until(t)` processes the identical `(time, seq)` prefix via
/// [`Engine::next_at_or_before`]. Splitting a run at any boundary —
/// including across an [`encode_checkpoint`](FlowRun::encode_checkpoint)
/// / [`FlowRun::restore`] round-trip — therefore pops the same event
/// sequence and produces a bit-identical report and observer stream.
/// The checkpoint boundary deliberately does *not* integrate the fluid
/// state up to the boundary instant: integration happens only at event
/// instants (and once at the end), so `r·(dt₁+dt₂)` is never split into
/// `r·dt₁ + r·dt₂`, which would change the floating-point sums.
pub struct FlowRun<'a> {
    topo: &'a Topology,
    strategy: &'a dyn RoutingStrategy,
    workload: &'a Workload,
    config: FlowSimConfig,
    faults: FaultPlan,
    /// Down-cause count per link: `LinkDown` and adjacent `NodeCrash`
    /// each add one; the link carries traffic only at zero.
    link_down: Vec<u32>,
    /// Capacity fraction per link from the latest `CapacityScale`.
    link_scale: Vec<f64>,
    /// Goodput factor per link while a loss burst is open (`1 - drop`).
    link_burst: Vec<f64>,
    /// Plan index of the burst currently in force per link, or `usize::MAX`.
    burst_owner: Vec<usize>,
    horizon: SimTime,
    eng: Engine<Event>,
    /// Flows fed after the run started; `Event::Arrival(idx)` with
    /// `idx >= workload.len()` indexes into this list.
    extra: Vec<FlowSpec>,
    alloc_engine: AllocEngine,
    states: Vec<Option<ActiveFlow>>,
    alloc_valid: bool,
    epoch: u64,
    last_update: SimTime,
    delivered_bits: f64,
    offered_bits: f64,
    arrived: usize,
    completed: usize,
    unroutable: usize,
    fct_sum: f64,
    fct_cdf: Cdf,
    stretch: WeightedCdf,
    jain_weighted: f64,
    util_weighted: f64,
    chan_weighted: Vec<f64>,
    weighted_secs: f64,
}

impl<'a> FlowRun<'a> {
    fn new(
        topo: &'a Topology,
        strategy: &'a dyn RoutingStrategy,
        workload: &'a Workload,
        config: FlowSimConfig,
        faults: FaultPlan,
    ) -> Self {
        let horizon = SimTime::ZERO + config.horizon;
        let mut eng: Engine<Event> = Engine::new().with_horizon(horizon);
        for (i, f) in workload.flows.iter().enumerate() {
            eng.schedule_at(f.arrival, Event::Arrival(i))
                .expect("workload arrivals are within the window");
        }
        // Fault events join the queue after arrivals so that same-instant
        // ties resolve arrivals-first (sequence order breaks ties).
        for (i, ev) in faults.events().iter().enumerate() {
            eng.schedule_at(ev.at, Event::Fault(i))
                .expect("fault plan times are non-negative");
            if let FaultKind::LossBurst { until, .. } = ev.kind {
                eng.schedule_at(until, Event::FaultEnd(i))
                    .expect("burst windows end after they start");
            }
        }
        let links = topo.link_count();
        FlowRun {
            topo,
            strategy,
            workload,
            config,
            faults,
            link_down: vec![0; links],
            link_scale: vec![1.0; links],
            link_burst: vec![1.0; links],
            burst_owner: vec![usize::MAX; links],
            horizon,
            eng,
            extra: Vec::new(),
            alloc_engine: AllocEngine::new(topo),
            states: Vec::new(),
            alloc_valid: false,
            epoch: 0,
            last_update: SimTime::ZERO,
            delivered_bits: 0.0,
            offered_bits: 0.0,
            arrived: 0,
            completed: 0,
            unroutable: 0,
            fct_sum: 0.0,
            fct_cdf: Cdf::new(),
            stretch: WeightedCdf::new(),
            jain_weighted: 0.0,
            util_weighted: 0.0,
            chan_weighted: vec![0.0f64; topo.link_count() * 2],
            weighted_secs: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// The run's hard stop.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Inject an additional flow while the run is live. The arrival must
    /// not precede the current clock; the flow joins the event stream
    /// exactly as if it had been scheduled up front (modulo insertion
    /// sequence, which follows feed order — the determinism contract is
    /// over a fixed feed schedule, see the type-level docs).
    pub fn feed(&mut self, spec: FlowSpec) -> Result<(), SchedulePastError> {
        let idx = self.workload.len() + self.extra.len();
        self.eng.schedule_at(spec.arrival, Event::Arrival(idx))?;
        self.extra.push(spec);
        Ok(())
    }

    /// True when `id` already names a flow in this run (workload or
    /// fed). Flow ids must stay unique — the session layer uses this to
    /// reject duplicate feeds with a typed error.
    pub fn knows_flow(&self, id: u64) -> bool {
        self.workload
            .flows
            .iter()
            .chain(self.extra.iter())
            .any(|s| s.id == id)
    }

    fn spec_at(&self, idx: usize) -> &FlowSpec {
        if idx < self.workload.len() {
            &self.workload.flows[idx]
        } else {
            &self.extra[idx - self.workload.len()]
        }
    }

    /// Integrate the fluid system from `last_update` to `now`. The
    /// engine's active set always equals the set the last allocation ran
    /// over: inserts/removes happen *after* the advance for their event.
    fn advance(&mut self, now: SimTime, obs: &mut dyn FlowObserver) {
        let dt = now
            .saturating_duration_since(self.last_update)
            .as_secs_f64();
        self.last_update = now;
        if dt <= 0.0 || !self.alloc_valid {
            return;
        }
        let rates = self.alloc_engine.flow_rates();
        for (pos, &rate) in rates.iter().enumerate().take(self.alloc_engine.len()) {
            let Some(fl) = self.states[self.alloc_engine.slot_at(pos)].as_mut() else {
                continue;
            };
            let got = (rate * dt).min(fl.remaining_bits);
            fl.remaining_bits -= got;
            self.delivered_bits += got;
            // distribute onto subpaths proportionally to their rates
            let srates = self.alloc_engine.subpath_rates(pos);
            let total: f64 = srates.iter().sum();
            if total > 0.0 {
                for (s, &r) in srates.iter().enumerate() {
                    fl.subpath_bits[s] += got * r / total;
                }
            }
        }
        if let Some(j) = JainIndex::compute(rates) {
            self.jain_weighted += j * dt;
            self.util_weighted += self.alloc_engine.mean_utilisation() * dt;
            self.alloc_engine
                .accumulate_channel_utilisation(dt, &mut self.chan_weighted);
            self.weighted_secs += dt;
        }
        obs.on_sample(now, self.delivered_bits);
    }

    /// Re-allocate and schedule the earliest departure.
    fn reallocate(&mut self, now: SimTime, obs: &mut dyn FlowObserver) {
        self.epoch += 1;
        if self.alloc_engine.is_empty() {
            self.alloc_valid = false;
            return;
        }
        self.alloc_engine.allocate();
        self.alloc_valid = true;
        obs.on_allocation(
            now,
            self.alloc_engine.keys(),
            self.alloc_engine.flow_rates(),
        );
        // earliest departure under the new rates
        let rates = self.alloc_engine.flow_rates();
        let mut best: Option<(f64, u64)> = None;
        for (pos, &fid) in self.alloc_engine.keys().iter().enumerate() {
            let rate = rates[pos];
            if rate <= 0.0 {
                continue;
            }
            let fl = self.states[self.alloc_engine.slot_at(pos)]
                .as_ref()
                .expect("engine and state slab agree on active slots");
            let eta = fl.remaining_bits / rate;
            if best.map_or(true, |(t, _)| eta < t) {
                best = Some((eta, fid));
            }
        }
        if let Some((eta, fid)) = best {
            // +1 ns: over-wait past any float-to-nanosecond rounding so
            // the flow has definitely drained when the event fires (the
            // integrator clamps delivery at the remaining volume).
            self.eng.schedule(
                SimDuration::from_secs_f64(eta.max(0.0)) + SimDuration::from_nanos(1),
                Event::Departure(fid, self.epoch),
            );
        }
    }

    /// Recompute the effective capacity factor of `link` after a fault
    /// transition touched it.
    fn refresh_link(&mut self, link: usize) {
        let factor = if self.link_down[link] > 0 {
            0.0
        } else {
            self.link_scale[link] * self.link_burst[link]
        };
        self.alloc_engine.set_link_capacity_factor(link, factor);
    }

    /// Apply the capacity transition of plan event `idx`. Pure state
    /// mutation — callers advance the fluid integral before and
    /// re-allocate after, exactly like arrivals and departures.
    fn apply_fault(&mut self, idx: usize) {
        match self.faults.events()[idx].kind {
            FaultKind::LinkDown { link } => {
                self.link_down[link as usize] += 1;
                self.refresh_link(link as usize);
            }
            FaultKind::LinkUp { link } => {
                let l = link as usize;
                self.link_down[l] = self.link_down[l].saturating_sub(1);
                self.refresh_link(l);
            }
            FaultKind::CapacityScale { link, fraction } => {
                self.link_scale[link as usize] = fraction;
                self.refresh_link(link as usize);
            }
            FaultKind::NodeCrash { node } => {
                for &(_, l) in self.topo.neighbors(NodeId(node)) {
                    self.link_down[l.idx()] += 1;
                    self.refresh_link(l.idx());
                }
            }
            FaultKind::NodeRecover { node } => {
                for &(_, l) in self.topo.neighbors(NodeId(node)) {
                    self.link_down[l.idx()] = self.link_down[l.idx()].saturating_sub(1);
                    self.refresh_link(l.idx());
                }
            }
            FaultKind::LossBurst {
                link, drop_chance, ..
            } => {
                // The fluid model treats random loss as a goodput derate:
                // retransmitted volume is capacity the link cannot pool.
                self.link_burst[link as usize] = 1.0 - drop_chance;
                self.burst_owner[link as usize] = idx;
                self.refresh_link(link as usize);
            }
        }
    }

    /// Close the loss-burst window opened by plan event `idx` (no-op if a
    /// later burst on the same link has taken over).
    fn apply_fault_end(&mut self, idx: usize) {
        if let FaultKind::LossBurst { link, .. } = self.faults.events()[idx].kind {
            let l = link as usize;
            if self.burst_owner[l] == idx {
                self.link_burst[l] = 1.0;
                self.burst_owner[l] = usize::MAX;
                self.refresh_link(l);
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event, obs: &mut dyn FlowObserver) {
        match ev {
            Event::Arrival(idx) => {
                self.advance(now, obs);
                let spec = self.spec_at(idx).clone();
                self.arrived += 1;
                let paths = self
                    .strategy
                    .paths_for(self.topo, spec.src, spec.dst, spec.id);
                if paths.is_empty() {
                    self.unroutable += 1;
                    obs.on_flow_unroutable(now, &spec);
                    return;
                }
                self.offered_bits += spec.size_bits;
                let primary_hops = paths[0].hops().max(1);
                let subpath_hops: Vec<u32> = paths.iter().map(|p| p.hops() as u32).collect();
                let n = paths.len();
                let slot = self
                    .alloc_engine
                    .insert(spec.id, &paths)
                    .unwrap_or_else(|e| panic!("flow {}: {e}", spec.id));
                if self.states.len() <= slot {
                    self.states.resize_with(slot + 1, || None);
                }
                self.states[slot] = Some(ActiveFlow {
                    subpath_hops,
                    primary_hops,
                    size_bits: spec.size_bits,
                    remaining_bits: spec.size_bits,
                    subpath_bits: vec![0.0; n],
                    arrival: now,
                });
                obs.on_flow_start(now, &spec, n);
                self.reallocate(now, obs);
            }
            Event::Departure(fid, ev_epoch) => {
                if ev_epoch != self.epoch {
                    return; // superseded schedule
                }
                self.advance(now, obs);
                if let Some(slot) = self.alloc_engine.remove(fid) {
                    let fl = self.states[slot]
                        .take()
                        .expect("engine and state slab agree on active slots");
                    debug_assert!(
                        fl.remaining_bits < 1.0,
                        "flow {fid} departed with {} bits left",
                        fl.remaining_bits
                    );
                    self.completed += 1;
                    let fct = now.duration_since(fl.arrival).as_secs_f64();
                    self.fct_sum += fct;
                    self.fct_cdf.record(fct);
                    obs.on_flow_end(now, fid, fl.size_bits - fl.remaining_bits, fct);
                    record_stretch(&mut self.stretch, &fl);
                }
                self.reallocate(now, obs);
            }
            Event::Fault(idx) => {
                self.advance(now, obs);
                self.apply_fault(idx);
                self.reallocate(now, obs);
            }
            Event::FaultEnd(idx) => {
                self.advance(now, obs);
                self.apply_fault_end(idx);
                self.reallocate(now, obs);
            }
        }
    }

    /// Process every event due at or before `t` (clamped to the
    /// horizon), then park the clock at the boundary. Returns the
    /// clock's new value. Fluid state is *not* integrated to the
    /// boundary — see the determinism contract above.
    pub fn run_until(&mut self, t: SimTime, obs: &mut dyn FlowObserver) -> SimTime {
        let limit = t.min(self.horizon);
        while let Some((now, ev)) = self.eng.next_at_or_before(limit) {
            self.handle(now, ev, obs);
        }
        if limit > self.eng.now() {
            self.eng.advance_clock_to(limit);
        }
        self.eng.now()
    }

    /// Drain the remaining events, integrate the final stretch of time,
    /// credit partial deliveries, and assemble the report.
    pub fn finish(mut self, obs: &mut dyn FlowObserver) -> FlowSimReport {
        while let Some((now, ev)) = self.eng.next() {
            self.handle(now, ev, obs);
        }
        // Horizon reached: integrate the final stretch of time and
        // credit partial deliveries.
        let end = self.horizon.min(self.eng.now().max(self.last_update));
        self.advance(end, obs);
        for pos in 0..self.alloc_engine.len() {
            if let Some(fl) = &self.states[self.alloc_engine.slot_at(pos)] {
                obs.on_flow_partial(
                    end,
                    self.alloc_engine.keys()[pos],
                    fl.size_bits - fl.remaining_bits,
                );
                record_stretch(&mut self.stretch, fl);
            }
        }
        self.report(self.config.horizon)
    }

    /// Assemble a report from the accumulators as they stand (used both
    /// by [`finish`](FlowRun::finish) and for incremental snapshots).
    fn report(&self, duration: SimDuration) -> FlowSimReport {
        FlowSimReport {
            strategy: self.strategy.name().to_string(),
            topology: self.topo.name().to_string(),
            arrived_flows: self.arrived,
            completed_flows: self.completed,
            unroutable_flows: self.unroutable,
            offered_bits: self.offered_bits,
            delivered_bits: self.delivered_bits,
            duration,
            mean_fct_secs: if self.completed > 0 {
                self.fct_sum / self.completed as f64
            } else {
                0.0
            },
            fct_cdf: self.fct_cdf.clone(),
            stretch: self.stretch.clone(),
            mean_jain: if self.weighted_secs > 0.0 {
                self.jain_weighted / self.weighted_secs
            } else {
                0.0
            },
            mean_utilisation: if self.weighted_secs > 0.0 {
                self.util_weighted / self.weighted_secs
            } else {
                0.0
            },
            channel_utilisation: if self.weighted_secs > 0.0 {
                self.chan_weighted
                    .iter()
                    .map(|w| w / self.weighted_secs)
                    .collect()
            } else {
                self.chan_weighted.clone()
            },
        }
    }

    /// A report of the run *so far*: accumulators as of the last
    /// processed event, with `duration` set to the elapsed window. Does
    /// not perturb the run.
    pub fn report_now(&self) -> FlowSimReport {
        self.report(self.eng.now().saturating_duration_since(SimTime::ZERO))
    }

    /// Serialise the complete run state. Restoring with
    /// [`FlowRun::restore`] against the same topology / strategy /
    /// workload continues the run bit-identically.
    pub fn encode_checkpoint(&self, w: &mut SnapWriter) {
        self.config.horizon.encode(w);
        self.eng.encode_state(w);
        self.extra.encode(w);
        // Active flows in ascending-key (position) order, each with the
        // endpoints needed to re-resolve its paths at restore.
        w.put_usize(self.alloc_engine.len());
        for (pos, &key) in self.alloc_engine.keys().iter().enumerate() {
            let fl = self.states[self.alloc_engine.slot_at(pos)]
                .as_ref()
                .expect("engine and state slab agree on active slots");
            w.put_u64(key);
            let spec = self.spec_of_flow(key);
            w.put_u32(spec.src.0);
            w.put_u32(spec.dst.0);
            fl.encode(w);
        }
        w.put_bool(self.alloc_valid);
        w.put_u64(self.epoch);
        self.last_update.encode(w);
        w.put_f64(self.delivered_bits);
        w.put_f64(self.offered_bits);
        w.put_usize(self.arrived);
        w.put_usize(self.completed);
        w.put_usize(self.unroutable);
        w.put_f64(self.fct_sum);
        self.fct_cdf.encode(w);
        self.stretch.encode(w);
        w.put_f64(self.jain_weighted);
        w.put_f64(self.util_weighted);
        self.chan_weighted.encode(w);
        w.put_f64(self.weighted_secs);
    }

    /// Look up the spec of an *active* flow by id. Flow ids are unique
    /// across the workload and the fed extras (the engine's `insert`
    /// rejects duplicates), so a linear scan is unambiguous; active sets
    /// are small relative to workloads, and checkpoints are rare.
    fn spec_of_flow(&self, id: u64) -> &FlowSpec {
        self.workload
            .flows
            .iter()
            .chain(self.extra.iter())
            .find(|s| s.id == id)
            .expect("active flow has a spec")
    }

    /// Rebuild a run from [`FlowRun::encode_checkpoint`] bytes. The
    /// caller must pass the same topology, strategy, and workload the
    /// checkpoint was taken against (the session layer fingerprints
    /// this); path resolution is re-run per active flow, which is
    /// deterministic, and the allocator state is recomputed — the
    /// allocation is a pure function of the active set in key order.
    pub fn restore(
        topo: &'a Topology,
        strategy: &'a dyn RoutingStrategy,
        workload: &'a Workload,
        faults: FaultPlan,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, SnapError> {
        let horizon_d = SimDuration::decode(r)?;
        let eng = Engine::<Event>::decode_state(r)?;
        let extra = Vec::<FlowSpec>::decode(r)?;
        let n_active = r.get_usize()?;
        if n_active > r.remaining() {
            return Err(SnapError::Corrupt("active flow count exceeds stream"));
        }
        let mut alloc_engine = AllocEngine::new(topo);
        let mut states: Vec<Option<ActiveFlow>> = Vec::new();
        let mut last_key: Option<u64> = None;
        for _ in 0..n_active {
            let key = r.get_u64()?;
            if last_key.is_some_and(|k| k >= key) {
                return Err(SnapError::Corrupt("active flows out of key order"));
            }
            last_key = Some(key);
            let src = NodeId(r.get_u32()?);
            let dst = NodeId(r.get_u32()?);
            let fl = ActiveFlow::decode(r)?;
            if src.0 as usize >= topo.node_count() || dst.0 as usize >= topo.node_count() {
                return Err(SnapError::Corrupt("active flow endpoint out of range"));
            }
            let paths = strategy.paths_for(topo, src, dst, key);
            if paths.len() != fl.subpath_bits.len() {
                return Err(SnapError::Corrupt(
                    "resolved subpath count differs from checkpoint",
                ));
            }
            let slot = alloc_engine
                .insert(key, &paths)
                .map_err(|_| SnapError::Corrupt("checkpointed flow no longer resolves"))?;
            if states.len() <= slot {
                states.resize_with(slot + 1, || None);
            }
            states[slot] = Some(fl);
        }
        let alloc_valid = r.get_bool()?;
        if alloc_valid && alloc_engine.is_empty() {
            return Err(SnapError::Corrupt("allocation valid but no active flows"));
        }
        let links = topo.link_count();
        let mut run = FlowRun {
            topo,
            strategy,
            workload,
            config: FlowSimConfig { horizon: horizon_d },
            faults,
            link_down: vec![0; links],
            link_scale: vec![1.0; links],
            link_burst: vec![1.0; links],
            burst_owner: vec![usize::MAX; links],
            horizon: SimTime::ZERO + horizon_d,
            eng,
            extra,
            alloc_engine,
            states,
            alloc_valid,
            epoch: r.get_u64()?,
            last_update: SimTime::decode(r)?,
            delivered_bits: r.get_f64()?,
            offered_bits: r.get_f64()?,
            arrived: r.get_usize()?,
            completed: r.get_usize()?,
            unroutable: r.get_usize()?,
            fct_sum: r.get_f64()?,
            fct_cdf: Cdf::decode(r)?,
            stretch: WeightedCdf::decode(r)?,
            jain_weighted: r.get_f64()?,
            util_weighted: r.get_f64()?,
            chan_weighted: Vec::<f64>::decode(r)?,
            weighted_secs: r.get_f64()?,
        };
        // Capacity state is a pure function of (plan, now): replay every
        // transition due at or before the checkpoint clock — starts and
        // burst ends in firing order (stable by time, plan order on ties)
        // — before recomputing the allocation. Pending fault events ride
        // along inside the encoded engine queue.
        let now = run.eng.now();
        let mut transitions: Vec<(SimTime, bool, usize)> = Vec::new();
        for (i, ev) in run.faults.events().iter().enumerate() {
            transitions.push((ev.at, false, i));
            if let FaultKind::LossBurst { until, .. } = ev.kind {
                transitions.push((until, true, i));
            }
        }
        transitions.sort_by_key(|&(t, _, _)| t);
        for (t, is_end, i) in transitions {
            if t > now {
                break;
            }
            if is_end {
                run.apply_fault_end(i);
            } else {
                run.apply_fault(i);
            }
        }
        if run.alloc_valid {
            run.alloc_engine.allocate();
        }
        Ok(run)
    }
}

fn record_stretch(stretch: &mut WeightedCdf, fl: &ActiveFlow) {
    for (s, &bits) in fl.subpath_bits.iter().enumerate() {
        if bits > 0.0 {
            let st = fl.subpath_hops[s] as f64 / fl.primary_hops as f64;
            stretch.record(st, bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{EcmpStrategy, InrpStrategy, SinglePathStrategy};
    use crate::workload::{PairSelector, WorkloadConfig};
    use inrpp_sim::units::Rate;
    use inrpp_topology::rocketfuel::{generate_isp, Isp};

    fn small_workload(topo: &Topology, rate: f64, secs: u64, seed: u64) -> Workload {
        Workload::generate(
            topo,
            &WorkloadConfig {
                arrival_rate: rate,
                mean_size_bits: 2e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(secs),
            seed,
        )
    }

    #[test]
    fn light_load_delivers_everything() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 5.0, 5, 42);
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(60),
            },
        )
        .run();
        assert_eq!(report.arrived_flows, w.len());
        assert_eq!(report.completed_flows + report.unroutable_flows, w.len());
        assert!(
            (report.throughput() - 1.0).abs() < 1e-6,
            "throughput {} under light load",
            report.throughput()
        );
        assert!(report.mean_fct_secs > 0.0);
        assert!(report.mean_jain > 0.0);
    }

    #[test]
    fn conservation_delivered_never_exceeds_offered() {
        let topo = generate_isp(Isp::Vsnl, 2);
        let w = small_workload(&topo, 400.0, 3, 7);
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(4),
            },
        )
        .run();
        assert!(report.delivered_bits <= report.offered_bits * (1.0 + 1e-9));
        assert!(report.throughput() <= 1.0 + 1e-9);
    }

    #[test]
    fn overload_throughput_below_one() {
        let topo = generate_isp(Isp::Vsnl, 3);
        // brutal overload: many big flows, short horizon
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 2000.0,
                mean_size_bits: 20e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(2),
            5,
        );
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(3),
            },
        )
        .run();
        assert!(
            report.throughput() < 0.9,
            "expected clear overload, got {}",
            report.throughput()
        );
    }

    #[test]
    fn inrp_beats_sp_under_congestion() {
        // The Fig. 4a headline: URP carries more than SP on the same
        // workload once links saturate. Capacities are scaled down so the
        // workload genuinely overloads the core, and the horizon equals the
        // arrival window so unfinished traffic counts against throughput.
        use inrpp_topology::rocketfuel::{generate_with_capacities, CapacityPlan, Isp};
        let plan = CapacityPlan {
            core: Rate::mbps(1000.0),
            metro: Rate::mbps(500.0),
            stub: Rate::mbps(200.0),
        };
        let topo = generate_with_capacities(&Isp::Exodus.profile(), 1221, plan);
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 120.0,
                mean_size_bits: 150e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(3),
            1221,
        );
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(3),
        };
        let sp = SinglePathStrategy;
        let inrp = InrpStrategy::with_defaults(&topo);
        let r_sp = FlowSim::new(&topo, &sp, &w, cfg).run();
        let r_inrp = FlowSim::new(&topo, &inrp, &w, cfg).run();
        assert!(
            r_sp.throughput() < 0.95,
            "workload must overload SP, got {}",
            r_sp.throughput()
        );
        assert!(
            r_inrp.throughput() > r_sp.throughput() * 1.02,
            "URP {} must clearly beat SP {}",
            r_inrp.throughput(),
            r_sp.throughput()
        );
    }

    #[test]
    fn stretch_cdf_starts_at_one_for_sp() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 50.0, 3, 3);
        let sp = SinglePathStrategy;
        let mut report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(30),
            },
        )
        .run();
        // single-path flows can never stretch
        assert!((report.stretch.fraction_le(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inrp_stretch_stays_modest() {
        let topo = generate_isp(Isp::Tiscali, 1221);
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 300.0,
                mean_size_bits: 30e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(3),
            9,
        );
        let inrp = InrpStrategy::with_defaults(&topo);
        let mut report = FlowSim::new(
            &topo,
            &inrp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(5),
            },
        )
        .run();
        // Fig. 4b: at least half the traffic rides the original path...
        assert!(
            report.stretch.fraction_le(1.0) > 0.5,
            "mass at stretch 1.0: {}",
            report.stretch.fraction_le(1.0)
        );
        // ...and stretched traffic stays within ~2x
        assert!(report.stretch.quantile(0.99).unwrap() <= 2.0);
    }

    #[test]
    fn ecmp_runs_and_reports() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 50.0, 2, 17);
        let ecmp = EcmpStrategy::default();
        let report = FlowSim::new(
            &topo,
            &ecmp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(20),
            },
        )
        .run();
        assert_eq!(report.strategy, "ECMP");
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = generate_isp(Isp::Vsnl, 5);
        let w = small_workload(&topo, 100.0, 2, 5);
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(10),
        };
        let a = FlowSim::new(&topo, &inrp, &w, cfg).run();
        let b = FlowSim::new(&topo, &inrp, &w, cfg).run();
        assert_eq!(a.delivered_bits, b.delivered_bits);
        assert_eq!(a.completed_flows, b.completed_flows);
        assert_eq!(a.mean_jain, b.mean_jain);
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let topo = Topology::fig3();
        let w = Workload {
            flows: Vec::new(),
            offered_bits: 0.0,
        };
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(1),
            },
        )
        .run();
        assert_eq!(report.arrived_flows, 0);
        assert_eq!(report.throughput(), 0.0);
    }

    #[test]
    fn fig3_static_scenario_through_simulator() {
        // Two long flows starting together on the Fig. 3 network: with the
        // INRP strategy both should progress at ~5 Mbps.
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let flows = vec![
            crate::workload::FlowSpec {
                id: 0,
                src: n("1"),
                dst: n("4"),
                size_bits: 5e6 * 10.0, // 10 s at 5 Mbps
                arrival: SimTime::ZERO,
            },
            crate::workload::FlowSpec {
                id: 1,
                src: n("1"),
                dst: n("3"),
                size_bits: 5e6 * 10.0,
                arrival: SimTime::ZERO,
            },
        ];
        let w = Workload {
            offered_bits: flows.iter().map(|f| f.size_bits).sum(),
            flows,
        };
        let inrp = InrpStrategy::with_defaults(&topo);
        let report = FlowSim::new(
            &topo,
            &inrp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(11),
            },
        )
        .run();
        assert_eq!(report.completed_flows, 2);
        assert!(
            (report.mean_jain - 1.0).abs() < 1e-6,
            "jain {}",
            report.mean_jain
        );
        assert!((report.mean_fct_secs - 10.0).abs() < 0.1);
        let _ = Rate::ZERO; // keep the import exercised on all feature sets
    }

    // ---- stepping / checkpoint / feed ----------------------------------

    /// Observer that folds every hook's payload into an FNV-style hash,
    /// bit-exactly — two runs with identical streams get identical
    /// fingerprints.
    #[derive(Default)]
    struct StreamFp(u64);

    impl StreamFp {
        fn mix(&mut self, x: u64) {
            let mut h = self.0 ^ x;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            self.0 = h ^ (h >> 29);
        }
        fn mix_f(&mut self, x: f64) {
            self.mix(x.to_bits());
        }
    }

    impl FlowObserver for StreamFp {
        fn on_flow_start(&mut self, t: SimTime, spec: &FlowSpec, subpaths: usize) {
            self.mix(1);
            self.mix(t.as_nanos());
            self.mix(spec.id);
            self.mix(subpaths as u64);
        }
        fn on_flow_unroutable(&mut self, t: SimTime, spec: &FlowSpec) {
            self.mix(2);
            self.mix(t.as_nanos());
            self.mix(spec.id);
        }
        fn on_flow_end(&mut self, t: SimTime, flow: u64, delivered_bits: f64, fct_secs: f64) {
            self.mix(3);
            self.mix(t.as_nanos());
            self.mix(flow);
            self.mix_f(delivered_bits);
            self.mix_f(fct_secs);
        }
        fn on_flow_partial(&mut self, t: SimTime, flow: u64, delivered_bits: f64) {
            self.mix(4);
            self.mix(t.as_nanos());
            self.mix(flow);
            self.mix_f(delivered_bits);
        }
        fn on_allocation(&mut self, t: SimTime, flows: &[u64], rates: &[f64]) {
            self.mix(5);
            self.mix(t.as_nanos());
            for (&f, &r) in flows.iter().zip(rates) {
                self.mix(f);
                self.mix_f(r);
            }
        }
        fn on_sample(&mut self, t: SimTime, delivered_bits: f64) {
            self.mix(6);
            self.mix(t.as_nanos());
            self.mix_f(delivered_bits);
        }
    }

    /// Bit-exact report comparison (f64 fields via `to_bits`).
    fn assert_reports_identical(a: &FlowSimReport, b: &FlowSimReport) {
        assert_eq!(a.arrived_flows, b.arrived_flows);
        assert_eq!(a.completed_flows, b.completed_flows);
        assert_eq!(a.unroutable_flows, b.unroutable_flows);
        assert_eq!(a.offered_bits.to_bits(), b.offered_bits.to_bits());
        assert_eq!(a.delivered_bits.to_bits(), b.delivered_bits.to_bits());
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.mean_fct_secs.to_bits(), b.mean_fct_secs.to_bits());
        assert_eq!(a.mean_jain.to_bits(), b.mean_jain.to_bits());
        assert_eq!(a.mean_utilisation.to_bits(), b.mean_utilisation.to_bits());
        assert_eq!(a.channel_utilisation.len(), b.channel_utilisation.len());
        for (x, y) in a.channel_utilisation.iter().zip(&b.channel_utilisation) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.fct_cdf, b.fct_cdf);
        assert_eq!(a.stretch, b.stretch);
    }

    #[test]
    fn stepping_run_matches_straight_run() {
        let topo = generate_isp(Isp::Vsnl, 5);
        let w = small_workload(&topo, 150.0, 3, 11);
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(8),
        };
        let mut fp_a = StreamFp::default();
        let straight = FlowSim::new(&topo, &inrp, &w, cfg).run_observed(&mut fp_a);

        let mut fp_b = StreamFp::default();
        let mut run = FlowSim::new(&topo, &inrp, &w, cfg).start();
        // uneven boundaries, including one past the horizon
        for secs in [1, 2, 3, 5, 30] {
            run.run_until(SimTime::from_secs(secs), &mut fp_b);
        }
        let stepped = run.finish(&mut fp_b);

        assert_reports_identical(&straight, &stepped);
        assert_eq!(fp_a.0, fp_b.0, "observer streams diverged");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let topo = generate_isp(Isp::Vsnl, 7);
        let w = small_workload(&topo, 200.0, 3, 23);
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(6),
        };
        let mut fp_a = StreamFp::default();
        let straight = FlowSim::new(&topo, &inrp, &w, cfg).run_observed(&mut fp_a);

        // run half-way, checkpoint, drop the run, restore, finish
        let mut fp_b = StreamFp::default();
        let mut first = FlowSim::new(&topo, &inrp, &w, cfg).start();
        first.run_until(SimTime::from_millis(1_500), &mut fp_b);
        let mut wtr = SnapWriter::new();
        first.encode_checkpoint(&mut wtr);
        let bytes = wtr.into_bytes();
        drop(first);

        let second = FlowRun::restore(
            &topo,
            &inrp,
            &w,
            FaultPlan::empty(),
            &mut SnapReader::new(&bytes),
        )
        .expect("restores");
        let resumed = second.finish(&mut fp_b);

        assert_reports_identical(&straight, &resumed);
        assert_eq!(fp_a.0, fp_b.0, "resume changed the observer stream");

        // a second checkpoint of a restored run at the same instant is
        // byte-identical to the first (state round-trips canonically)
        let third = FlowRun::restore(
            &topo,
            &inrp,
            &w,
            FaultPlan::empty(),
            &mut SnapReader::new(&bytes),
        )
        .expect("restores");
        let mut wtr2 = SnapWriter::new();
        third.encode_checkpoint(&mut wtr2);
        assert_eq!(bytes, wtr2.into_bytes());
    }

    #[test]
    fn fault_plan_freezes_and_recovers_flows() {
        use inrpp_sim::fault::FaultEvent;
        let topo = Topology::line(3, Rate::mbps(10.0), SimDuration::from_millis(1));
        let w = Workload {
            flows: vec![FlowSpec {
                id: 0,
                src: NodeId(0),
                dst: NodeId(2),
                size_bits: 1e7,
                arrival: SimTime::ZERO,
            }],
            offered_bits: 1e7,
        };
        let sp = SinglePathStrategy;
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(10),
        };
        let clean = FlowSim::new(&topo, &sp, &w, cfg).run();
        assert_eq!(clean.completed_flows, 1);
        assert!(
            (clean.mean_fct_secs - 1.0).abs() < 0.01,
            "{}",
            clean.mean_fct_secs
        );

        // A 400 ms outage on the second hop stalls the flow for 400 ms.
        let outage =
            FaultPlan::link_outage(1, SimTime::from_millis(300), SimTime::from_millis(700))
                .unwrap();
        let faulted = FlowSim::new(&topo, &sp, &w, cfg)
            .with_faults(outage.clone())
            .run();
        assert_eq!(faulted.completed_flows, 1);
        assert!(
            (faulted.mean_fct_secs - 1.4).abs() < 0.01,
            "{}",
            faulted.mean_fct_secs
        );

        // Degrading to half capacity doubles the remaining drain time.
        let scale = FaultPlan::try_new(vec![FaultEvent {
            at: SimTime::from_millis(500),
            kind: FaultKind::CapacityScale {
                link: 0,
                fraction: 0.5,
            },
        }])
        .unwrap();
        let scaled = FlowSim::new(&topo, &sp, &w, cfg).with_faults(scale).run();
        assert!(
            (scaled.mean_fct_secs - 1.5).abs() < 0.01,
            "{}",
            scaled.mean_fct_secs
        );

        // A loss burst derates goodput to (1 - drop) of capacity.
        let burst = FaultPlan::try_new(vec![FaultEvent {
            at: SimTime::from_millis(100),
            kind: FaultKind::LossBurst {
                link: 1,
                drop_chance: 0.5,
                until: SimTime::from_millis(500),
            },
        }])
        .unwrap();
        let bursty = FlowSim::new(&topo, &sp, &w, cfg).with_faults(burst).run();
        assert!(
            (bursty.mean_fct_secs - 1.2).abs() < 0.01,
            "{}",
            bursty.mean_fct_secs
        );

        // A node crash downs every adjacent link; recovery restores them.
        let crash = FaultPlan::try_new(vec![
            FaultEvent {
                at: SimTime::from_millis(200),
                kind: FaultKind::NodeCrash { node: 1 },
            },
            FaultEvent {
                at: SimTime::from_millis(450),
                kind: FaultKind::NodeRecover { node: 1 },
            },
        ])
        .unwrap();
        let crashed = FlowSim::new(&topo, &sp, &w, cfg).with_faults(crash).run();
        assert!(
            (crashed.mean_fct_secs - 1.25).abs() < 0.01,
            "{}",
            crashed.mean_fct_secs
        );

        // Checkpointing mid-outage and restoring continues bit-identically.
        let mut fp_a = StreamFp::default();
        let straight = FlowSim::new(&topo, &sp, &w, cfg)
            .with_faults(outage.clone())
            .run_observed(&mut fp_a);
        let mut fp_b = StreamFp::default();
        let mut first = FlowSim::new(&topo, &sp, &w, cfg)
            .with_faults(outage.clone())
            .start();
        first.run_until(SimTime::from_millis(500), &mut fp_b);
        let mut wtr = SnapWriter::new();
        first.encode_checkpoint(&mut wtr);
        let bytes = wtr.into_bytes();
        drop(first);
        let second = FlowRun::restore(&topo, &sp, &w, outage.clone(), &mut SnapReader::new(&bytes))
            .expect("restores");
        let resumed = second.finish(&mut fp_b);
        assert_reports_identical(&straight, &resumed);
        assert_eq!(fp_a.0, fp_b.0, "resume changed the observer stream");
        // the restored run re-derives fault state canonically
        let third = FlowRun::restore(&topo, &sp, &w, outage, &mut SnapReader::new(&bytes))
            .expect("restores");
        let mut wtr2 = SnapWriter::new();
        third.encode_checkpoint(&mut wtr2);
        assert_eq!(bytes, wtr2.into_bytes());
    }

    #[test]
    fn report_now_snapshots_without_perturbing_the_run() {
        let topo = generate_isp(Isp::Vsnl, 5);
        let w = small_workload(&topo, 100.0, 2, 3);
        let sp = SinglePathStrategy;
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(10),
        };
        let straight = FlowSim::new(&topo, &sp, &w, cfg).run();
        let mut run = FlowSim::new(&topo, &sp, &w, cfg).start();
        run.run_until(SimTime::from_secs(1), &mut ());
        let snap = run.report_now();
        assert!(snap.arrived_flows > 0);
        assert!(snap.delivered_bits <= straight.delivered_bits);
        let end = run.finish(&mut ());
        assert_reports_identical(&straight, &end);
    }

    #[test]
    fn feed_streams_arrivals_into_a_live_run() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let w = Workload {
            flows: vec![FlowSpec {
                id: 0,
                src: n("1"),
                dst: n("4"),
                size_bits: 5e6,
                arrival: SimTime::ZERO,
            }],
            offered_bits: 5e6,
        };
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(30),
        };
        let fed_flow = FlowSpec {
            id: 1,
            src: n("1"),
            dst: n("3"),
            size_bits: 5e6,
            arrival: SimTime::from_secs(2),
        };

        let run_with_feed = |fp: &mut StreamFp| {
            let mut run = FlowSim::new(&topo, &inrp, &w, cfg).start();
            run.run_until(SimTime::from_secs(1), fp);
            run.feed(fed_flow.clone())
                .expect("arrival is in the future");
            run.finish(fp)
        };
        let mut fp_a = StreamFp::default();
        let a = run_with_feed(&mut fp_a);
        assert_eq!(a.arrived_flows, 2);
        assert_eq!(a.completed_flows, 2);

        // same feed schedule → bit-identical run
        let mut fp_b = StreamFp::default();
        let b = run_with_feed(&mut fp_b);
        assert_reports_identical(&a, &b);
        assert_eq!(fp_a.0, fp_b.0);

        // feeding into the past is rejected
        let mut run = FlowSim::new(&topo, &inrp, &w, cfg).start();
        run.run_until(SimTime::from_secs(5), &mut ());
        let mut stale = fed_flow.clone();
        stale.arrival = SimTime::from_secs(2);
        stale.id = 9;
        assert!(run.feed(stale).is_err());
    }

    #[test]
    fn checkpoint_survives_fed_flows() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let w = Workload {
            flows: vec![FlowSpec {
                id: 0,
                src: n("1"),
                dst: n("4"),
                size_bits: 8e6,
                arrival: SimTime::ZERO,
            }],
            offered_bits: 8e6,
        };
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(30),
        };
        // straight: feed at 1 s, run to completion
        let mut fp_a = StreamFp::default();
        let mut straight = FlowSim::new(&topo, &inrp, &w, cfg).start();
        straight.run_until(SimTime::from_secs(1), &mut fp_a);
        straight
            .feed(FlowSpec {
                id: 1,
                src: n("1"),
                dst: n("3"),
                size_bits: 8e6,
                arrival: SimTime::from_secs(2),
            })
            .unwrap();
        let a = straight.finish(&mut fp_a);

        // split: identical feed, checkpoint *between* feed and the fed
        // flow's arrival, restore, finish
        let mut fp_b = StreamFp::default();
        let mut head = FlowSim::new(&topo, &inrp, &w, cfg).start();
        head.run_until(SimTime::from_secs(1), &mut fp_b);
        head.feed(FlowSpec {
            id: 1,
            src: n("1"),
            dst: n("3"),
            size_bits: 8e6,
            arrival: SimTime::from_secs(2),
        })
        .unwrap();
        head.run_until(SimTime::from_millis(1_500), &mut fp_b);
        let mut wtr = SnapWriter::new();
        head.encode_checkpoint(&mut wtr);
        let bytes = wtr.into_bytes();
        let tail = FlowRun::restore(
            &topo,
            &inrp,
            &w,
            FaultPlan::empty(),
            &mut SnapReader::new(&bytes),
        )
        .expect("restores");
        let b = tail.finish(&mut fp_b);

        assert_reports_identical(&a, &b);
        assert_eq!(fp_a.0, fp_b.0, "fed-flow checkpoint changed the stream");
        assert_eq!(b.arrived_flows, 2);
        assert_eq!(b.completed_flows, 2);
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let topo = generate_isp(Isp::Vsnl, 5);
        let w = small_workload(&topo, 100.0, 2, 3);
        let sp = SinglePathStrategy;
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(10),
        };
        let mut run = FlowSim::new(&topo, &sp, &w, cfg).start();
        run.run_until(SimTime::from_secs(1), &mut ());
        let mut wtr = SnapWriter::new();
        run.encode_checkpoint(&mut wtr);
        let bytes = wtr.into_bytes();
        // any truncation must error, never panic or mis-decode
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                FlowRun::restore(
                    &topo,
                    &sp,
                    &w,
                    FaultPlan::empty(),
                    &mut SnapReader::new(&bytes[..cut])
                )
                .is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }
}
