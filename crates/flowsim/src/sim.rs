//! The fluid flow-level event loop.
//!
//! Between events the network is in a max-min equilibrium computed by the
//! incremental [`crate::engine`]; flows drain at their allocated rates,
//! integrated *exactly* over the inter-event interval (piecewise-linear
//! fluid model — no time-stepping error). Events are flow arrivals (from
//! the generated workload) and flow departures (when a flow's remaining
//! volume reaches zero at its current rate). Each event triggers a
//! re-allocation.
//!
//! Arrivals and departures update the engine's active set incrementally:
//! a flow's subpaths are resolved into the engine's arena once, at
//! arrival, and each event recomputes only the rate vectors — over
//! persistent scratch state, with no per-event path resolution or
//! allocation. The output is bit-identical to the original formulation
//! that re-ran the from-scratch reference allocator on every event (see
//! the [`crate::engine`] exactness contract).
//!
//! Departure scheduling uses the standard epoch trick: after every
//! re-allocation only the *earliest* predicted departure is scheduled,
//! tagged with the allocation epoch; stale events are ignored when they
//! fire. This keeps the event count at `O(arrivals + departures)`.

use inrpp_sim::event::{Control, Engine};
use inrpp_sim::metrics::JainIndex;
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_topology::graph::Topology;

use crate::engine::AllocEngine;
use crate::metrics::{FlowSimReport, WeightedCdf};
use crate::strategy::RoutingStrategy;
use crate::workload::{FlowSpec, Workload};

/// Streaming observer over the fluid event loop.
///
/// Every hook is called *during* the run, at the instant the event
/// happens, so time-resolved metrics can be collected without replaying
/// the simulation. All hooks default to no-ops; observers are purely
/// passive — the simulation's arithmetic is identical with or without
/// one (`FlowSim::run` is `run_observed(&mut ())`).
///
/// This is the flowsim-level substrate the `inrpp::session` probe API
/// adapts onto; use that facade unless you need raw engine access.
#[allow(unused_variables)]
pub trait FlowObserver {
    /// A flow arrived and was admitted with `subpaths` resolved subpaths.
    fn on_flow_start(&mut self, t: SimTime, spec: &FlowSpec, subpaths: usize) {}

    /// A flow arrived but no route exists between its endpoints.
    fn on_flow_unroutable(&mut self, t: SimTime, spec: &FlowSpec) {}

    /// A flow drained completely and left the network.
    fn on_flow_end(&mut self, t: SimTime, flow: u64, delivered_bits: f64, fct_secs: f64) {}

    /// A flow was still in flight when the horizon struck.
    fn on_flow_partial(&mut self, t: SimTime, flow: u64, delivered_bits: f64) {}

    /// A re-allocation just ran: `flows[i]` (ascending flow ids) now
    /// drains at `rates[i]` bits/s.
    fn on_allocation(&mut self, t: SimTime, flows: &[u64], rates: &[f64]) {}

    /// Fluid state was integrated up to `t`; `delivered_bits` is the
    /// cumulative volume delivered across all flows so far.
    fn on_sample(&mut self, t: SimTime, delivered_bits: f64) {}
}

/// The no-op observer (what [`FlowSim::run`] uses).
impl FlowObserver for () {}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSimConfig {
    /// Hard stop; flows still active at the horizon are credited with the
    /// bits delivered so far.
    pub horizon: SimDuration,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            horizon: SimDuration::from_secs(60),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    /// `(flow id, allocation epoch)` — ignored if the epoch is stale.
    Departure(u64, u64),
}

/// Per-flow bookkeeping, indexed by the engine's arena slot. The engine
/// owns the resolved subpaths; the simulator only needs the hop counts
/// (for the stretch CDF) and the drain state.
struct ActiveFlow {
    /// Hops of each subpath, preference order.
    subpath_hops: Vec<u32>,
    primary_hops: usize,
    size_bits: f64,
    remaining_bits: f64,
    /// bits delivered per subpath (for the stretch CDF)
    subpath_bits: Vec<f64>,
    arrival: SimTime,
}

/// The flow-level simulator. Construct with a topology, strategy and
/// workload; consume with [`FlowSim::run`].
pub struct FlowSim<'a> {
    topo: &'a Topology,
    strategy: &'a dyn RoutingStrategy,
    workload: &'a Workload,
    config: FlowSimConfig,
}

impl<'a> FlowSim<'a> {
    /// Bundle the inputs of one run.
    pub fn new(
        topo: &'a Topology,
        strategy: &'a dyn RoutingStrategy,
        workload: &'a Workload,
        config: FlowSimConfig,
    ) -> Self {
        FlowSim {
            topo,
            strategy,
            workload,
            config,
        }
    }

    /// Execute the run and produce the report.
    pub fn run(self) -> FlowSimReport {
        self.run_observed(&mut ())
    }

    /// Execute the run with a streaming [`FlowObserver`].
    ///
    /// The observer sees every arrival, departure, re-allocation and
    /// integration step as it happens; the produced report is
    /// bit-identical to an unobserved [`FlowSim::run`].
    pub fn run_observed(self, obs: &mut dyn FlowObserver) -> FlowSimReport {
        let horizon = SimTime::ZERO + self.config.horizon;
        let mut eng: Engine<Event> = Engine::new().with_horizon(horizon);
        for (i, f) in self.workload.flows.iter().enumerate() {
            eng.schedule_at(f.arrival, Event::Arrival(i))
                .expect("workload arrivals are within the window");
        }

        // The incremental allocation engine: subpaths resolve into its
        // arena at arrival; every event only recomputes the rate vectors.
        let mut alloc_engine = AllocEngine::new(self.topo);
        // Per-flow drain state, indexed by the engine's arena slot.
        let mut states: Vec<Option<ActiveFlow>> = Vec::new();
        // Whether the engine's rate vectors describe the current active
        // set (the analogue of the old `Option<Allocation>`).
        let mut alloc_valid = false;
        let mut epoch = 0u64;
        let mut last_update = SimTime::ZERO;

        let mut delivered_bits = 0.0;
        let mut offered_bits = 0.0;
        let mut arrived = 0usize;
        let mut completed = 0usize;
        let mut unroutable = 0usize;
        let mut fct_sum = 0.0;
        let mut fct_cdf = inrpp_sim::metrics::Cdf::new();
        let mut stretch = WeightedCdf::new();
        // time-weighted aggregates
        let mut jain_weighted = 0.0;
        let mut util_weighted = 0.0;
        let mut chan_weighted = vec![0.0f64; self.topo.link_count() * 2];
        let mut weighted_secs = 0.0;

        // Integrate the fluid system from `last_update` to `now`. The
        // engine's active set always equals the set the last allocation
        // ran over: inserts/removes happen *after* the advance for their
        // event.
        #[allow(clippy::too_many_arguments)]
        let advance = |now: SimTime,
                       last_update: &mut SimTime,
                       states: &mut Vec<Option<ActiveFlow>>,
                       alloc_engine: &AllocEngine,
                       alloc_valid: bool,
                       delivered_bits: &mut f64,
                       jain_weighted: &mut f64,
                       util_weighted: &mut f64,
                       chan_weighted: &mut [f64],
                       weighted_secs: &mut f64,
                       obs: &mut dyn FlowObserver| {
            let dt = now.saturating_duration_since(*last_update).as_secs_f64();
            *last_update = now;
            if dt <= 0.0 || !alloc_valid {
                return;
            }
            let rates = alloc_engine.flow_rates();
            for pos in 0..alloc_engine.len() {
                let Some(fl) = states[alloc_engine.slot_at(pos)].as_mut() else {
                    continue;
                };
                let got = (rates[pos] * dt).min(fl.remaining_bits);
                fl.remaining_bits -= got;
                *delivered_bits += got;
                // distribute onto subpaths proportionally to their rates
                let srates = alloc_engine.subpath_rates(pos);
                let total: f64 = srates.iter().sum();
                if total > 0.0 {
                    for (s, &r) in srates.iter().enumerate() {
                        fl.subpath_bits[s] += got * r / total;
                    }
                }
            }
            if let Some(j) = JainIndex::compute(rates) {
                *jain_weighted += j * dt;
                *util_weighted += alloc_engine.mean_utilisation() * dt;
                alloc_engine.accumulate_channel_utilisation(dt, chan_weighted);
                *weighted_secs += dt;
            }
            obs.on_sample(now, *delivered_bits);
        };

        // Re-allocate and schedule the earliest departure.
        let reallocate = |eng: &mut Engine<Event>,
                          now: SimTime,
                          alloc_engine: &mut AllocEngine,
                          states: &[Option<ActiveFlow>],
                          alloc_valid: &mut bool,
                          epoch: &mut u64,
                          obs: &mut dyn FlowObserver| {
            *epoch += 1;
            if alloc_engine.is_empty() {
                *alloc_valid = false;
                return;
            }
            alloc_engine.allocate();
            *alloc_valid = true;
            obs.on_allocation(now, alloc_engine.keys(), alloc_engine.flow_rates());
            // earliest departure under the new rates
            let rates = alloc_engine.flow_rates();
            let mut best: Option<(f64, u64)> = None;
            for (pos, &fid) in alloc_engine.keys().iter().enumerate() {
                let rate = rates[pos];
                if rate <= 0.0 {
                    continue;
                }
                let fl = states[alloc_engine.slot_at(pos)]
                    .as_ref()
                    .expect("engine and state slab agree on active slots");
                let eta = fl.remaining_bits / rate;
                if best.map_or(true, |(t, _)| eta < t) {
                    best = Some((eta, fid));
                }
            }
            if let Some((eta, fid)) = best {
                // +1 ns: over-wait past any float-to-nanosecond rounding so
                // the flow has definitely drained when the event fires (the
                // integrator clamps delivery at the remaining volume).
                eng.schedule(
                    SimDuration::from_secs_f64(eta.max(0.0)) + SimDuration::from_nanos(1),
                    Event::Departure(fid, *epoch),
                );
            }
        };

        let topo = self.topo;
        eng.run_with(|eng, now, ev| {
            match ev {
                Event::Arrival(idx) => {
                    advance(
                        now,
                        &mut last_update,
                        &mut states,
                        &alloc_engine,
                        alloc_valid,
                        &mut delivered_bits,
                        &mut jain_weighted,
                        &mut util_weighted,
                        &mut chan_weighted,
                        &mut weighted_secs,
                        obs,
                    );
                    let spec = &self.workload.flows[idx];
                    arrived += 1;
                    let paths = self.strategy.paths_for(topo, spec.src, spec.dst, spec.id);
                    if paths.is_empty() {
                        unroutable += 1;
                        obs.on_flow_unroutable(now, spec);
                        return Control::Continue;
                    }
                    offered_bits += spec.size_bits;
                    let primary_hops = paths[0].hops().max(1);
                    let subpath_hops: Vec<u32> = paths.iter().map(|p| p.hops() as u32).collect();
                    let n = paths.len();
                    let slot = alloc_engine
                        .insert(spec.id, &paths)
                        .unwrap_or_else(|e| panic!("flow {}: {e}", spec.id));
                    if states.len() <= slot {
                        states.resize_with(slot + 1, || None);
                    }
                    states[slot] = Some(ActiveFlow {
                        subpath_hops,
                        primary_hops,
                        size_bits: spec.size_bits,
                        remaining_bits: spec.size_bits,
                        subpath_bits: vec![0.0; n],
                        arrival: now,
                    });
                    obs.on_flow_start(now, spec, n);
                    reallocate(
                        eng,
                        now,
                        &mut alloc_engine,
                        &states,
                        &mut alloc_valid,
                        &mut epoch,
                        obs,
                    );
                }
                Event::Departure(fid, ev_epoch) => {
                    if ev_epoch != epoch {
                        return Control::Continue; // superseded schedule
                    }
                    advance(
                        now,
                        &mut last_update,
                        &mut states,
                        &alloc_engine,
                        alloc_valid,
                        &mut delivered_bits,
                        &mut jain_weighted,
                        &mut util_weighted,
                        &mut chan_weighted,
                        &mut weighted_secs,
                        obs,
                    );
                    if let Some(slot) = alloc_engine.remove(fid) {
                        let fl = states[slot]
                            .take()
                            .expect("engine and state slab agree on active slots");
                        debug_assert!(
                            fl.remaining_bits < 1.0,
                            "flow {fid} departed with {} bits left",
                            fl.remaining_bits
                        );
                        completed += 1;
                        let fct = now.duration_since(fl.arrival).as_secs_f64();
                        fct_sum += fct;
                        fct_cdf.record(fct);
                        obs.on_flow_end(now, fid, fl.size_bits - fl.remaining_bits, fct);
                        record_stretch(&mut stretch, &fl);
                    }
                    reallocate(
                        eng,
                        now,
                        &mut alloc_engine,
                        &states,
                        &mut alloc_valid,
                        &mut epoch,
                        obs,
                    );
                }
            }
            Control::Continue
        });

        // Horizon reached: integrate the final stretch of time and credit
        // partial deliveries.
        let end = horizon.min(eng.now().max(last_update));
        advance(
            end,
            &mut last_update,
            &mut states,
            &alloc_engine,
            alloc_valid,
            &mut delivered_bits,
            &mut jain_weighted,
            &mut util_weighted,
            &mut chan_weighted,
            &mut weighted_secs,
            obs,
        );
        for pos in 0..alloc_engine.len() {
            if let Some(fl) = &states[alloc_engine.slot_at(pos)] {
                obs.on_flow_partial(
                    end,
                    alloc_engine.keys()[pos],
                    fl.size_bits - fl.remaining_bits,
                );
                record_stretch(&mut stretch, fl);
            }
        }

        FlowSimReport {
            strategy: self.strategy.name().to_string(),
            topology: topo.name().to_string(),
            arrived_flows: arrived,
            completed_flows: completed,
            unroutable_flows: unroutable,
            offered_bits,
            delivered_bits,
            duration: self.config.horizon,
            mean_fct_secs: if completed > 0 {
                fct_sum / completed as f64
            } else {
                0.0
            },
            fct_cdf,
            stretch,
            mean_jain: if weighted_secs > 0.0 {
                jain_weighted / weighted_secs
            } else {
                0.0
            },
            mean_utilisation: if weighted_secs > 0.0 {
                util_weighted / weighted_secs
            } else {
                0.0
            },
            channel_utilisation: if weighted_secs > 0.0 {
                chan_weighted.iter().map(|w| w / weighted_secs).collect()
            } else {
                chan_weighted
            },
        }
    }
}

fn record_stretch(stretch: &mut WeightedCdf, fl: &ActiveFlow) {
    for (s, &bits) in fl.subpath_bits.iter().enumerate() {
        if bits > 0.0 {
            let st = fl.subpath_hops[s] as f64 / fl.primary_hops as f64;
            stretch.record(st, bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{EcmpStrategy, InrpStrategy, SinglePathStrategy};
    use crate::workload::{PairSelector, WorkloadConfig};
    use inrpp_sim::units::Rate;
    use inrpp_topology::rocketfuel::{generate_isp, Isp};

    fn small_workload(topo: &Topology, rate: f64, secs: u64, seed: u64) -> Workload {
        Workload::generate(
            topo,
            &WorkloadConfig {
                arrival_rate: rate,
                mean_size_bits: 2e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(secs),
            seed,
        )
    }

    #[test]
    fn light_load_delivers_everything() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 5.0, 5, 42);
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(60),
            },
        )
        .run();
        assert_eq!(report.arrived_flows, w.len());
        assert_eq!(report.completed_flows + report.unroutable_flows, w.len());
        assert!(
            (report.throughput() - 1.0).abs() < 1e-6,
            "throughput {} under light load",
            report.throughput()
        );
        assert!(report.mean_fct_secs > 0.0);
        assert!(report.mean_jain > 0.0);
    }

    #[test]
    fn conservation_delivered_never_exceeds_offered() {
        let topo = generate_isp(Isp::Vsnl, 2);
        let w = small_workload(&topo, 400.0, 3, 7);
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(4),
            },
        )
        .run();
        assert!(report.delivered_bits <= report.offered_bits * (1.0 + 1e-9));
        assert!(report.throughput() <= 1.0 + 1e-9);
    }

    #[test]
    fn overload_throughput_below_one() {
        let topo = generate_isp(Isp::Vsnl, 3);
        // brutal overload: many big flows, short horizon
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 2000.0,
                mean_size_bits: 20e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(2),
            5,
        );
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(3),
            },
        )
        .run();
        assert!(
            report.throughput() < 0.9,
            "expected clear overload, got {}",
            report.throughput()
        );
    }

    #[test]
    fn inrp_beats_sp_under_congestion() {
        // The Fig. 4a headline: URP carries more than SP on the same
        // workload once links saturate. Capacities are scaled down so the
        // workload genuinely overloads the core, and the horizon equals the
        // arrival window so unfinished traffic counts against throughput.
        use inrpp_topology::rocketfuel::{generate_with_capacities, CapacityPlan, Isp};
        let plan = CapacityPlan {
            core: Rate::mbps(1000.0),
            metro: Rate::mbps(500.0),
            stub: Rate::mbps(200.0),
        };
        let topo = generate_with_capacities(&Isp::Exodus.profile(), 1221, plan);
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 120.0,
                mean_size_bits: 150e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(3),
            1221,
        );
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(3),
        };
        let sp = SinglePathStrategy;
        let inrp = InrpStrategy::with_defaults(&topo);
        let r_sp = FlowSim::new(&topo, &sp, &w, cfg).run();
        let r_inrp = FlowSim::new(&topo, &inrp, &w, cfg).run();
        assert!(
            r_sp.throughput() < 0.95,
            "workload must overload SP, got {}",
            r_sp.throughput()
        );
        assert!(
            r_inrp.throughput() > r_sp.throughput() * 1.02,
            "URP {} must clearly beat SP {}",
            r_inrp.throughput(),
            r_sp.throughput()
        );
    }

    #[test]
    fn stretch_cdf_starts_at_one_for_sp() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 50.0, 3, 3);
        let sp = SinglePathStrategy;
        let mut report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(30),
            },
        )
        .run();
        // single-path flows can never stretch
        assert!((report.stretch.fraction_le(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inrp_stretch_stays_modest() {
        let topo = generate_isp(Isp::Tiscali, 1221);
        let w = Workload::generate(
            &topo,
            &WorkloadConfig {
                arrival_rate: 300.0,
                mean_size_bits: 30e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            },
            SimDuration::from_secs(3),
            9,
        );
        let inrp = InrpStrategy::with_defaults(&topo);
        let mut report = FlowSim::new(
            &topo,
            &inrp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(5),
            },
        )
        .run();
        // Fig. 4b: at least half the traffic rides the original path...
        assert!(
            report.stretch.fraction_le(1.0) > 0.5,
            "mass at stretch 1.0: {}",
            report.stretch.fraction_le(1.0)
        );
        // ...and stretched traffic stays within ~2x
        assert!(report.stretch.quantile(0.99).unwrap() <= 2.0);
    }

    #[test]
    fn ecmp_runs_and_reports() {
        let topo = generate_isp(Isp::Vsnl, 1);
        let w = small_workload(&topo, 50.0, 2, 17);
        let ecmp = EcmpStrategy::default();
        let report = FlowSim::new(
            &topo,
            &ecmp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(20),
            },
        )
        .run();
        assert_eq!(report.strategy, "ECMP");
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = generate_isp(Isp::Vsnl, 5);
        let w = small_workload(&topo, 100.0, 2, 5);
        let inrp = InrpStrategy::with_defaults(&topo);
        let cfg = FlowSimConfig {
            horizon: SimDuration::from_secs(10),
        };
        let a = FlowSim::new(&topo, &inrp, &w, cfg).run();
        let b = FlowSim::new(&topo, &inrp, &w, cfg).run();
        assert_eq!(a.delivered_bits, b.delivered_bits);
        assert_eq!(a.completed_flows, b.completed_flows);
        assert_eq!(a.mean_jain, b.mean_jain);
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let topo = Topology::fig3();
        let w = Workload {
            flows: Vec::new(),
            offered_bits: 0.0,
        };
        let sp = SinglePathStrategy;
        let report = FlowSim::new(
            &topo,
            &sp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(1),
            },
        )
        .run();
        assert_eq!(report.arrived_flows, 0);
        assert_eq!(report.throughput(), 0.0);
    }

    #[test]
    fn fig3_static_scenario_through_simulator() {
        // Two long flows starting together on the Fig. 3 network: with the
        // INRP strategy both should progress at ~5 Mbps.
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let flows = vec![
            crate::workload::FlowSpec {
                id: 0,
                src: n("1"),
                dst: n("4"),
                size_bits: 5e6 * 10.0, // 10 s at 5 Mbps
                arrival: SimTime::ZERO,
            },
            crate::workload::FlowSpec {
                id: 1,
                src: n("1"),
                dst: n("3"),
                size_bits: 5e6 * 10.0,
                arrival: SimTime::ZERO,
            },
        ];
        let w = Workload {
            offered_bits: flows.iter().map(|f| f.size_bits).sum(),
            flows,
        };
        let inrp = InrpStrategy::with_defaults(&topo);
        let report = FlowSim::new(
            &topo,
            &inrp,
            &w,
            FlowSimConfig {
                horizon: SimDuration::from_secs(11),
            },
        )
        .run();
        assert_eq!(report.completed_flows, 2);
        assert!(
            (report.mean_jain - 1.0).abs() < 1e-6,
            "jain {}",
            report.mean_jain
        );
        assert!((report.mean_fct_secs - 10.0).abs() < 0.1);
        let _ = Rate::ZERO; // keep the import exercised on all feature sets
    }
}
