//! Flow-level metrics: weighted CDFs and the per-run report.

use inrpp_sim::metrics::{sort_weighted_samples, Cdf};
use inrpp_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::SimDuration;

/// Empirical CDF over weighted samples.
///
/// Fig. 4b's path-stretch CDF weights each subpath's stretch by the traffic
/// it carried — a plain sample CDF would over-represent barely-used detours.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedCdf {
    samples: Vec<(f64, f64)>,
    total_weight: f64,
    sorted: bool,
}

impl WeightedCdf {
    /// An empty CDF.
    pub fn new() -> Self {
        WeightedCdf {
            samples: Vec::new(),
            total_weight: 0.0,
            sorted: true,
        }
    }

    /// Record `value` carrying `weight` (non-positive weights are
    /// ignored). A NaN *value* is tolerated — it sorts after every
    /// finite value (see [`sort_weighted_samples`]) so one degenerate
    /// stretch sample cannot crash a long run's quantile queries.
    pub fn record(&mut self, value: f64, weight: f64) {
        if weight <= 0.0 || !weight.is_finite() {
            return;
        }
        self.samples.push((value, weight));
        self.total_weight += weight;
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            sort_weighted_samples(&mut self.samples);
            self.sorted = true;
        }
    }

    /// Weighted fraction of mass at values `<= x`.
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        self.ensure_sorted();
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            // NaN compares unordered (`partial_cmp` is `None`), and NaN
            // mass must not be counted as `<= x`.
            if !v.partial_cmp(&x).is_some_and(|o| o.is_le()) {
                break;
            }
            acc += w;
        }
        acc / self.total_weight
    }

    /// Weighted `q`-quantile. `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let target = q * self.total_weight;
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            acc += w;
            if acc >= target {
                return Some(v);
            }
        }
        Some(self.samples.last().expect("non-empty").0)
    }

    /// `(x, F(x))` step points, deduplicated on x, for plotting.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            acc += w;
            let f = acc / self.total_weight;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = f,
                _ => out.push((v, f)),
            }
        }
        out
    }

    /// Weighted mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        self.samples.iter().map(|&(v, w)| v * w).sum::<f64>() / self.total_weight
    }

    /// Merge another CDF into this one.
    pub fn merge(&mut self, other: &WeightedCdf) {
        self.samples.extend_from_slice(&other.samples);
        self.total_weight += other.total_weight;
        self.sorted = false;
    }
}

impl Snap for WeightedCdf {
    fn encode(&self, w: &mut SnapWriter) {
        self.samples.encode(w);
        w.put_f64(self.total_weight);
        w.put_bool(self.sorted);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(WeightedCdf {
            samples: Vec::<(f64, f64)>::decode(r)?,
            total_weight: r.get_f64()?,
            sorted: r.get_bool()?,
        })
    }
}

/// Result of one flow-level simulation run.
#[derive(Debug, Clone)]
pub struct FlowSimReport {
    /// Strategy display name.
    pub strategy: String,
    /// Topology display name.
    pub topology: String,
    /// Flows that arrived within the window.
    pub arrived_flows: usize,
    /// Flows that completed before the horizon.
    pub completed_flows: usize,
    /// Flows with no route.
    pub unroutable_flows: usize,
    /// Total bits offered by arrived flows.
    pub offered_bits: f64,
    /// Total bits actually delivered (including partial flows).
    pub delivered_bits: f64,
    /// Wall-clock length of the simulated window.
    pub duration: SimDuration,
    /// Mean flow completion time over completed flows, seconds.
    pub mean_fct_secs: f64,
    /// Full FCT distribution over completed flows, seconds.
    pub fct_cdf: Cdf,
    /// Traffic-weighted path-stretch CDF (Fig. 4b).
    pub stretch: WeightedCdf,
    /// Time-weighted mean of Jain's fairness index across active flows.
    pub mean_jain: f64,
    /// Time-weighted mean utilisation across directed channels.
    pub mean_utilisation: f64,
    /// Time-weighted utilisation per directed channel
    /// (index = `link.idx() * 2 + direction`).
    pub channel_utilisation: Vec<f64>,
}

impl FlowSimReport {
    /// Normalised network throughput: delivered / offered (Fig. 4a metric).
    pub fn throughput(&self) -> f64 {
        if self.offered_bits <= 0.0 {
            0.0
        } else {
            self.delivered_bits / self.offered_bits
        }
    }

    /// Delivered bits per second of simulated time.
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered_bits / secs
        }
    }

    /// FCT quantile in seconds over completed flows (`None` when nothing
    /// completed).
    pub fn fct_quantile(&mut self, q: f64) -> Option<f64> {
        self.fct_cdf.quantile(q)
    }

    /// The `n` busiest directed channels as `(channel index, utilisation)`,
    /// hottest first. Channel index decodes as `link = idx / 2`,
    /// `direction = idx % 2` (0 = the link's `a -> b` direction).
    pub fn hottest_channels(&self, n: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .channel_utilisation
            .iter()
            .copied()
            .enumerate()
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<5} on {:<14} thr={:.3} util={:.3} jain={:.3} fct={:.3}s done={}/{}",
            self.strategy,
            self.topology,
            self.throughput(),
            self.mean_utilisation,
            self.mean_jain,
            self.mean_fct_secs,
            self.completed_flows,
            self.arrived_flows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cdf_basic() {
        let mut c = WeightedCdf::new();
        c.record(1.0, 3.0);
        c.record(2.0, 1.0);
        assert_eq!(c.count(), 2);
        assert!((c.total_weight() - 4.0).abs() < 1e-12);
        assert!((c.fraction_le(1.0) - 0.75).abs() < 1e-12);
        assert!((c.fraction_le(0.5) - 0.0).abs() < 1e-12);
        assert!((c.fraction_le(2.0) - 1.0).abs() < 1e-12);
        assert!((c.mean() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_quantiles() {
        let mut c = WeightedCdf::new();
        c.record(10.0, 1.0);
        c.record(20.0, 1.0);
        c.record(30.0, 2.0);
        assert_eq!(c.quantile(0.25), Some(10.0));
        assert_eq!(c.quantile(0.5), Some(20.0));
        assert_eq!(c.quantile(1.0), Some(30.0));
        assert_eq!(c.quantile(0.9), Some(30.0));
    }

    #[test]
    fn zero_or_negative_weights_ignored() {
        let mut c = WeightedCdf::new();
        c.record(1.0, 0.0);
        c.record(2.0, -5.0);
        c.record(3.0, f64::NAN);
        assert_eq!(c.count(), 0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_le(10.0), 0.0);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn nan_values_do_not_panic_quantiles() {
        // Regression: the sort comparator used partial_cmp().expect(),
        // so one NaN-valued sample panicked every quantile query. The
        // shared total_cmp sort puts NaN last; finite quantiles stay
        // exact and only the extreme tail surfaces the NaN.
        let mut c = WeightedCdf::new();
        c.record(f64::NAN, 1.0);
        c.record(1.0, 1.0);
        c.record(2.0, 2.0);
        assert_eq!(c.quantile(0.25), Some(1.0));
        assert_eq!(c.quantile(0.75), Some(2.0));
        assert!(c.quantile(1.0).unwrap().is_nan());
        assert!((c.fraction_le(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_cdf_snap_roundtrip() {
        use inrpp_sim::snap::{Snap, SnapReader, SnapWriter};
        let mut c = WeightedCdf::new();
        c.record(2.0, 1.0);
        c.record(1.0, 3.0);
        let mut w = SnapWriter::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let back = WeightedCdf::decode(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn points_accumulate_and_dedup() {
        let mut c = WeightedCdf::new();
        c.record(1.0, 1.0);
        c.record(1.0, 1.0);
        c.record(1.5, 2.0);
        let pts = c.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 0.5).abs() < 1e-12);
        assert!((pts[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_mass() {
        let mut a = WeightedCdf::new();
        a.record(1.0, 1.0);
        let mut b = WeightedCdf::new();
        b.record(3.0, 3.0);
        a.merge(&b);
        assert!((a.fraction_le(1.0) - 0.25).abs() < 1e-12);
        assert_eq!(a.count(), 2);
    }

    fn sample_report() -> FlowSimReport {
        let mut fct_cdf = Cdf::new();
        fct_cdf.extend([0.2, 0.5, 0.8]);
        FlowSimReport {
            strategy: "SP".into(),
            topology: "t".into(),
            arrived_flows: 10,
            completed_flows: 8,
            unroutable_flows: 0,
            offered_bits: 100.0,
            delivered_bits: 75.0,
            duration: SimDuration::from_secs(5),
            mean_fct_secs: 0.5,
            fct_cdf,
            stretch: WeightedCdf::new(),
            mean_jain: 0.9,
            mean_utilisation: 0.4,
            channel_utilisation: vec![0.1, 0.9, 0.5, 0.9],
        }
    }

    #[test]
    fn report_throughput_and_goodput() {
        let r = sample_report();
        assert!((r.throughput() - 0.75).abs() < 1e-12);
        assert!((r.goodput_bps() - 15.0).abs() < 1e-12);
        assert!(r.summary().contains("SP"));
    }

    #[test]
    fn report_fct_quantiles() {
        let mut r = sample_report();
        assert_eq!(r.fct_quantile(0.5), Some(0.5));
        assert_eq!(r.fct_quantile(1.0), Some(0.8));
    }

    #[test]
    fn hottest_channels_sorted_and_truncated() {
        let r = sample_report();
        let hot = r.hottest_channels(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0], (1, 0.9));
        assert_eq!(hot[1], (3, 0.9), "ties break by channel index");
        assert_eq!(hot[2], (2, 0.5));
        assert!(r.hottest_channels(100).len() == 4);
    }
}
