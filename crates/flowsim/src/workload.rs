//! Workload generation: Poisson flow arrivals between sampled node pairs.
//!
//! Fig. 4's setup is "flows arrive Poisson distributed"; sizes and endpoint
//! selection are not pinned down in the paper, so the generator exposes
//! them as knobs with defaults documented in `EXPERIMENTS.md`: exponential
//! flow sizes (mean 25 Mbit) between uniformly random distinct node pairs.
//!
//! The scenario catalog adds two orthogonal axes on top:
//!
//! * [`ArrivalProfile`] — time-varying arrival intensity (flash-crowd step,
//!   diurnal sinusoid), realised by thinning a homogeneous Poisson process
//!   at the peak rate so determinism and exactness are preserved;
//! * [`SizeProfile`] — flow-size law (exponential, heavy-tailed bounded
//!   Pareto, or a bimodal elastic + constant-rate mix).

use std::fmt;

use inrpp_sim::dist::{BoundedPareto, Discrete, Distribution, Exponential, PoissonProcess};
use inrpp_sim::rng::SimRng;
use inrpp_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_topology::graph::{NodeId, Tier, Topology};

/// One flow to be injected into the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Dense flow index (also used as the ECMP hash key).
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow size in bits.
    pub size_bits: f64,
    /// Arrival instant.
    pub arrival: SimTime,
}

impl Snap for FlowSpec {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_f64(self.size_bits);
        self.arrival.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowSpec {
            id: r.get_u64()?,
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            size_bits: r.get_f64()?,
            arrival: SimTime::decode(r)?,
        })
    }
}

/// How to sample `(src, dst)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PairSelector {
    /// Uniformly random distinct node pair.
    #[default]
    Uniform,
    /// Uniformly random pair of *edge-tier* nodes (falls back to uniform
    /// when the topology has fewer than two edge nodes).
    EdgeToEdge,
    /// All flows converge on one hotspot destination (stress pattern).
    Hotspot(NodeId),
    /// Gravity model: endpoint probability proportional to
    /// `degree^exponent` — hubs attract traffic, the classic ISP traffic
    /// matrix shape. `exponent = 0` degenerates to uniform.
    Gravity {
        /// Degree exponent (1.0 = plain gravity).
        exponent: f64,
    },
}

/// Time profile of the arrival intensity over the generation window.
///
/// The instantaneous arrival rate is `arrival_rate * factor_at(t / T)`
/// where `T` is the window length; `Steady` keeps the classic homogeneous
/// Poisson process. Non-homogeneous profiles are realised by *thinning*: a
/// homogeneous process runs at the profile's peak rate and each arrival is
/// kept with probability `factor_at / peak`, which samples the exact
/// non-homogeneous law deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalProfile {
    /// Homogeneous Poisson at `arrival_rate` (the Fig. 4 setup).
    #[default]
    Steady,
    /// Flash crowd: base rate until `onset` (fraction of the window in
    /// `[0, 1)`), then a step to `magnitude >= 1` times the base rate.
    FlashCrowd {
        /// Step instant as a fraction of the window.
        onset: f64,
        /// Rate multiplier after the step.
        magnitude: f64,
    },
    /// Diurnal modulation: `rate(t) = base * (1 + amplitude * sin(2π *
    /// cycles * t / T))`, with `amplitude` in `[0, 1)` so the rate stays
    /// positive.
    Diurnal {
        /// Whole modulation periods across the window.
        cycles: f64,
        /// Relative swing around the base rate.
        amplitude: f64,
    },
}

impl ArrivalProfile {
    /// Intensity multiplier at `frac` (elapsed fraction of the window).
    pub fn factor_at(&self, frac: f64) -> f64 {
        match *self {
            ArrivalProfile::Steady => 1.0,
            ArrivalProfile::FlashCrowd { onset, magnitude } => {
                if frac >= onset {
                    magnitude
                } else {
                    1.0
                }
            }
            ArrivalProfile::Diurnal { cycles, amplitude } => {
                1.0 + amplitude * (std::f64::consts::TAU * cycles * frac).sin()
            }
        }
    }

    /// The largest multiplier the profile can reach (thinning envelope).
    pub fn peak_factor(&self) -> f64 {
        match *self {
            ArrivalProfile::Steady => 1.0,
            ArrivalProfile::FlashCrowd { magnitude, .. } => magnitude.max(1.0),
            ArrivalProfile::Diurnal { amplitude, .. } => 1.0 + amplitude,
        }
    }

    /// The window-averaged multiplier — what to divide a target offered
    /// load by when calibrating the base rate.
    pub fn mean_factor(&self) -> f64 {
        match *self {
            ArrivalProfile::Steady => 1.0,
            ArrivalProfile::FlashCrowd { onset, magnitude } => {
                let onset = onset.clamp(0.0, 1.0);
                onset + (1.0 - onset) * magnitude.max(1.0)
            }
            // exact sine integral: whole cycles reduce to 1, fractional
            // cycles keep the residual half-wave's mass
            ArrivalProfile::Diurnal { cycles, amplitude } => {
                let w = std::f64::consts::TAU * cycles;
                1.0 + amplitude * (1.0 - w.cos()) / w
            }
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ArrivalProfile::Steady => Ok(()),
            ArrivalProfile::FlashCrowd { onset, magnitude } => {
                if !(0.0..1.0).contains(&onset) || !magnitude.is_finite() || magnitude < 1.0 {
                    Err(WorkloadError::InvalidProfile(format!(
                        "flash crowd needs onset in [0, 1) and magnitude >= 1, \
                         got onset {onset}, magnitude {magnitude}"
                    )))
                } else {
                    Ok(())
                }
            }
            ArrivalProfile::Diurnal { cycles, amplitude } => {
                if !(0.0..1.0).contains(&amplitude) || !cycles.is_finite() || cycles <= 0.0 {
                    Err(WorkloadError::InvalidProfile(format!(
                        "diurnal needs cycles > 0 and amplitude in [0, 1), \
                         got cycles {cycles}, amplitude {amplitude}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Flow-size law. Every variant is calibrated so the *mean* size equals
/// `WorkloadConfig::mean_size_bits` — profiles reshape the distribution,
/// not the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SizeProfile {
    /// Exponential sizes (the default, memoryless).
    #[default]
    Exponential,
    /// Heavy-tailed sizes: bounded Pareto with the given shape, truncated
    /// at 1000× its scale (mice-and-elephants, the CDN regime).
    HeavyTail {
        /// Pareto shape `α > 1` keeps the mean finite before truncation;
        /// the bound makes any positive shape usable.
        shape: f64,
    },
    /// Mixed elastic + constant-rate traffic: with probability
    /// `bulk_frac` a flow is a fixed-size "CBR-like" stream of
    /// `bulk_factor × mean` bits (a constant-rate source of rate ρ held
    /// for H seconds is ρ·H bits at the fluid level); the remaining flows
    /// are elastic with exponential sizes whose mean is adjusted so the
    /// mixture mean stays at `mean_size_bits`.
    Mixed {
        /// Fraction of constant-rate flows, in `(0, 1)`.
        bulk_frac: f64,
        /// Constant-rate flow size as a multiple of the mixture mean;
        /// must satisfy `bulk_frac * bulk_factor < 1`.
        bulk_factor: f64,
    },
}

impl SizeProfile {
    fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            SizeProfile::Exponential => Ok(()),
            SizeProfile::HeavyTail { shape } => {
                if !shape.is_finite() || shape <= 0.0 {
                    Err(WorkloadError::InvalidProfile(format!(
                        "heavy-tail shape must be positive, got {shape}"
                    )))
                } else {
                    Ok(())
                }
            }
            SizeProfile::Mixed {
                bulk_frac,
                bulk_factor,
            } => {
                if !(0.0..1.0).contains(&bulk_frac)
                    || bulk_frac <= 0.0
                    || !bulk_factor.is_finite()
                    || bulk_factor <= 0.0
                    || bulk_frac * bulk_factor >= 1.0
                {
                    Err(WorkloadError::InvalidProfile(format!(
                        "mixed profile needs bulk_frac in (0, 1) and \
                         bulk_frac * bulk_factor < 1, got {bulk_frac} x {bulk_factor}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Per-flow size sampler compiled from a [`SizeProfile`].
enum SizeSampler {
    Exponential(Exponential),
    HeavyTail(BoundedPareto),
    Mixed {
        bulk_frac: f64,
        bulk_bits: f64,
        elastic: Exponential,
    },
}

impl SizeSampler {
    /// Pareto truncation point as a multiple of the scale.
    const HEAVY_TAIL_CAP: f64 = 1000.0;

    fn build(profile: SizeProfile, mean_bits: f64) -> Result<SizeSampler, WorkloadError> {
        profile.validate()?;
        Ok(match profile {
            SizeProfile::Exponential => SizeSampler::Exponential(
                Exponential::with_mean(mean_bits).expect("mean validated by caller"),
            ),
            SizeProfile::HeavyTail { shape } => {
                // unit-scale mean of the truncated law → solve for the scale
                let unit = BoundedPareto::new(1.0, shape, Self::HEAVY_TAIL_CAP)
                    .expect("validated shape")
                    .mean()
                    .expect("bounded Pareto always has a mean");
                let scale = mean_bits / unit;
                SizeSampler::HeavyTail(
                    BoundedPareto::new(scale, shape, scale * Self::HEAVY_TAIL_CAP)
                        .expect("positive scale"),
                )
            }
            SizeProfile::Mixed {
                bulk_frac,
                bulk_factor,
            } => {
                let bulk_bits = bulk_factor * mean_bits;
                // preserve the mixture mean: f·c + (1-f)·m_e = mean
                let elastic_mean = mean_bits * (1.0 - bulk_frac * bulk_factor) / (1.0 - bulk_frac);
                SizeSampler::Mixed {
                    bulk_frac,
                    bulk_bits,
                    elastic: Exponential::with_mean(elastic_mean)
                        .expect("validate() keeps the elastic mean positive"),
                }
            }
        })
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            SizeSampler::Exponential(e) => e.sample(rng),
            SizeSampler::HeavyTail(p) => p.sample(rng),
            SizeSampler::Mixed {
                bulk_frac,
                bulk_bits,
                elastic,
            } => {
                if rng.chance(*bulk_frac) {
                    *bulk_bits
                } else {
                    elastic.sample(rng)
                }
            }
        }
    }
}

/// Why a workload could not be generated.
///
/// The dangerous failure mode is the *silent* one: a zero offered load or
/// a one-node topology used to yield an empty workload, which downstream
/// sweeps would report as a vacuous run. [`Workload::try_generate`]
/// rejects those inputs with a typed error instead.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Fewer than two nodes — no (src, dst) pair exists.
    TooFewNodes(usize),
    /// `arrival_rate` was zero, negative, or non-finite.
    NonPositiveArrivalRate(f64),
    /// `mean_size_bits` was zero, negative, or non-finite.
    NonPositiveMeanSize(f64),
    /// A profile parameter was out of range (details in the message).
    InvalidProfile(String),
    /// The window produced no flows at all (zero offered load) — e.g. a
    /// zero-length duration.
    EmptyWorkload,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::TooFewNodes(n) => {
                write!(
                    f,
                    "workload needs at least two nodes to pick pairs, got {n}"
                )
            }
            WorkloadError::NonPositiveArrivalRate(r) => {
                write!(f, "arrival rate must be positive, got {r}")
            }
            WorkloadError::NonPositiveMeanSize(s) => {
                write!(f, "mean flow size must be positive, got {s}")
            }
            WorkloadError::InvalidProfile(msg) => write!(f, "invalid traffic profile: {msg}"),
            WorkloadError::EmptyWorkload => {
                write!(
                    f,
                    "generation window produced zero flows (zero offered load)"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Mean flow arrivals per second (the *base* rate an
    /// [`ArrivalProfile`] modulates).
    pub arrival_rate: f64,
    /// Mean flow size in bits (every [`SizeProfile`] is calibrated to
    /// this mean).
    pub mean_size_bits: f64,
    /// Endpoint sampling policy.
    pub pairs: PairSelector,
    /// Arrival-intensity time profile.
    pub arrivals: ArrivalProfile,
    /// Flow-size law.
    pub sizes: SizeProfile,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            arrival_rate: 100.0,
            mean_size_bits: 25e6,
            pairs: PairSelector::Uniform,
            arrivals: ArrivalProfile::Steady,
            sizes: SizeProfile::Exponential,
        }
    }
}

/// A generated, arrival-ordered list of flows.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Flows sorted by arrival time.
    pub flows: Vec<FlowSpec>,
    /// Total offered bits.
    pub offered_bits: f64,
}

impl Workload {
    /// Generate flows over `[0, duration)`.
    ///
    /// Convenience wrapper over [`Workload::try_generate`] for callers
    /// whose inputs are known-good (calibrated experiment configs).
    ///
    /// # Panics
    /// Panics on any [`WorkloadError`] — fewer than two nodes,
    /// non-positive rates, invalid profiles, or a window that produces
    /// zero flows.
    pub fn generate(
        topo: &Topology,
        cfg: &WorkloadConfig,
        duration: SimDuration,
        seed: u64,
    ) -> Workload {
        Workload::try_generate(topo, cfg, duration, seed)
            .unwrap_or_else(|e| panic!("workload generation failed: {e}"))
    }

    /// Generate flows over `[0, duration)`, rejecting degenerate inputs
    /// with a typed error instead of an empty workload.
    ///
    /// ```
    /// use inrpp_flowsim::workload::{Workload, WorkloadConfig, WorkloadError};
    /// use inrpp_sim::time::SimDuration;
    /// use inrpp_sim::units::Rate;
    /// use inrpp_topology::Topology;
    ///
    /// let topo = Topology::line(3, Rate::mbps(10.0), SimDuration::from_millis(1));
    /// let w = Workload::try_generate(
    ///     &topo, &WorkloadConfig::default(), SimDuration::from_secs(1), 7,
    /// ).unwrap();
    /// assert!(!w.is_empty());
    ///
    /// let mut one = Topology::new("one");
    /// one.add_node();
    /// let err = Workload::try_generate(
    ///     &one, &WorkloadConfig::default(), SimDuration::from_secs(1), 7,
    /// ).unwrap_err();
    /// assert_eq!(err, WorkloadError::TooFewNodes(1));
    /// ```
    pub fn try_generate(
        topo: &Topology,
        cfg: &WorkloadConfig,
        duration: SimDuration,
        seed: u64,
    ) -> Result<Workload, WorkloadError> {
        if topo.node_count() < 2 {
            return Err(WorkloadError::TooFewNodes(topo.node_count()));
        }
        if !cfg.arrival_rate.is_finite() || cfg.arrival_rate <= 0.0 {
            return Err(WorkloadError::NonPositiveArrivalRate(cfg.arrival_rate));
        }
        if !cfg.mean_size_bits.is_finite() || cfg.mean_size_bits <= 0.0 {
            return Err(WorkloadError::NonPositiveMeanSize(cfg.mean_size_bits));
        }
        cfg.arrivals.validate()?;
        let sizes = SizeSampler::build(cfg.sizes, cfg.mean_size_bits)?;
        // thinning envelope: run the homogeneous process at the peak rate
        let peak = cfg.arrivals.peak_factor();
        let arrivals = PoissonProcess::new(cfg.arrival_rate * peak)
            .expect("rate and peak factor validated above");
        let window_secs = duration.as_secs_f64();
        let mut rng = SimRng::from_seed_u64(seed).derive(0xF10F);

        // Candidate endpoints, fixed up front for determinism.
        let edge_nodes: Vec<NodeId> = topo
            .node_ids()
            .filter(|&n| topo.node(n).tier == Tier::Edge)
            .collect();
        let all_nodes: Vec<NodeId> = topo.node_ids().collect();
        let pool: &[NodeId] = match cfg.pairs {
            PairSelector::EdgeToEdge if edge_nodes.len() >= 2 => &edge_nodes,
            _ => &all_nodes,
        };
        // gravity sampling: degree^exponent weights over the pool
        let gravity = match cfg.pairs {
            PairSelector::Gravity { exponent } => {
                let weights: Vec<f64> = pool
                    .iter()
                    .map(|&n| (topo.degree(n).max(1) as f64).powf(exponent))
                    .collect();
                Some(Discrete::new(&weights).expect("degrees are positive"))
            }
            _ => None,
        };

        let mut flows = Vec::new();
        let mut offered_bits = 0.0;
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        loop {
            t += arrivals.next_gap(&mut rng);
            if t.duration_since(SimTime::ZERO) >= duration {
                break;
            }
            // thinning: accept with probability factor(t)/peak. For the
            // steady profile the ratio is exactly 1, which `chance` short-
            // circuits without consuming randomness — pre-profile streams
            // stay byte-identical.
            let frac = t.duration_since(SimTime::ZERO).as_secs_f64() / window_secs;
            if !rng.chance(cfg.arrivals.factor_at(frac) / peak) {
                continue;
            }
            let (src, dst) = match cfg.pairs {
                PairSelector::Hotspot(h) => {
                    let mut s = *rng.pick(pool);
                    while s == h {
                        s = *rng.pick(pool);
                    }
                    (s, h)
                }
                PairSelector::Gravity { .. } => {
                    let g = gravity.as_ref().expect("built above");
                    let s = pool[g.sample_index(&mut rng)];
                    let d = loop {
                        let d = pool[g.sample_index(&mut rng)];
                        if d != s {
                            break d;
                        }
                    };
                    (s, d)
                }
                _ => {
                    let s = *rng.pick(pool);
                    let d = loop {
                        let d = *rng.pick(pool);
                        if d != s {
                            break d;
                        }
                    };
                    (s, d)
                }
            };
            let size_bits = sizes.sample(&mut rng).max(1.0);
            offered_bits += size_bits;
            flows.push(FlowSpec {
                id,
                src,
                dst,
                size_bits,
                arrival: t,
            });
            id += 1;
        }
        if flows.is_empty() {
            return Err(WorkloadError::EmptyWorkload);
        }
        Ok(Workload {
            flows,
            offered_bits,
        })
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows were generated.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Offered load in bits/s over the generation window.
    pub fn offered_rate(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            0.0
        } else {
            self.offered_bits / duration.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_topology::rocketfuel::{generate_isp, Isp};

    fn topo() -> Topology {
        generate_isp(Isp::Vsnl, 1)
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: 200.0,
            mean_size_bits: 1e6,
            pairs: PairSelector::Uniform,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn arrivals_are_ordered_and_within_window() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(10), 7);
        assert!(!w.is_empty());
        let mut prev = SimTime::ZERO;
        for f in &w.flows {
            assert!(f.arrival >= prev);
            assert!(f.arrival < SimTime::from_secs(10));
            prev = f.arrival;
        }
    }

    #[test]
    fn arrival_count_tracks_rate() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(50), 3);
        let expect = 200.0 * 50.0;
        let got = w.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.1,
            "got {got} arrivals, expected ~{expect}"
        );
    }

    #[test]
    fn sizes_have_requested_mean() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(100), 11);
        let mean = w.offered_bits / w.len() as f64;
        assert!(
            (mean - 1e6).abs() < 1e5,
            "mean flow size {mean} vs requested 1e6"
        );
        assert!((w.offered_rate(SimDuration::from_secs(100)) - w.offered_bits / 100.0).abs() < 1.0);
    }

    #[test]
    fn endpoints_are_distinct() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(20), 5);
        assert!(w.flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 5);
        for (i, f) in w.flows.iter().enumerate() {
            assert_eq!(f.id, i as u64);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 9);
        let b = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 9);
        assert_eq!(a, b);
        let c = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_to_edge_uses_edge_nodes() {
        let t = topo();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::EdgeToEdge;
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(5), 1);
        assert!(!w.is_empty());
        for f in &w.flows {
            assert_eq!(t.node(f.src).tier, Tier::Edge, "src {:?}", f.src);
            assert_eq!(t.node(f.dst).tier, Tier::Edge);
        }
    }

    #[test]
    fn hotspot_targets_one_destination() {
        let t = topo();
        let h = t.node_ids().next().unwrap();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Hotspot(h);
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(5), 1);
        assert!(w.flows.iter().all(|f| f.dst == h && f.src != h));
    }

    #[test]
    fn gravity_prefers_hubs() {
        // a star: the hub must appear as endpoint far more often than any
        // single leaf under gravity, and roughly uniformly without it
        let t = Topology::star(
            10,
            inrpp_sim::units::Rate::mbps(10.0),
            SimDuration::from_millis(1),
        );
        let hub = t.node_ids().next().unwrap();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Gravity { exponent: 1.0 };
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(20), 5);
        let hub_fraction = w
            .flows
            .iter()
            .filter(|f| f.src == hub || f.dst == hub)
            .count() as f64
            / w.len() as f64;
        // hub weight 9 vs 9 leaves of weight 1: hub should touch most flows
        assert!(
            hub_fraction > 0.75,
            "gravity hub fraction {hub_fraction} too low"
        );
        cfg.pairs = PairSelector::Uniform;
        let wu = Workload::generate(&t, &cfg, SimDuration::from_secs(20), 5);
        let uniform_fraction = wu
            .flows
            .iter()
            .filter(|f| f.src == hub || f.dst == hub)
            .count() as f64
            / wu.len() as f64;
        assert!(hub_fraction > uniform_fraction + 0.2);
    }

    #[test]
    fn gravity_zero_exponent_is_uniformish() {
        let t = topo();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Gravity { exponent: 0.0 };
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(10), 5);
        assert!(!w.is_empty());
        assert!(w.flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn sizes_are_positive() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 13);
        assert!(w.flows.iter().all(|f| f.size_bits >= 1.0));
    }

    // ---- typed-error regression (the silent-empty-workload fix) --------

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let t = topo();
        let mut one = Topology::new("one");
        one.add_node();
        assert_eq!(
            Workload::try_generate(&one, &cfg(), SimDuration::from_secs(1), 1).unwrap_err(),
            WorkloadError::TooFewNodes(1)
        );
        let mut c = cfg();
        c.arrival_rate = 0.0;
        assert_eq!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1).unwrap_err(),
            WorkloadError::NonPositiveArrivalRate(0.0)
        );
        let mut c = cfg();
        c.mean_size_bits = -1.0;
        assert_eq!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1).unwrap_err(),
            WorkloadError::NonPositiveMeanSize(-1.0)
        );
        // zero offered load: an empty window must not come back as a
        // vacuous empty workload
        assert_eq!(
            Workload::try_generate(&t, &cfg(), SimDuration::ZERO, 1).unwrap_err(),
            WorkloadError::EmptyWorkload
        );
        assert!(WorkloadError::EmptyWorkload
            .to_string()
            .contains("zero flows"));
    }

    #[test]
    #[should_panic(expected = "workload generation failed")]
    fn generate_panics_on_degenerate_input() {
        let mut c = cfg();
        c.arrival_rate = -5.0;
        let _ = Workload::generate(&topo(), &c, SimDuration::from_secs(1), 1);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let t = topo();
        let mut c = cfg();
        c.arrivals = ArrivalProfile::FlashCrowd {
            onset: 1.5,
            magnitude: 4.0,
        };
        assert!(matches!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1),
            Err(WorkloadError::InvalidProfile(_))
        ));
        let mut c = cfg();
        c.arrivals = ArrivalProfile::Diurnal {
            cycles: 2.0,
            amplitude: 1.0,
        };
        assert!(matches!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1),
            Err(WorkloadError::InvalidProfile(_))
        ));
        let mut c = cfg();
        c.sizes = SizeProfile::Mixed {
            bulk_frac: 0.5,
            bulk_factor: 2.0, // 0.5 * 2.0 >= 1: elastic mean would be zero
        };
        assert!(matches!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1),
            Err(WorkloadError::InvalidProfile(_))
        ));
        let mut c = cfg();
        c.sizes = SizeProfile::HeavyTail { shape: 0.0 };
        assert!(matches!(
            Workload::try_generate(&t, &c, SimDuration::from_secs(1), 1),
            Err(WorkloadError::InvalidProfile(_))
        ));
    }

    // ---- traffic families ---------------------------------------------

    #[test]
    fn steady_profile_matches_legacy_stream() {
        // the thinning hook must not consume randomness on the steady
        // profile: pre-catalog experiment bytes depend on it
        let legacy = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 9);
        let mut c = cfg();
        c.arrivals = ArrivalProfile::Steady;
        c.sizes = SizeProfile::Exponential;
        assert_eq!(
            legacy,
            Workload::generate(&topo(), &c, SimDuration::from_secs(5), 9)
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_after_onset() {
        let mut c = cfg();
        c.arrivals = ArrivalProfile::FlashCrowd {
            onset: 0.5,
            magnitude: 4.0,
        };
        let w = Workload::generate(&topo(), &c, SimDuration::from_secs(40), 3);
        let window = SimDuration::from_secs(40);
        let late = w
            .flows
            .iter()
            .filter(|f| f.arrival.duration_since(SimTime::ZERO) >= window / 2)
            .count() as f64;
        let early = w.len() as f64 - late;
        // expected ratio 4:1; allow sampling noise
        assert!(
            late > early * 2.5,
            "flash crowd did not step: {early} early vs {late} late"
        );
        // base-rate calibration helper: mean factor is 0.5 + 0.5*4
        assert!((c.arrivals.mean_factor() - 2.5).abs() < 1e-12);
        assert_eq!(c.arrivals.peak_factor(), 4.0);
    }

    #[test]
    fn diurnal_profile_modulates_but_preserves_mean() {
        let mut c = cfg();
        c.arrivals = ArrivalProfile::Diurnal {
            cycles: 2.0,
            amplitude: 0.8,
        };
        let w = Workload::generate(&topo(), &c, SimDuration::from_secs(50), 3);
        let expect = 200.0 * 50.0;
        let got = w.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.1,
            "diurnal mean rate drifted: {got} vs ~{expect}"
        );
        // arrivals in the first quarter (rising sine) must clearly outnumber
        // the second quarter (falling below base) of each cycle
        let bucket = |f: &FlowSpec| {
            (f.arrival.duration_since(SimTime::ZERO).as_secs_f64() / 50.0 * 8.0) as usize % 4
        };
        let counts = w.flows.iter().fold([0usize; 4], |mut acc, f| {
            acc[bucket(f)] += 1;
            acc
        });
        assert!(
            counts[0] > counts[2] * 2,
            "sinusoid not visible in quarter counts: {counts:?}"
        );
        // whole cycles average out exactly...
        assert!((c.arrivals.mean_factor() - 1.0).abs() < 1e-12);
        // ...while a fractional window keeps the residual half-wave mass
        let half = ArrivalProfile::Diurnal {
            cycles: 0.5,
            amplitude: 0.8,
        };
        let want = 1.0 + 0.8 * 2.0 / std::f64::consts::PI;
        assert!(
            (half.mean_factor() - want).abs() < 1e-12,
            "fractional-cycle mean factor {} vs exact {want}",
            half.mean_factor()
        );
    }

    #[test]
    fn heavy_tail_sizes_match_mean_and_are_skewed() {
        let mut c = cfg();
        c.sizes = SizeProfile::HeavyTail { shape: 1.5 };
        let w = Workload::generate(&topo(), &c, SimDuration::from_secs(200), 11);
        let mean = w.offered_bits / w.len() as f64;
        assert!(
            (mean - 1e6).abs() < 0.15e6,
            "heavy-tail mean {mean} drifted from 1e6"
        );
        // heavy tail: the median sits well below the mean
        let mut sizes: Vec<f64> = w.flows.iter().map(|f| f.size_bits).collect();
        sizes.sort_by(f64::total_cmp);
        let median = sizes[sizes.len() / 2];
        assert!(
            median < 0.6 * mean,
            "median {median} vs mean {mean}: not heavy-tailed"
        );
    }

    #[test]
    fn mixed_profile_is_bimodal_with_preserved_mean() {
        let mut c = cfg();
        c.sizes = SizeProfile::Mixed {
            bulk_frac: 0.25,
            bulk_factor: 3.0,
        };
        let w = Workload::generate(&topo(), &c, SimDuration::from_secs(200), 13);
        let mean = w.offered_bits / w.len() as f64;
        assert!((mean - 1e6).abs() < 0.1e6, "mixture mean {mean} drifted");
        let bulk = w
            .flows
            .iter()
            .filter(|f| (f.size_bits - 3e6).abs() < 1e-6)
            .count() as f64;
        let frac = bulk / w.len() as f64;
        assert!(
            (frac - 0.25).abs() < 0.05,
            "constant-rate fraction {frac} vs requested 0.25"
        );
    }
}
