//! Workload generation: Poisson flow arrivals between sampled node pairs.
//!
//! Fig. 4's setup is "flows arrive Poisson distributed"; sizes and endpoint
//! selection are not pinned down in the paper, so the generator exposes
//! them as knobs with defaults documented in `EXPERIMENTS.md`: exponential
//! flow sizes (mean 25 Mbit) between uniformly random distinct node pairs.

use inrpp_sim::dist::{Discrete, Distribution, Exponential, PoissonProcess};
use inrpp_sim::rng::SimRng;
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_topology::graph::{NodeId, Tier, Topology};

/// One flow to be injected into the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Dense flow index (also used as the ECMP hash key).
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow size in bits.
    pub size_bits: f64,
    /// Arrival instant.
    pub arrival: SimTime,
}

/// How to sample `(src, dst)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PairSelector {
    /// Uniformly random distinct node pair.
    #[default]
    Uniform,
    /// Uniformly random pair of *edge-tier* nodes (falls back to uniform
    /// when the topology has fewer than two edge nodes).
    EdgeToEdge,
    /// All flows converge on one hotspot destination (stress pattern).
    Hotspot(NodeId),
    /// Gravity model: endpoint probability proportional to
    /// `degree^exponent` — hubs attract traffic, the classic ISP traffic
    /// matrix shape. `exponent = 0` degenerates to uniform.
    Gravity {
        /// Degree exponent (1.0 = plain gravity).
        exponent: f64,
    },
}

/// Workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Mean flow arrivals per second.
    pub arrival_rate: f64,
    /// Mean flow size in bits (sizes are exponential around this mean).
    pub mean_size_bits: f64,
    /// Endpoint sampling policy.
    pub pairs: PairSelector,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            arrival_rate: 100.0,
            mean_size_bits: 25e6,
            pairs: PairSelector::Uniform,
        }
    }
}

/// A generated, arrival-ordered list of flows.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Flows sorted by arrival time.
    pub flows: Vec<FlowSpec>,
    /// Total offered bits.
    pub offered_bits: f64,
}

impl Workload {
    /// Generate flows over `[0, duration)`.
    ///
    /// # Panics
    /// Panics if the topology has fewer than two nodes or the config rates
    /// are non-positive.
    pub fn generate(
        topo: &Topology,
        cfg: &WorkloadConfig,
        duration: SimDuration,
        seed: u64,
    ) -> Workload {
        assert!(
            topo.node_count() >= 2,
            "workload needs at least two nodes to pick pairs"
        );
        let arrivals = PoissonProcess::new(cfg.arrival_rate)
            .expect("arrival rate must be positive");
        let sizes =
            Exponential::with_mean(cfg.mean_size_bits).expect("mean size must be positive");
        let mut rng = SimRng::from_seed_u64(seed).derive(0xF10F);

        // Candidate endpoints, fixed up front for determinism.
        let edge_nodes: Vec<NodeId> = topo
            .node_ids()
            .filter(|&n| topo.node(n).tier == Tier::Edge)
            .collect();
        let all_nodes: Vec<NodeId> = topo.node_ids().collect();
        let pool: &[NodeId] = match cfg.pairs {
            PairSelector::EdgeToEdge if edge_nodes.len() >= 2 => &edge_nodes,
            _ => &all_nodes,
        };
        // gravity sampling: degree^exponent weights over the pool
        let gravity = match cfg.pairs {
            PairSelector::Gravity { exponent } => {
                let weights: Vec<f64> = pool
                    .iter()
                    .map(|&n| (topo.degree(n).max(1) as f64).powf(exponent))
                    .collect();
                Some(Discrete::new(&weights).expect("degrees are positive"))
            }
            _ => None,
        };

        let mut flows = Vec::new();
        let mut offered_bits = 0.0;
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        loop {
            t += arrivals.next_gap(&mut rng);
            if t.duration_since(SimTime::ZERO) >= duration {
                break;
            }
            let (src, dst) = match cfg.pairs {
                PairSelector::Hotspot(h) => {
                    let mut s = *rng.pick(pool);
                    while s == h {
                        s = *rng.pick(pool);
                    }
                    (s, h)
                }
                PairSelector::Gravity { .. } => {
                    let g = gravity.as_ref().expect("built above");
                    let s = pool[g.sample_index(&mut rng)];
                    let d = loop {
                        let d = pool[g.sample_index(&mut rng)];
                        if d != s {
                            break d;
                        }
                    };
                    (s, d)
                }
                _ => {
                    let s = *rng.pick(pool);
                    let d = loop {
                        let d = *rng.pick(pool);
                        if d != s {
                            break d;
                        }
                    };
                    (s, d)
                }
            };
            let size_bits = sizes.sample(&mut rng).max(1.0);
            offered_bits += size_bits;
            flows.push(FlowSpec {
                id,
                src,
                dst,
                size_bits,
                arrival: t,
            });
            id += 1;
        }
        Workload {
            flows,
            offered_bits,
        }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows were generated.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Offered load in bits/s over the generation window.
    pub fn offered_rate(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            0.0
        } else {
            self.offered_bits / duration.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_topology::rocketfuel::{generate_isp, Isp};

    fn topo() -> Topology {
        generate_isp(Isp::Vsnl, 1)
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: 200.0,
            mean_size_bits: 1e6,
            pairs: PairSelector::Uniform,
        }
    }

    #[test]
    fn arrivals_are_ordered_and_within_window() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(10), 7);
        assert!(!w.is_empty());
        let mut prev = SimTime::ZERO;
        for f in &w.flows {
            assert!(f.arrival >= prev);
            assert!(f.arrival < SimTime::from_secs(10));
            prev = f.arrival;
        }
    }

    #[test]
    fn arrival_count_tracks_rate() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(50), 3);
        let expect = 200.0 * 50.0;
        let got = w.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.1,
            "got {got} arrivals, expected ~{expect}"
        );
    }

    #[test]
    fn sizes_have_requested_mean() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(100), 11);
        let mean = w.offered_bits / w.len() as f64;
        assert!(
            (mean - 1e6).abs() < 1e5,
            "mean flow size {mean} vs requested 1e6"
        );
        assert!((w.offered_rate(SimDuration::from_secs(100))
            - w.offered_bits / 100.0)
            .abs()
            < 1.0);
    }

    #[test]
    fn endpoints_are_distinct() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(20), 5);
        assert!(w.flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 5);
        for (i, f) in w.flows.iter().enumerate() {
            assert_eq!(f.id, i as u64);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 9);
        let b = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 9);
        assert_eq!(a, b);
        let c = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn edge_to_edge_uses_edge_nodes() {
        let t = topo();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::EdgeToEdge;
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(5), 1);
        assert!(!w.is_empty());
        for f in &w.flows {
            assert_eq!(t.node(f.src).tier, Tier::Edge, "src {:?}", f.src);
            assert_eq!(t.node(f.dst).tier, Tier::Edge);
        }
    }

    #[test]
    fn hotspot_targets_one_destination() {
        let t = topo();
        let h = t.node_ids().next().unwrap();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Hotspot(h);
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(5), 1);
        assert!(w.flows.iter().all(|f| f.dst == h && f.src != h));
    }

    #[test]
    fn gravity_prefers_hubs() {
        // a star: the hub must appear as endpoint far more often than any
        // single leaf under gravity, and roughly uniformly without it
        let t = Topology::star(
            10,
            inrpp_sim::units::Rate::mbps(10.0),
            SimDuration::from_millis(1),
        );
        let hub = t.node_ids().next().unwrap();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Gravity { exponent: 1.0 };
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(20), 5);
        let hub_fraction = w
            .flows
            .iter()
            .filter(|f| f.src == hub || f.dst == hub)
            .count() as f64
            / w.len() as f64;
        // hub weight 9 vs 9 leaves of weight 1: hub should touch most flows
        assert!(
            hub_fraction > 0.75,
            "gravity hub fraction {hub_fraction} too low"
        );
        cfg.pairs = PairSelector::Uniform;
        let wu = Workload::generate(&t, &cfg, SimDuration::from_secs(20), 5);
        let uniform_fraction = wu
            .flows
            .iter()
            .filter(|f| f.src == hub || f.dst == hub)
            .count() as f64
            / wu.len() as f64;
        assert!(hub_fraction > uniform_fraction + 0.2);
    }

    #[test]
    fn gravity_zero_exponent_is_uniformish() {
        let t = topo();
        let mut cfg = cfg();
        cfg.pairs = PairSelector::Gravity { exponent: 0.0 };
        let w = Workload::generate(&t, &cfg, SimDuration::from_secs(10), 5);
        assert!(!w.is_empty());
        assert!(w.flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn sizes_are_positive() {
        let w = Workload::generate(&topo(), &cfg(), SimDuration::from_secs(5), 13);
        assert!(w.flows.iter().all(|f| f.size_bits >= 1.0));
    }
}
