//! The incremental, arena-backed max-min allocation engine.
//!
//! [`crate::allocator::max_min_allocate`] is the *reference* allocator:
//! given the full flow set it re-resolves every subpath's hops to directed
//! channels (one `HashMap` probe per hop) and allocates fresh vectors for
//! every piece of working state — on **every** call. The flow-level event
//! loop calls the allocator on every arrival and departure, so the
//! reference formulation costs `O(events × flows × hops)` repeated path
//! resolution plus thousands of heap allocations per event.
//!
//! [`AllocEngine`] is the production engine the simulator uses instead:
//!
//! * [`FlowPaths`] — an arena that resolves each flow's preference-ordered
//!   subpaths to flat directed-channel index slices (`Vec<u32>` + offsets)
//!   **once at flow arrival**, via the O(1) dense adjacency table
//!   ([`inrpp_topology::dense::DenseChannels`]). Departed flows return
//!   their slot (and its buffers) to a free list, so steady-state churn
//!   allocates nothing.
//! * [`AllocatorScratch`] — the progressive-filling working state
//!   (residuals, per-channel flow counts, frozen flags, subpath cursors)
//!   held across events and reused, so a re-allocation touches only
//!   pre-sized flat arrays.
//! * An active set sorted by caller key (the simulator uses flow ids), so
//!   iteration order — and therefore every floating-point operation —
//!   matches the reference allocator fed the same flows in the same
//!   order.
//!
//! **Exactness contract:** for any active set, [`AllocEngine::allocate`]
//! produces bit-identical `flow_rates`, `subpath_rates`, and `dir_used`
//! to the reference allocator. The filling loop performs the same
//! arithmetic in the same order; the one shortcut — re-scanning a flow's
//! subpath preference from its *current* cursor instead of from zero — is
//! sound because channel saturation is monotone within one allocation
//! (residuals only fall, saturated channels are clamped to zero and stay
//! there), so subpaths once skipped stay skipped. The contract is gated
//! by unit tests here and the reference-equivalence property test in
//! `tests/properties.rs`.

use inrpp_topology::dense::DenseChannels;
use inrpp_topology::graph::Topology;
use inrpp_topology::spath::Path;

use crate::allocator::{UnresolvedHop, MAX_ROUNDS, REL_EPS};

/// One flow's resolved subpaths inside the [`FlowPaths`] arena.
#[derive(Debug, Clone, Default)]
struct SlotData {
    /// Directed-channel indices of every subpath, concatenated.
    dirs: Vec<u32>,
    /// Exclusive end offset of each subpath within `dirs`.
    ends: Vec<u32>,
}

impl SlotData {
    /// Channel slice of subpath `i`.
    #[inline]
    fn subpath(&self, i: usize) -> &[u32] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.dirs[start..self.ends[i] as usize]
    }

    /// Number of subpaths.
    #[inline]
    fn len(&self) -> usize {
        self.ends.len()
    }
}

/// Arena of per-flow resolved subpaths: flat `Vec<u32>` channel slices
/// plus offsets, filled once at flow arrival through an O(1) dense
/// adjacency lookup and recycled through a slot free list.
#[derive(Debug)]
pub struct FlowPaths {
    dense: DenseChannels,
    slots: Vec<SlotData>,
    free: Vec<u32>,
}

impl FlowPaths {
    /// An empty arena resolving against `topo`.
    pub fn new(topo: &Topology) -> Self {
        FlowPaths {
            dense: DenseChannels::build(topo),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Resolve `paths` into a fresh (or recycled) slot and return its id.
    /// On an unresolvable hop nothing is retained and the typed error
    /// names the offending node pair.
    pub fn insert(&mut self, paths: &[Path]) -> Result<u32, UnresolvedHop> {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(SlotData::default());
                (self.slots.len() - 1) as u32
            }
        };
        let data = &mut self.slots[slot as usize];
        data.dirs.clear();
        data.ends.clear();
        for p in paths {
            for w in p.nodes().windows(2) {
                match self.dense.dir_index(w[0], w[1]) {
                    Some(d) => data.dirs.push(d),
                    None => {
                        data.dirs.clear();
                        data.ends.clear();
                        self.free.push(slot);
                        return Err(UnresolvedHop {
                            from: w[0],
                            to: w[1],
                        });
                    }
                }
            }
            data.ends.push(data.dirs.len() as u32);
        }
        Ok(slot)
    }

    /// Release `slot` back to the free list (its buffers keep their
    /// capacity for the next flow).
    pub fn remove(&mut self, slot: u32) {
        let data = &mut self.slots[slot as usize];
        data.dirs.clear();
        data.ends.clear();
        self.free.push(slot);
    }

    /// Slots currently allocated (live + free), i.e. the arena footprint.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Reusable progressive-filling working state, held by the engine across
/// events so re-allocations are allocation-free in steady state.
#[derive(Debug)]
pub struct AllocatorScratch {
    /// Effective capacity per directed channel: base scaled by the current
    /// fault factor (0 while the link is down).
    caps: Vec<f64>,
    /// Undegraded capacity per directed channel (fixed per topology).
    base_caps: Vec<f64>,
    /// Remaining capacity per directed channel.
    residual: Vec<f64>,
    /// Occurrences of each directed channel across unfrozen flows'
    /// preferred subpaths, maintained incrementally across rounds.
    count: Vec<u32>,
    /// Per active position: no subpath with headroom left.
    frozen: Vec<bool>,
    /// Per active position: cursor into the subpath preference order.
    preferred: Vec<u32>,
    /// Per channel: active positions whose preferred subpath was routed
    /// through it when selected (lazy — may contain stale entries, which
    /// the rescan filters out). Drives the targeted re-selection: only
    /// flows on a newly saturated channel can change preference.
    on_channel: Vec<Vec<u32>>,
    /// Unfrozen active positions (order-free: every per-flow update in a
    /// round is independent, so iteration order does not affect results).
    unfrozen: Vec<u32>,
    /// Per active position: its index in `unfrozen` (for swap-removal).
    unfrozen_pos: Vec<u32>,
    /// Channels saturated by the current round.
    newly_sat: Vec<u32>,
    /// Channels with `count > 0` (may lag: zero-count entries are swept
    /// out during the next round's δ pass). The per-round scans iterate
    /// this instead of every channel — late rounds have few flows left.
    in_use: Vec<u32>,
    /// Membership flag for `in_use` (prevents duplicate entries when a
    /// channel's count returns to zero and climbs again).
    in_list: Vec<bool>,
    /// Spare buffer rotated through `on_channel` entries during rescans.
    rescan_buf: Vec<u32>,
    /// `2⁻ᵏ` reciprocals: dividing by a power-of-two count is an exact
    /// scaling, so it can be a multiplication with a bit-identical result.
    pow2_recip: [f64; 33],
}

impl AllocatorScratch {
    fn new(topo: &Topology) -> Self {
        let mut caps = Vec::with_capacity(topo.link_count() * 2);
        for l in topo.link_ids() {
            let c = topo.link(l).capacity.as_bps();
            caps.push(c);
            caps.push(c);
        }
        let mut pow2_recip = [0.0; 33];
        for (k, r) in pow2_recip.iter_mut().enumerate() {
            *r = 1.0 / (1u64 << k) as f64;
        }
        AllocatorScratch {
            residual: vec![0.0; caps.len()],
            count: vec![0; caps.len()],
            on_channel: vec![Vec::new(); caps.len()],
            in_list: vec![false; caps.len()],
            base_caps: caps.clone(),
            caps,
            frozen: Vec::new(),
            preferred: Vec::new(),
            unfrozen: Vec::new(),
            unfrozen_pos: Vec::new(),
            newly_sat: Vec::new(),
            in_use: Vec::new(),
            rescan_buf: Vec::new(),
            pow2_recip,
        }
    }

    /// True when channel `d` has no headroom left (identical predicate to
    /// the reference allocator).
    #[inline]
    fn saturated(&self, d: usize) -> bool {
        self.residual[d] <= self.caps[d] * REL_EPS
    }

    /// Set both directions of `link` to `factor` of base capacity; `0`
    /// means the link is down (flows through it freeze at rate 0, since a
    /// zero-capacity channel is saturated from the start of every fill).
    /// Takes effect at the next [`AllocEngine::allocate`] call.
    fn set_link_capacity_factor(&mut self, link: usize, factor: f64) {
        debug_assert!((0.0..=1.0).contains(&factor), "factor {factor}");
        for d in [2 * link, 2 * link + 1] {
            self.caps[d] = self.base_caps[d] * factor;
        }
    }

    /// Route flow `i` over channel `d` of its newly preferred subpath:
    /// count it, list it for targeted re-selection, and make sure the
    /// channel is on the in-use scan list.
    #[inline]
    fn route(&mut self, d: usize, i: u32) {
        self.count[d] += 1;
        self.on_channel[d].push(i);
        if !self.in_list[d] {
            self.in_list[d] = true;
            self.in_use.push(d as u32);
        }
    }

    /// First subpath of `data` at or after cursor `from` whose channels
    /// all have headroom; `None` freezes the flow. Scanning from the
    /// cursor is sound because saturation is monotone within one
    /// allocation — everything before the cursor stayed saturated.
    #[inline]
    fn select_from(&self, data: &SlotData, from: usize) -> Option<usize> {
        (from..data.len()).find(|&p| !data.subpath(p).iter().any(|&d| self.saturated(d as usize)))
    }

    /// Re-evaluate flow `i`'s preference after a channel on its preferred
    /// subpath saturated, keeping `count`, `on_channel`, and the unfrozen
    /// set in sync. No-op when the flow is already frozen (stale list
    /// entry) or its preferred subpath is still clean.
    fn rescan(&mut self, data: &SlotData, i: u32) {
        if self.frozen[i as usize] {
            return;
        }
        let p0 = self.preferred[i as usize] as usize;
        let choice = self.select_from(data, p0);
        if choice == Some(p0) {
            return;
        }
        for &d in data.subpath(p0) {
            self.count[d as usize] -= 1;
        }
        match choice {
            Some(p) => {
                self.preferred[i as usize] = p as u32;
                for &d in data.subpath(p) {
                    self.route(d as usize, i);
                }
            }
            None => {
                self.frozen[i as usize] = true;
                // swap-remove from the unfrozen set, fixing the index of
                // the element that took the vacated slot
                let at = self.unfrozen_pos[i as usize] as usize;
                self.unfrozen.swap_remove(at);
                if let Some(&moved) = self.unfrozen.get(at) {
                    self.unfrozen_pos[moved as usize] = at as u32;
                }
            }
        }
    }
}

/// The persistent allocation engine: flows enter at arrival
/// ([`AllocEngine::insert`]), leave at departure
/// ([`AllocEngine::remove`]), and [`AllocEngine::allocate`] recomputes
/// only the rate vectors — numerically identical to the reference
/// allocator run from scratch over the same active set.
///
/// ```
/// use inrpp_flowsim::engine::AllocEngine;
/// use inrpp_flowsim::allocator::max_min_allocate;
/// use inrpp_topology::{spath::Path, Topology};
///
/// let topo = Topology::fig3();
/// let n = |s: &str| topo.node_by_name(s).unwrap();
/// let mut eng = AllocEngine::new(&topo);
/// eng.insert(7, &[
///     Path::new(vec![n("1"), n("2"), n("4")]),
///     Path::new(vec![n("1"), n("2"), n("3"), n("4")]),
/// ]).unwrap();
/// eng.insert(9, &[Path::new(vec![n("1"), n("2"), n("3")])]).unwrap();
/// eng.allocate();
/// // identical to the paper's Fig. 3 INRPP outcome — and bit-identical
/// // to the reference allocator fed the same flows
/// assert!((eng.flow_rates()[0] - 5e6).abs() < 1.0);
/// assert!((eng.flow_rates()[1] - 5e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct AllocEngine {
    paths: FlowPaths,
    scratch: AllocatorScratch,
    /// Active flow keys, ascending — the canonical iteration order.
    keys: Vec<u64>,
    /// Arena slot per active position (parallel to `keys`).
    slots: Vec<u32>,
    // ---- outputs of the last `allocate()` ----------------------------
    flow_rates: Vec<f64>,
    sub_rates: Vec<f64>,
    /// Per position: exclusive end offset into `sub_rates`.
    sub_ends: Vec<u32>,
    dir_used: Vec<f64>,
    rounds: usize,
}

impl AllocEngine {
    /// A fresh engine for `topo` with an empty active set.
    pub fn new(topo: &Topology) -> Self {
        AllocEngine {
            paths: FlowPaths::new(topo),
            scratch: AllocatorScratch::new(topo),
            keys: Vec::new(),
            slots: Vec::new(),
            flow_rates: Vec::new(),
            sub_rates: Vec::new(),
            sub_ends: Vec::new(),
            dir_used: Vec::new(),
            rounds: 0,
        }
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no flow is active.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Active flow keys, ascending; positions index the rate vectors.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Arena slot of the flow at `pos`.
    #[inline]
    pub fn slot_at(&self, pos: usize) -> usize {
        self.slots[pos] as usize
    }

    /// Admit a flow: resolve its preference-ordered subpaths into the
    /// arena once, keyed by `key` (must be unique among active flows).
    /// Returns the arena slot, which is stable until [`Self::remove`].
    ///
    /// # Panics
    /// Panics if `key` is already active.
    pub fn insert(&mut self, key: u64, paths: &[Path]) -> Result<usize, UnresolvedHop> {
        let idx = match self.keys.binary_search(&key) {
            Ok(_) => panic!("flow key {key} inserted twice"),
            Err(i) => i,
        };
        let slot = self.paths.insert(paths)?;
        self.keys.insert(idx, key);
        self.slots.insert(idx, slot);
        Ok(slot as usize)
    }

    /// Retire the flow keyed `key`, freeing its arena slot. Returns the
    /// slot it occupied, or `None` if the key was not active.
    pub fn remove(&mut self, key: u64) -> Option<usize> {
        let idx = self.keys.binary_search(&key).ok()?;
        self.keys.remove(idx);
        let slot = self.slots.remove(idx);
        self.paths.remove(slot);
        Some(slot as usize)
    }

    /// Recompute max-min rates for the current active set (progressive
    /// filling over the arena, scratch reused). Outputs are readable
    /// until the next `insert`/`remove`/`allocate`.
    ///
    /// The filling loop is restructured against the reference allocator
    /// for speed, but every restructuring preserves bit-identical
    /// arithmetic:
    ///
    /// * channel counts are maintained incrementally instead of rebuilt
    ///   per round — pure integer bookkeeping, same values;
    /// * the per-round `δ` is still the minimum over channels in use —
    ///   `min` does not depend on scan order;
    /// * residual subtraction runs per *channel* (`count[d]` repeated
    ///   subtractions in a register) instead of per flow — the operation
    ///   sequence each `residual[d]` sees is unchanged, because within a
    ///   round every subtraction uses the same `δ` and no other channel's
    ///   updates touch it;
    /// * re-selection is driven by the flow lists of newly saturated
    ///   channels — exactly the flows the reference's full rescan could
    ///   move (a preference changes only when the flow's current subpath
    ///   loses a channel), and per-flow re-selection is independent of
    ///   the order flows are visited in.
    pub fn allocate(&mut self) {
        let s = &mut self.scratch;
        let ndir = s.caps.len();
        s.residual.copy_from_slice(&s.caps);
        s.frozen.clear();
        s.preferred.clear();
        self.sub_ends.clear();
        let mut total_subs = 0u32;
        for &slot in &self.slots {
            let data = &self.paths.slots[slot as usize];
            total_subs += data.len() as u32;
            self.sub_ends.push(total_subs);
            s.frozen.push(data.ends.is_empty());
            s.preferred.push(0);
        }
        self.sub_rates.clear();
        self.sub_rates.resize(total_subs as usize, 0.0);

        // Initial selection, then seed counts, per-channel flow lists,
        // the in-use channel list, and the unfrozen set.
        s.count.fill(0);
        for l in &mut s.on_channel {
            l.clear();
        }
        for k in 0..s.in_use.len() {
            s.in_list[s.in_use[k] as usize] = false;
        }
        s.in_use.clear();
        s.unfrozen.clear();
        s.unfrozen_pos.clear();
        s.unfrozen_pos.resize(self.slots.len(), 0);
        for (i, &slot) in self.slots.iter().enumerate() {
            if s.frozen[i] {
                continue;
            }
            let data = &self.paths.slots[slot as usize];
            match s.select_from(data, 0) {
                Some(p) => {
                    s.preferred[i] = p as u32;
                    for &d in data.subpath(p) {
                        s.route(d as usize, i as u32);
                    }
                    s.unfrozen_pos[i] = s.unfrozen.len() as u32;
                    s.unfrozen.push(i as u32);
                }
                None => s.frozen[i] = true,
            }
        }

        let mut rounds = 0;
        while rounds < MAX_ROUNDS {
            rounds += 1;
            if s.unfrozen.is_empty() {
                break;
            }
            // Largest uniform increment no used channel can refuse — the
            // same minimum the reference takes over all channels, since
            // `min` is scan-order independent and `in_use` ⊇ the channels
            // with `count > 0` (zero-count leftovers are swept out here).
            // Dividing by 1 is the identity and dividing by a power of
            // two is an exact scaling, so only the remaining counts pay
            // for a hardware division — same bits either way.
            let mut delta = f64::INFINITY;
            let mut k = 0;
            while k < s.in_use.len() {
                let d = s.in_use[k] as usize;
                let c = s.count[d];
                if c == 0 {
                    s.in_list[d] = false;
                    s.in_use.swap_remove(k);
                    continue;
                }
                let q = if c == 1 {
                    s.residual[d]
                } else if c.is_power_of_two() {
                    s.residual[d] * s.pow2_recip[c.trailing_zeros() as usize]
                } else {
                    s.residual[d] / c as f64
                };
                delta = delta.min(q);
                k += 1;
            }
            debug_assert!(delta.is_finite(), "unfrozen flows must use channels");
            // `count[d] > 0` implies `residual[d] > caps[d]·ε` (else the
            // subpath would not have been selectable), so `δ` is strictly
            // positive whenever any flow is unfrozen — the reference's
            // `if δ > 0` guard is vacuous here and the saturation clamp
            // can run fused into the subtraction pass: all of a channel's
            // subtractions happen below before its clamp check, exactly
            // as the reference orders them.
            s.newly_sat.clear();
            for &i in &s.unfrozen {
                let i = i as usize;
                let start = if i == 0 {
                    0
                } else {
                    self.sub_ends[i - 1] as usize
                };
                self.sub_rates[start + s.preferred[i] as usize] += delta;
            }
            for k in 0..s.in_use.len() {
                let d = s.in_use[k] as usize;
                let c = s.count[d];
                if c > 0 {
                    // per-channel repeated subtraction: the same op
                    // sequence `residual[d]` saw from the reference's
                    // per-flow loop, since every subtraction in a round
                    // uses the same δ and channels are independent
                    let mut r = s.residual[d];
                    for _ in 0..c {
                        r -= delta;
                    }
                    // clamp channels that just saturated to exactly zero
                    // so the saturation predicate is stable, and collect
                    // them: only flows routed through them can change
                    // preference
                    if r <= s.caps[d] * REL_EPS {
                        r = 0.0;
                        s.newly_sat.push(d as u32);
                    }
                    s.residual[d] = r;
                }
            }
            // Re-select the affected flows. A saturated channel never
            // re-enters any preference, so its flow list is consumed
            // (its buffer rotates through `rescan_buf` to keep capacity).
            for k in 0..s.newly_sat.len() {
                let d = s.newly_sat[k] as usize;
                let mut pending = std::mem::take(&mut s.rescan_buf);
                std::mem::swap(&mut pending, &mut s.on_channel[d]);
                for &i in &pending {
                    let data = &self.paths.slots[self.slots[i as usize] as usize];
                    s.rescan(data, i);
                }
                pending.clear();
                s.rescan_buf = pending;
            }
        }
        debug_assert!(rounds < MAX_ROUNDS, "allocator failed to converge");
        self.rounds = rounds;

        self.flow_rates.clear();
        for i in 0..self.slots.len() {
            let start = if i == 0 {
                0
            } else {
                self.sub_ends[i - 1] as usize
            };
            let end = self.sub_ends[i] as usize;
            self.flow_rates
                .push(self.sub_rates[start..end].iter().sum());
        }
        self.dir_used.clear();
        for d in 0..ndir {
            self.dir_used.push(s.caps[d] - s.residual[d]);
        }
    }

    /// Total rate per active flow (bits/s), in key order.
    pub fn flow_rates(&self) -> &[f64] {
        &self.flow_rates
    }

    /// Rate per subpath of the flow at `pos` (bits/s, preference order).
    #[inline]
    pub fn subpath_rates(&self, pos: usize) -> &[f64] {
        let start = if pos == 0 {
            0
        } else {
            self.sub_ends[pos - 1] as usize
        };
        &self.sub_rates[start..self.sub_ends[pos] as usize]
    }

    /// Bits/s consumed on every directed channel.
    pub fn dir_used(&self) -> &[f64] {
        &self.dir_used
    }

    /// Filling rounds of the last allocation (diagnostics).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Degrade (or restore) both directions of `link` to `factor` of base
    /// capacity for all subsequent allocations; `0` takes the link down.
    pub fn set_link_capacity_factor(&mut self, link: usize, factor: f64) {
        self.scratch.set_link_capacity_factor(link, factor);
    }

    /// Mean utilisation over directed channels that carry any capacity —
    /// same semantics as [`crate::allocator::Allocation::mean_utilisation`].
    pub fn mean_utilisation(&self) -> f64 {
        let mut sum = 0.0;
        let mut carrying = 0usize;
        for (d, &used) in self.dir_used.iter().enumerate() {
            let cap = self.scratch.caps[d];
            if cap > 0.0 {
                sum += (used / cap).min(1.0);
                carrying += 1;
            }
        }
        if carrying == 0 {
            0.0
        } else {
            sum / carrying as f64
        }
    }

    /// Add `utilisation × dt` per directed channel into `acc` — the
    /// time-weighted accumulation the simulator keeps, without the
    /// per-event vector the reference `dir_utilisation` would allocate.
    pub fn accumulate_channel_utilisation(&self, dt: f64, acc: &mut [f64]) {
        for (d, w) in acc.iter_mut().enumerate() {
            let cap = self.scratch.caps[d];
            let u = if cap <= 0.0 {
                0.0
            } else {
                (self.dir_used[d] / cap).min(1.0)
            };
            *w += u * dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::max_min_allocate;
    use inrpp_sim::time::SimDuration;
    use inrpp_sim::units::Rate;
    use inrpp_topology::graph::NodeId;

    /// Engine output must be bit-identical to the reference allocator.
    fn assert_matches_reference(topo: &Topology, keyed: &[(u64, Vec<Path>)]) {
        let mut eng = AllocEngine::new(topo);
        let mut sorted = keyed.to_vec();
        sorted.sort_by_key(|(k, _)| *k);
        for (k, paths) in keyed {
            eng.insert(*k, paths).unwrap();
        }
        eng.allocate();
        let flows: Vec<Vec<Path>> = sorted.iter().map(|(_, p)| p.clone()).collect();
        let reference = max_min_allocate(topo, &flows);
        assert_eq!(eng.flow_rates(), reference.flow_rates.as_slice());
        assert_eq!(eng.dir_used(), reference.dir_used.as_slice());
        assert_eq!(eng.rounds(), reference.rounds);
        for (pos, want) in reference.subpath_rates.iter().enumerate() {
            assert_eq!(eng.subpath_rates(pos), want.as_slice());
        }
        assert_eq!(eng.mean_utilisation(), reference.mean_utilisation(topo));
    }

    fn fig3_keyed() -> (Topology, Vec<(u64, Vec<Path>)>) {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let keyed = vec![
            (
                10u64,
                vec![
                    Path::new(vec![n("1"), n("2"), n("4")]),
                    Path::new(vec![n("1"), n("2"), n("3"), n("4")]),
                ],
            ),
            (4u64, vec![Path::new(vec![n("1"), n("2"), n("3")])]),
        ];
        (topo, keyed)
    }

    #[test]
    fn matches_reference_on_fig3() {
        let (topo, keyed) = fig3_keyed();
        assert_matches_reference(&topo, &keyed);
    }

    #[test]
    fn matches_reference_after_churn() {
        // insert three, remove the middle key, re-insert with new paths:
        // the surviving set must still match a from-scratch reference run
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let a = vec![
            Path::new(vec![n("1"), n("2"), n("4")]),
            Path::new(vec![n("1"), n("2"), n("3"), n("4")]),
        ];
        let b = vec![Path::new(vec![n("1"), n("2"), n("3")])];
        let c = vec![Path::new(vec![n("4"), n("3"), n("2")])];
        let mut eng = AllocEngine::new(&topo);
        eng.insert(1, &a).unwrap();
        eng.insert(2, &b).unwrap();
        eng.insert(3, &c).unwrap();
        eng.allocate();
        assert_eq!(eng.remove(2), Some(1));
        assert_eq!(eng.remove(2), None, "double remove is a no-op");
        // the freed slot is recycled for the next insert
        let slot = eng.insert(9, &b).unwrap();
        assert_eq!(slot, 1);
        eng.allocate();
        let reference = max_min_allocate(&topo, &[a, c, b]); // key order 1, 3, 9
        assert_eq!(eng.flow_rates(), reference.flow_rates.as_slice());
        assert_eq!(eng.dir_used(), reference.dir_used.as_slice());
        assert_eq!(eng.keys(), &[1, 3, 9]);
    }

    #[test]
    fn matches_reference_with_unroutable_flow() {
        let (topo, mut keyed) = fig3_keyed();
        keyed.push((7, Vec::new())); // unroutable: empty subpath list
        assert_matches_reference(&topo, &keyed);
    }

    #[test]
    fn matches_reference_on_shared_bottleneck() {
        let topo = Topology::dumbbell(
            4,
            Rate::mbps(100.0),
            Rate::mbps(10.0),
            SimDuration::from_millis(1),
        );
        let keyed: Vec<(u64, Vec<Path>)> = (0..4)
            .map(|i| {
                (
                    i as u64 * 3 + 1,
                    vec![Path::new(vec![
                        NodeId(i),
                        NodeId(4),
                        NodeId(5),
                        NodeId(6 + i),
                    ])],
                )
            })
            .collect();
        assert_matches_reference(&topo, &keyed);
    }

    #[test]
    fn unresolved_hop_is_a_typed_error_and_leaks_nothing() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let mut eng = AllocEngine::new(&topo);
        let bad = vec![Path::new(vec![n("1"), n("4")])];
        let err = eng.insert(1, &bad).unwrap_err();
        assert_eq!(err.from, n("1"));
        assert_eq!(err.to, n("4"));
        assert!(eng.is_empty());
        // the slot probed by the failed insert is reusable
        eng.insert(1, &[Path::new(vec![n("1"), n("2")])]).unwrap();
        eng.allocate();
        assert_eq!(eng.len(), 1);
        assert!((eng.flow_rates()[0] - 10e6).abs() < 1.0);
        assert_eq!(eng.paths.capacity(), 1, "failed insert left no slot behind");
    }

    #[test]
    fn empty_active_set_allocates_to_nothing() {
        let topo = Topology::fig3();
        let mut eng = AllocEngine::new(&topo);
        eng.allocate();
        assert!(eng.flow_rates().is_empty());
        assert!(eng.dir_used().iter().all(|&u| u == 0.0));
        assert_eq!(eng.mean_utilisation(), 0.0);
    }

    #[test]
    fn accumulate_channel_utilisation_matches_reference_weighting() {
        let (topo, keyed) = fig3_keyed();
        let mut eng = AllocEngine::new(&topo);
        for (k, p) in &keyed {
            eng.insert(*k, p).unwrap();
        }
        eng.allocate();
        let flows: Vec<Vec<Path>> = {
            let mut s = keyed.clone();
            s.sort_by_key(|(k, _)| *k);
            s.into_iter().map(|(_, p)| p).collect()
        };
        let reference = max_min_allocate(&topo, &flows);
        let dt = 0.25;
        let mut acc = vec![0.0; topo.link_count() * 2];
        eng.accumulate_channel_utilisation(dt, &mut acc);
        let want: Vec<f64> = reference
            .dir_utilisation(&topo)
            .into_iter()
            .map(|u| u * dt)
            .collect();
        assert_eq!(acc, want);
    }
}
