//! Routing strategies: how a flow's subpath set is constructed.
//!
//! The three contenders of Fig. 4a:
//!
//! * [`SinglePathStrategy`] (SP) — the hop-count shortest path, ties broken
//!   deterministically. The paper's e2e baseline.
//! * [`EcmpStrategy`] — one of the equal-cost shortest paths, chosen by a
//!   per-flow hash (RFC 2992 behaviour).
//! * [`InrpStrategy`] (URP in the figure) — the shortest path *plus*
//!   detour-spliced subpaths around each of its links, built from the
//!   [`DetourTable`]: 1-hop detours, and — matching the Fig. 4 setup,
//!   "nodes on the detour path can further detour, but for one extra hop
//!   only" — 2-hop detours. Subpaths are preference-ordered by stretch so
//!   the fluid allocator engages detours only when the primary saturates.

use inrpp_topology::detour::DetourTable;
use inrpp_topology::ecmp::{all_shortest_paths, hash_select};
use inrpp_topology::graph::{NodeId, Topology};
use inrpp_topology::kshort::edge_disjoint_paths;
use inrpp_topology::spath::{cost, shortest_path, Path};

/// A source of per-flow subpath sets.
pub trait RoutingStrategy {
    /// Short display name ("SP", "ECMP", "URP").
    fn name(&self) -> &'static str;

    /// Preference-ordered subpaths for a flow `src -> dst` with hash key
    /// `flow_key`. Empty when `dst` is unreachable.
    fn paths_for(&self, topo: &Topology, src: NodeId, dst: NodeId, flow_key: u64) -> Vec<Path>;
}

/// Single shortest path (hop count) — the paper's SP baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinglePathStrategy;

impl RoutingStrategy for SinglePathStrategy {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn paths_for(&self, topo: &Topology, src: NodeId, dst: NodeId, _key: u64) -> Vec<Path> {
        shortest_path(topo, src, dst, &cost::hops)
            .map(|p| vec![p])
            .unwrap_or_default()
    }
}

/// Equal-cost multipath: per-flow hash over the shortest-path set.
#[derive(Debug, Clone, Copy)]
pub struct EcmpStrategy {
    /// Cap on enumerated equal-cost paths (dense cores explode otherwise).
    pub max_paths: usize,
}

impl Default for EcmpStrategy {
    fn default() -> Self {
        EcmpStrategy { max_paths: 16 }
    }
}

impl RoutingStrategy for EcmpStrategy {
    fn name(&self) -> &'static str {
        "ECMP"
    }

    fn paths_for(&self, topo: &Topology, src: NodeId, dst: NodeId, key: u64) -> Vec<Path> {
        let set = all_shortest_paths(topo, src, dst, self.max_paths);
        if set.is_empty() {
            return Vec::new();
        }
        vec![hash_select(&set, key).clone()]
    }
}

/// MPTCP-style end-to-end multipath: each flow pools over up to
/// `max_subflows` **edge-disjoint end-to-end paths** — the paper's
/// "e2eRPP" regime (Fig. 2 ii). Unlike INRP, pooling happens only between
/// the endpoints' full paths; there is no in-network, per-link detouring.
#[derive(Debug, Clone, Copy)]
pub struct MptcpStrategy {
    /// Maximum concurrent subflows per connection.
    pub max_subflows: usize,
}

impl Default for MptcpStrategy {
    fn default() -> Self {
        MptcpStrategy { max_subflows: 4 }
    }
}

impl RoutingStrategy for MptcpStrategy {
    fn name(&self) -> &'static str {
        "MPTCP"
    }

    fn paths_for(&self, topo: &Topology, src: NodeId, dst: NodeId, _key: u64) -> Vec<Path> {
        edge_disjoint_paths(topo, src, dst, self.max_subflows.max(1), &cost::hops)
    }
}

/// Configuration for the INRP strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InrpConfig {
    /// Use 1-hop detours around saturated links.
    pub one_hop_detours: bool,
    /// Allow the "one extra hop" recursion (2-hop detours).
    pub two_hop_detours: bool,
    /// Max detour alternatives considered per primary-path link.
    pub detours_per_link: usize,
    /// Max total subpaths per flow (primary included).
    pub max_subpaths: usize,
}

impl Default for InrpConfig {
    fn default() -> Self {
        InrpConfig {
            one_hop_detours: true,
            two_hop_detours: true,
            detours_per_link: 3,
            max_subpaths: 8,
        }
    }
}

/// INRP / URP: shortest path plus detour-spliced subpaths.
///
/// Holds the precomputed [`DetourTable`] for its topology; building it per
/// flow would dominate runtime.
#[derive(Debug, Clone)]
pub struct InrpStrategy {
    config: InrpConfig,
    table: DetourTable,
}

impl InrpStrategy {
    /// Build for `topo` with `config`.
    pub fn new(topo: &Topology, config: InrpConfig) -> Self {
        InrpStrategy {
            config,
            table: DetourTable::build(topo, config.detours_per_link.max(1)),
        }
    }

    /// Build with the default configuration.
    pub fn with_defaults(topo: &Topology) -> Self {
        InrpStrategy::new(topo, InrpConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> InrpConfig {
        self.config
    }
}

impl RoutingStrategy for InrpStrategy {
    fn name(&self) -> &'static str {
        "URP"
    }

    fn paths_for(&self, topo: &Topology, src: NodeId, dst: NodeId, _key: u64) -> Vec<Path> {
        let Some(primary) = shortest_path(topo, src, dst, &cost::hops) else {
            return Vec::new();
        };
        let mut out = vec![primary.clone()];
        if !self.config.one_hop_detours || primary.hops() == 0 {
            return out;
        }
        // Candidate detour-spliced variants around every primary link.
        let mut candidates: Vec<Path> = Vec::new();
        let nodes = primary.nodes();
        for w in nodes.windows(2) {
            let (u, v) = (w[0], w[1]);
            let link = topo
                .link_between(u, v)
                .expect("primary path hops are links");
            let per_link = if self.config.two_hop_detours {
                self.config.detours_per_link
            } else {
                // only 1-hop entries: cap the request so 2-hop never surfaces
                self.table
                    .one_hop(link)
                    .len()
                    .min(self.config.detours_per_link)
            };
            for d in self.table.detour_paths(topo, link, u, v, per_link) {
                if !self.config.two_hop_detours && d.hops() > 2 {
                    continue;
                }
                let spliced = primary.splice(&d);
                // reject detours that revisit a node (would loop traffic)
                if spliced.is_simple() {
                    candidates.push(spliced);
                }
            }
        }
        // Preference order: shorter detours first; ties by node sequence
        // for determinism.
        candidates.sort_by(|a, b| {
            a.hops()
                .cmp(&b.hops())
                .then_with(|| a.nodes().cmp(b.nodes()))
        });
        candidates.dedup();
        for c in candidates {
            if out.len() >= self.config.max_subpaths {
                break;
            }
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_topology::rocketfuel::{generate_isp, Isp};

    fn fig3() -> Topology {
        Topology::fig3()
    }

    fn n(t: &Topology, s: &str) -> NodeId {
        t.node_by_name(s).unwrap()
    }

    #[test]
    fn sp_returns_one_shortest_path() {
        let t = fig3();
        let s = SinglePathStrategy;
        let ps = s.paths_for(&t, n(&t, "1"), n(&t, "4"), 0);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].hops(), 2);
        assert_eq!(s.name(), "SP");
    }

    #[test]
    fn sp_unreachable_is_empty() {
        let mut t = Topology::new("gap");
        let ids = t.add_nodes(2);
        assert!(SinglePathStrategy
            .paths_for(&t, ids[0], ids[1], 0)
            .is_empty());
    }

    #[test]
    fn ecmp_spreads_by_key() {
        // diamond with two equal paths
        let mut t = Topology::new("d");
        let ids = t.add_nodes(4);
        let c = inrpp_sim::units::Rate::mbps(10.0);
        let d = inrpp_sim::time::SimDuration::from_millis(1);
        t.add_link(ids[0], ids[1], c, d).unwrap();
        t.add_link(ids[0], ids[2], c, d).unwrap();
        t.add_link(ids[1], ids[3], c, d).unwrap();
        t.add_link(ids[2], ids[3], c, d).unwrap();
        let s = EcmpStrategy::default();
        let mut seen = std::collections::HashSet::new();
        for key in 0..64 {
            let ps = s.paths_for(&t, ids[0], ids[3], key);
            assert_eq!(ps.len(), 1);
            seen.insert(ps[0].nodes().to_vec());
        }
        assert_eq!(seen.len(), 2, "both equal-cost paths should be used");
    }

    #[test]
    fn inrp_includes_fig3_detour() {
        let t = fig3();
        let s = InrpStrategy::with_defaults(&t);
        let ps = s.paths_for(&t, n(&t, "1"), n(&t, "4"), 0);
        assert_eq!(s.name(), "URP");
        assert!(ps.len() >= 2, "expected primary + detour, got {ps:?}");
        assert_eq!(ps[0].hops(), 2, "primary first");
        let detour_nodes = [n(&t, "1"), n(&t, "2"), n(&t, "3"), n(&t, "4")];
        assert!(
            ps.iter().any(|p| p.nodes() == detour_nodes),
            "detour via 3 missing: {ps:?}"
        );
    }

    #[test]
    fn inrp_preference_order_is_stretch_sorted() {
        let t = generate_isp(Isp::Exodus, 1);
        let s = InrpStrategy::with_defaults(&t);
        let nodes: Vec<NodeId> = t.node_ids().collect();
        let mut checked = 0;
        for (i, &src) in nodes.iter().enumerate().step_by(7) {
            let dst = nodes[(i * 13 + 5) % nodes.len()];
            if src == dst {
                continue;
            }
            let ps = s.paths_for(&t, src, dst, 0);
            if ps.len() < 2 {
                continue;
            }
            checked += 1;
            for w in ps.windows(2).skip(1) {
                assert!(w[0].hops() <= w[1].hops(), "detours out of order");
            }
            assert!(ps.len() <= s.config().max_subpaths);
            for p in &ps {
                assert!(p.is_simple(), "non-simple subpath {p}");
                assert_eq!(p.source(), src);
                assert_eq!(p.target(), dst);
            }
        }
        assert!(checked > 0, "test never exercised a multi-subpath flow");
    }

    #[test]
    fn inrp_without_two_hop_keeps_short_detours_only() {
        let t = fig3();
        let cfg = InrpConfig {
            two_hop_detours: false,
            ..InrpConfig::default()
        };
        let s = InrpStrategy::new(&t, cfg);
        let ps = s.paths_for(&t, n(&t, "1"), n(&t, "4"), 0);
        // the via-3 detour is 1-hop (one intermediate), so it stays
        assert_eq!(ps.len(), 2);
        // all detours add exactly one hop
        for p in &ps[1..] {
            assert_eq!(p.hops(), ps[0].hops() + 1);
        }
    }

    #[test]
    fn inrp_detours_disabled_reduces_to_sp() {
        let t = fig3();
        let cfg = InrpConfig {
            one_hop_detours: false,
            ..InrpConfig::default()
        };
        let s = InrpStrategy::new(&t, cfg);
        let ps = s.paths_for(&t, n(&t, "1"), n(&t, "4"), 0);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn inrp_single_hop_flow() {
        let t = fig3();
        let s = InrpStrategy::with_defaults(&t);
        let ps = s.paths_for(&t, n(&t, "2"), n(&t, "4"), 0);
        assert!(!ps.is_empty());
        assert_eq!(ps[0].hops(), 1);
        // detour around the only link: 2-3-4
        assert!(ps.iter().any(|p| p.hops() == 2));
    }

    #[test]
    fn mptcp_pools_disjoint_paths() {
        let t = fig3();
        let s = MptcpStrategy::default();
        assert_eq!(s.name(), "MPTCP");
        // from node 2, two disjoint routes reach node 4
        let ps = s.paths_for(&t, n(&t, "2"), n(&t, "4"), 0);
        assert_eq!(ps.len(), 2);
        let l0: std::collections::HashSet<_> = ps[0].links(&t).into_iter().collect();
        let l1: std::collections::HashSet<_> = ps[1].links(&t).into_iter().collect();
        assert!(l0.is_disjoint(&l1));
        // from node 1 the single access link forces one subflow —
        // the multihoming limitation the paper calls out for e2eRPP
        let ps = s.paths_for(&t, n(&t, "1"), n(&t, "4"), 0);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn mptcp_vs_inrp_on_fig3() {
        // single-homed sources: MPTCP degenerates to SP while INRP can
        // still pool in-network — the paper's core Fig. 2 argument.
        use crate::allocator::max_min_allocate;
        let t = fig3();
        let src = n(&t, "1");
        let dst = n(&t, "4");
        let mptcp = MptcpStrategy::default().paths_for(&t, src, dst, 0);
        let inrp = InrpStrategy::with_defaults(&t).paths_for(&t, src, dst, 0);
        let a_mptcp = max_min_allocate(&t, &[mptcp]);
        let a_inrp = max_min_allocate(&t, &[inrp]);
        assert!(
            (a_mptcp.flow_rates[0] - 2e6).abs() < 1.0,
            "MPTCP capped at bottleneck"
        );
        assert!(
            (a_inrp.flow_rates[0] - 5e6).abs() < 1.0,
            "INRP pools to 5 Mbps"
        );
    }

    #[test]
    fn strategies_are_deterministic() {
        let t = generate_isp(Isp::Tiscali, 2);
        let s = InrpStrategy::with_defaults(&t);
        let a = s.paths_for(&t, NodeId(0), NodeId(5), 3);
        let b = s.paths_for(&t, NodeId(0), NodeId(5), 3);
        assert_eq!(a, b);
    }
}
