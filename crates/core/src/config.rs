//! Configuration for the INRPP mechanisms.
//!
//! Defaults follow the paper's prose where it commits to a value and are
//! conservative where it leaves the knob open (each such case is marked).

use inrpp_sim::time::SimDuration;
use inrpp_sim::units::ByteSize;

/// Tunables shared by the packet-level simulator, the phase machine and the
/// endpoint models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InrppConfig {
    /// Accounting interval `T_i` for the anticipated-rate estimator.
    ///
    /// The paper (§3.3, footnote 4): "a reasonable setting for `T_i` would
    /// be the average RTT of data chunks". This is the *initial* value; the
    /// estimator can track the measured RTT at runtime.
    pub interval: SimDuration,

    /// Anticipation window `A_c`: how many chunks beyond the next one a
    /// receiver requests (§3.2, "a constant parameter set globally").
    pub anticipation: u64,

    /// Ratio `r_a / r` at which an interface leaves push-data for detour.
    /// The paper says "when `r_a ≈ r` or `r_a > r`"; 0.95 with hysteresis
    /// operationalises the ≈.
    pub detour_enter: f64,

    /// Ratio below which the interface returns to push-data (hysteresis to
    /// "avoid extensive link swapping", §4).
    pub detour_exit: f64,

    /// Custody-cache budget per router.
    pub cache_budget: ByteSize,

    /// Cache fill fraction at which back-pressure engages even while
    /// detours exist ("avoid extensive caching at the congested node").
    pub cache_pressure_threshold: f64,

    /// Maximum detour depth: 1 = one-hop detours only, 2 = the Fig. 4 setup
    /// ("nodes on the detour path can further detour, but for one extra
    /// hop only").
    pub max_detour_depth: u8,

    /// Whether routers exchange one-hop neighbour interface loads
    /// (§3.3 option i) or detour blindly (option ii).
    pub load_aware_detour: bool,

    /// Validity horizon of a back-pressure slow-down before it expires.
    pub backpressure_ttl: SimDuration,

    /// Fraction of link capacity data forwarding may use; the paper's
    /// footnote 3 suggests staying slightly below full rate "to be able
    /// to accommodate bursts".
    pub forwarding_headroom: f64,

    /// Hold detour decisions steady while an interface's phase is flapping
    /// (`inrpp::monitor`); off by default to match the paper's plain
    /// three-phase machine.
    pub flap_damping: bool,
}

impl Default for InrppConfig {
    fn default() -> Self {
        InrppConfig {
            interval: SimDuration::from_millis(100),
            anticipation: 16,
            detour_enter: 0.95,
            detour_exit: 0.85,
            cache_budget: ByteSize::mb(64),
            cache_pressure_threshold: 0.8,
            max_detour_depth: 2,
            load_aware_detour: true,
            backpressure_ttl: SimDuration::from_millis(200),
            forwarding_headroom: 1.0,
            flap_damping: false,
        }
    }
}

/// Validation error for [`InrppConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid INRPP config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl InrppConfig {
    /// Check internal consistency (threshold ordering, positive interval…).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.interval.is_zero() {
            return Err(ConfigError("interval T_i must be positive".into()));
        }
        if !(0.0 < self.detour_exit && self.detour_exit <= self.detour_enter) {
            return Err(ConfigError(format!(
                "need 0 < detour_exit <= detour_enter, got {} / {}",
                self.detour_exit, self.detour_enter
            )));
        }
        if !(0.0..=1.0).contains(&self.cache_pressure_threshold) {
            return Err(ConfigError(format!(
                "cache_pressure_threshold must be in [0,1], got {}",
                self.cache_pressure_threshold
            )));
        }
        if self.max_detour_depth == 0 {
            return Err(ConfigError(
                "max_detour_depth 0 disables INRPP entirely; use the SP baseline instead".into(),
            ));
        }
        if !(0.0 < self.forwarding_headroom && self.forwarding_headroom <= 1.0) {
            return Err(ConfigError(format!(
                "forwarding_headroom must be in (0,1], got {}",
                self.forwarding_headroom
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
// The tests below deliberately start from a valid default and break one
// field at a time, which is exactly the pattern this lint dislikes.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(InrppConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_thresholds_rejected() {
        let mut c = InrppConfig::default();
        c.detour_exit = 0.99;
        c.detour_enter = 0.5;
        assert!(c.validate().is_err());
        let mut c = InrppConfig::default();
        c.detour_exit = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_interval_rejected() {
        let mut c = InrppConfig::default();
        c.interval = SimDuration::ZERO;
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("T_i"));
    }

    #[test]
    fn cache_pressure_bounds() {
        let mut c = InrppConfig::default();
        c.cache_pressure_threshold = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_detour_depth_rejected() {
        let mut c = InrppConfig::default();
        c.max_detour_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn headroom_bounds() {
        let mut c = InrppConfig::default();
        c.forwarding_headroom = 0.0;
        assert!(c.validate().is_err());
        c.forwarding_headroom = 1.1;
        assert!(c.validate().is_err());
        c.forwarding_headroom = 0.9;
        assert!(c.validate().is_ok());
    }
}
