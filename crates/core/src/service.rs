//! Service mode: long-lived, steppable simulation sessions.
//!
//! One-shot [`Session::run`](crate::session::Session::run) answers
//! "what happened over this window"; service mode answers "what is
//! happening *now*" for a run that is still in flight. A
//! [`ServiceSession`] is an open simulation that can be
//!
//! * **advanced** to an absolute instant ([`ServiceSession::advance`]),
//!   with probe hooks firing in event order and an incremental
//!   [`RunReport`] snapshot emitted through
//!   [`Probe::on_report`] at every
//!   boundary;
//! * **fed** additional traffic while running
//!   ([`ServiceSession::feed`]) — the streaming-ingestion half of
//!   trace-driven operation (see [`crate::source`] for where the
//!   transfers come from);
//! * **checkpointed** ([`ServiceSession::checkpoint`]) into a
//!   self-describing [`Checkpoint`] envelope, and later resumed
//!   **bit-identically**: a resumed run produces the same reports and
//!   probe streams, byte for byte (`f64::to_bits` equality), as the
//!   uninterrupted run — the contract `tests/checkpoint_resume.rs`
//!   gates in CI.
//!
//! The envelope embeds the session's
//! [`fingerprint`](crate::session::Session::fingerprint) so a resume
//! against a different spec (other topology, traffic, strategy,
//! horizon, or seed) fails with
//! [`SessionError::CheckpointMismatch`] instead of silently diverging.
//!
//! [`FluidService`] is the fluid-engine implementation (full-state
//! snapshot); the packet engine's lives in
//! `inrpp_packetsim::session::PacketService` (deterministic replay log
//! — see its docs for the trade-off). `inrpp serve` in the bench crate
//! exposes both over line-delimited JSON on stdio.

use std::collections::HashMap;

use inrpp_flowsim::sim::{FlowRun, FlowSim, FlowSimConfig};
use inrpp_flowsim::strategy::RoutingStrategy;
use inrpp_sim::snap::Snap;
use inrpp_sim::snap::{SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::SimTime;

use crate::session::{
    assemble_fluid_report, EngineKind, FlowRecord, FlowSpec, FluidAdapter, Probe, ProbeSet,
    RunReport, Session, SessionError, Transfer, Workload,
};

/// Envelope magic: identifies the container, not the body layout (the
/// per-engine body carries its own structure).
const CHECKPOINT_MAGIC: &str = "inrpp-ckpt v1";

// ===================================================================
// Checkpoint envelope
// ===================================================================

/// A serialised engine state, wrapped with enough identity to refuse a
/// wrong resume: which engine wrote it and the
/// [`Session::fingerprint`] of the spec it was taken against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Engine that produced the body.
    pub engine: EngineKind,
    /// [`Session::fingerprint`] of the originating session spec.
    pub fingerprint: u64,
    body: Vec<u8>,
}

impl Checkpoint {
    /// Wrap an engine-serialised body.
    pub fn new(engine: EngineKind, fingerprint: u64, body: Vec<u8>) -> Self {
        Checkpoint {
            engine,
            fingerprint,
            body,
        }
    }

    /// The engine-specific state bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serialise the envelope (magic + identity + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_str(CHECKPOINT_MAGIC);
        w.put_u8(match self.engine {
            EngineKind::Fluid => 0,
            EngineKind::Packet => 1,
        });
        w.put_u64(self.fingerprint);
        w.put_bytes(&self.body);
        w.into_bytes()
    }

    /// Parse an envelope produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SessionError> {
        let corrupt = |e: SnapError| {
            SessionError::CheckpointMismatch(format!("corrupt checkpoint envelope: {e}"))
        };
        let mut r = SnapReader::new(bytes);
        let magic = r.get_str().map_err(corrupt)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(SessionError::CheckpointMismatch(format!(
                "not an inrpp checkpoint (header {magic:?})"
            )));
        }
        let engine = match r.get_u8().map_err(corrupt)? {
            0 => EngineKind::Fluid,
            1 => EngineKind::Packet,
            other => {
                return Err(SessionError::CheckpointMismatch(format!(
                    "unknown engine tag {other}"
                )))
            }
        };
        let fingerprint = r.get_u64().map_err(corrupt)?;
        let body = r.get_bytes().map_err(corrupt)?.to_vec();
        r.finish().map_err(corrupt)?;
        Ok(Checkpoint {
            engine,
            fingerprint,
            body,
        })
    }

    /// Check this checkpoint belongs to `engine` + `session` before an
    /// engine attempts the (expensive) state rebuild.
    pub fn validate(&self, engine: EngineKind, session: &Session<'_>) -> Result<(), SessionError> {
        if self.engine != engine {
            return Err(SessionError::CheckpointMismatch(format!(
                "checkpoint was written by the {} engine, resume requested on {}",
                self.engine, engine
            )));
        }
        let expect = session.fingerprint();
        if self.fingerprint != expect {
            return Err(SessionError::CheckpointMismatch(format!(
                "session spec fingerprint {:016x} does not match the checkpoint's {:016x} \
                 (different topology, traffic, strategy, horizon, or seed)",
                expect, self.fingerprint
            )));
        }
        Ok(())
    }
}

// ===================================================================
// The stepping-session abstraction
// ===================================================================

/// An open, steppable simulation session — the service-mode counterpart
/// of [`crate::session::Engine`].
///
/// # Determinism contract
/// For a fixed session spec and a fixed *drive schedule* (the sequence
/// of `advance` boundaries and `feed` calls), the run is deterministic
/// and bit-identical to the equivalent one-shot run; and a checkpoint
/// taken at any boundary resumes bit-identically — same final
/// [`RunReport`], same probe stream from the boundary on.
pub trait ServiceSession {
    /// Which engine backs this session.
    fn kind(&self) -> EngineKind;

    /// The simulation clock.
    fn now(&self) -> SimTime;

    /// The hard stop.
    fn horizon(&self) -> SimTime;

    /// Process every event at or before `to` (clamped to the horizon),
    /// park the clock at the boundary, and emit one incremental
    /// [`RunReport`] through [`Probe::on_report`]. Returns the new
    /// clock value.
    fn advance(
        &mut self,
        to: SimTime,
        probes: &mut [&mut dyn Probe],
    ) -> Result<SimTime, SessionError>;

    /// Inject a transfer into the live run. Its `start` must not
    /// precede [`ServiceSession::now`].
    fn feed(&mut self, transfer: &Transfer) -> Result<(), SessionError>;

    /// A [`RunReport`] of the run *so far*, without perturbing it.
    fn snapshot(&self) -> RunReport;

    /// Serialise the current state into a resumable [`Checkpoint`].
    fn checkpoint(&self) -> Checkpoint;

    /// Drain the remaining events and produce the final report.
    fn finish(self: Box<Self>, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError>;
}

// ===================================================================
// Fluid-engine service
// ===================================================================

/// Owned inputs a [`FluidService`] borrows for its lifetime: the built
/// routing strategy and the materialised workload. Kept separate
/// because the underlying `FlowRun` borrows them (no self-referential
/// service struct); create one per open session and keep it alive
/// alongside the service.
pub struct FluidBacking {
    strategy: Box<dyn RoutingStrategy>,
    workload: Workload,
}

impl FluidBacking {
    /// Build the backing for `session` (strategy instantiated against
    /// the session topology, traffic materialised as a fluid workload).
    pub fn for_session(session: &Session<'_>) -> Self {
        FluidBacking {
            strategy: session.strategy().build_fluid(session.topology()),
            workload: session.fluid_workload().into_owned(),
        }
    }

    /// A backing with no upfront traffic — service runs fed entirely
    /// through [`ServiceSession::feed`] / a
    /// [`crate::source::WorkloadSource`].
    pub fn empty_for(session: &Session<'_>) -> Self {
        FluidBacking {
            strategy: session.strategy().build_fluid(session.topology()),
            workload: Workload {
                flows: Vec::new(),
                offered_bits: 0.0,
            },
        }
    }
}

/// The fluid engine as a [`ServiceSession`]. Checkpoints carry the
/// complete run state (engine queue, active flows, accumulators, fed
/// extras, per-flow records), so resume cost is independent of how much
/// simulated time has elapsed.
pub struct FluidService<'a> {
    run: FlowRun<'a>,
    records: Vec<FlowRecord>,
    index: HashMap<u64, usize>,
    fingerprint: u64,
}

impl<'a> FluidService<'a> {
    /// Open a stepping session on the fluid engine. `backing` must
    /// outlive the service (it owns what the run borrows).
    pub fn open(session: &Session<'a>, backing: &'a FluidBacking) -> Result<Self, SessionError> {
        if session.workers() > 1 {
            return Err(SessionError::InvalidConfig(format!(
                "the fluid engine is single-threaded; workers({}) is only \
                 supported by the packet engine",
                session.workers()
            )));
        }
        let run = FlowSim::new(
            session.topology(),
            backing.strategy.as_ref(),
            &backing.workload,
            FlowSimConfig {
                horizon: session.horizon(),
            },
        )
        .with_faults(session.faults().clone())
        .start();
        Ok(FluidService {
            run,
            records: Vec::new(),
            index: HashMap::new(),
            fingerprint: session.fingerprint(),
        })
    }

    /// Rebuild a session from a [`Checkpoint`] taken by
    /// [`ServiceSession::checkpoint`] on an identical session spec.
    /// Continues bit-identically from the checkpoint instant.
    pub fn resume(
        session: &Session<'a>,
        backing: &'a FluidBacking,
        checkpoint: &Checkpoint,
    ) -> Result<Self, SessionError> {
        checkpoint.validate(EngineKind::Fluid, session)?;
        let corrupt = |e: SnapError| {
            SessionError::CheckpointMismatch(format!("corrupt fluid checkpoint: {e}"))
        };
        let mut r = SnapReader::new(checkpoint.body());
        let records = Vec::<FlowRecord>::decode(&mut r).map_err(corrupt)?;
        let run = FlowRun::restore(
            session.topology(),
            backing.strategy.as_ref(),
            &backing.workload,
            session.faults().clone(),
            &mut r,
        )
        .map_err(corrupt)?;
        r.finish().map_err(corrupt)?;
        let index = records
            .iter()
            .enumerate()
            .map(|(i, rec)| (rec.flow, i))
            .collect();
        Ok(FluidService {
            run,
            records,
            index,
            fingerprint: checkpoint.fingerprint,
        })
    }

    fn consume(mut self, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        let mut adapter = FluidAdapter {
            probes: ProbeSet::new(probes),
            records: &mut self.records,
            index: &mut self.index,
        };
        let report = self.run.finish(&mut adapter);
        Ok(assemble_fluid_report(report, self.records))
    }

    /// Finish without boxing (convenience over the trait's
    /// `Box<Self>`-consuming [`ServiceSession::finish`]).
    pub fn finish_run(self, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        self.consume(probes)
    }
}

impl ServiceSession for FluidService<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Fluid
    }

    fn now(&self) -> SimTime {
        self.run.now()
    }

    fn horizon(&self) -> SimTime {
        self.run.horizon()
    }

    fn advance(
        &mut self,
        to: SimTime,
        probes: &mut [&mut dyn Probe],
    ) -> Result<SimTime, SessionError> {
        let now = {
            let mut adapter = FluidAdapter {
                probes: ProbeSet::new(probes),
                records: &mut self.records,
                index: &mut self.index,
            };
            self.run.run_until(to, &mut adapter)
        };
        let snap = self.snapshot();
        ProbeSet::new(probes).report(&snap);
        Ok(now)
    }

    fn feed(&mut self, transfer: &Transfer) -> Result<(), SessionError> {
        if transfer.chunks == 0 {
            return Err(SessionError::InvalidTransfer(format!(
                "flow {} has zero chunks",
                transfer.flow
            )));
        }
        if transfer.src == transfer.dst {
            return Err(SessionError::InvalidTransfer(format!(
                "flow {} endpoints coincide ({})",
                transfer.flow, transfer.src
            )));
        }
        if self.index.contains_key(&transfer.flow) || self.run.knows_flow(transfer.flow) {
            return Err(SessionError::DuplicateFlow(transfer.flow));
        }
        self.run
            .feed(FlowSpec {
                id: transfer.flow,
                src: transfer.src,
                dst: transfer.dst,
                size_bits: transfer.size_bits(),
                arrival: transfer.start,
            })
            .map_err(|_| {
                SessionError::InvalidTransfer(format!(
                    "flow {} starts at {:?}, before the clock ({:?})",
                    transfer.flow,
                    transfer.start,
                    self.run.now()
                ))
            })
    }

    fn snapshot(&self) -> RunReport {
        assemble_fluid_report(self.run.report_now(), self.records.clone())
    }

    fn checkpoint(&self) -> Checkpoint {
        let mut w = SnapWriter::new();
        self.records.encode(&mut w);
        self.run.encode_checkpoint(&mut w);
        Checkpoint::new(EngineKind::Fluid, self.fingerprint, w.into_bytes())
    }

    fn finish(self: Box<Self>, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        (*self).consume(probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionStrategy;
    use inrpp_sim::time::SimDuration;
    use inrpp_sim::units::ByteSize;
    use inrpp_topology::graph::Topology;

    fn session(topo: &Topology) -> Session<'_> {
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let chunk = ByteSize::bytes(1250);
        Session::builder()
            .topology(topo)
            .transfers(vec![
                Transfer::for_object_bits(1, n("1"), n("4"), 5e6, chunk, SimTime::ZERO),
                Transfer::for_object_bits(2, n("1"), n("3"), 5e6, chunk, SimTime::from_millis(500)),
            ])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(30))
            .build()
            .expect("valid session")
    }

    fn bits_eq(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits()
    }

    #[test]
    fn service_run_matches_one_shot_run() {
        let topo = Topology::fig3();
        let s = session(&topo);
        let one_shot = s.run().unwrap();
        let backing = FluidBacking::for_session(&s);
        let mut svc = FluidService::open(&s, &backing).unwrap();
        svc.advance(SimTime::from_secs(1), &mut []).unwrap();
        svc.advance(SimTime::from_secs(4), &mut []).unwrap();
        let stepped = svc.finish_run(&mut []).unwrap();
        assert_eq!(one_shot.aggregates, stepped.aggregates);
        assert_eq!(one_shot.flows, stepped.flows);
        assert_eq!(one_shot.channel_utilisation, stepped.channel_utilisation);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let topo = Topology::fig3();
        let s = session(&topo);
        let one_shot = s.run().unwrap();

        let backing = FluidBacking::for_session(&s);
        let mut head = FluidService::open(&s, &backing).unwrap();
        head.advance(SimTime::from_millis(800), &mut []).unwrap();
        let ckpt = head.checkpoint();
        drop(head);

        // envelope round-trips through bytes
        let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let tail = FluidService::resume(&s, &backing, &ckpt).unwrap();
        assert_eq!(tail.now(), SimTime::from_millis(800));
        let resumed = tail.finish_run(&mut []).unwrap();
        assert_eq!(one_shot.aggregates, resumed.aggregates);
        assert_eq!(one_shot.flows, resumed.flows);
        assert!(bits_eq(
            one_shot.aggregates.delivered_bits,
            resumed.aggregates.delivered_bits
        ));

        // a restored service re-checkpoints byte-identically
        let again = FluidService::resume(&s, &backing, &ckpt).unwrap();
        assert_eq!(again.checkpoint().to_bytes(), ckpt.to_bytes());
    }

    #[test]
    fn resume_rejects_wrong_spec_and_engine() {
        let topo = Topology::fig3();
        let s = session(&topo);
        let backing = FluidBacking::for_session(&s);
        let svc = FluidService::open(&s, &backing).unwrap();
        let ckpt = svc.checkpoint();

        // different horizon -> different fingerprint
        let n = |x: &str| topo.node_by_name(x).unwrap();
        let other = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer::for_object_bits(
                1,
                n("1"),
                n("4"),
                5e6,
                ByteSize::bytes(1250),
                SimTime::ZERO,
            )])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(10))
            .build()
            .unwrap();
        let other_backing = FluidBacking::for_session(&other);
        let err = FluidService::resume(&other, &other_backing, &ckpt)
            .err()
            .expect("fingerprint mismatch must be rejected");
        assert!(matches!(err, SessionError::CheckpointMismatch(_)), "{err}");

        // wrong engine tag
        let packet = Checkpoint::new(EngineKind::Packet, s.fingerprint(), ckpt.body().to_vec());
        let err = FluidService::resume(&s, &backing, &packet)
            .err()
            .expect("engine mismatch must be rejected");
        assert!(matches!(err, SessionError::CheckpointMismatch(_)), "{err}");

        // corrupt envelope bytes
        let bytes = ckpt.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn feed_and_on_report_stream_through_the_service() {
        struct Reports(Vec<(u64, usize)>);
        impl Probe for Reports {
            fn on_report(&mut self, report: &RunReport) {
                self.0
                    .push((report.aggregates.duration.as_nanos(), report.flows.len()));
            }
        }

        let topo = Topology::fig3();
        let s = session(&topo);
        let backing = FluidBacking::for_session(&s);
        let mut svc = FluidService::open(&s, &backing).unwrap();
        let mut reports = Reports(Vec::new());
        svc.advance(SimTime::from_secs(1), &mut [&mut reports])
            .unwrap();
        let n = |x: &str| topo.node_by_name(x).unwrap();
        let fed = Transfer::for_object_bits(
            9,
            n("1"),
            n("3"),
            1e6,
            ByteSize::bytes(1250),
            SimTime::from_secs(2),
        );
        svc.feed(&fed).unwrap();
        // duplicate id and past start are typed errors
        assert_eq!(svc.feed(&fed).unwrap_err(), SessionError::DuplicateFlow(9));
        let past = Transfer {
            flow: 10,
            start: SimTime::from_millis(500),
            ..fed
        };
        assert!(matches!(
            svc.feed(&past).unwrap_err(),
            SessionError::InvalidTransfer(_)
        ));
        svc.advance(SimTime::from_secs(3), &mut [&mut reports])
            .unwrap();
        let report = svc.finish_run(&mut []).unwrap();
        assert_eq!(report.aggregates.arrived_flows, 3);
        assert_eq!(reports.0.len(), 2, "one on_report per advance boundary");
        assert!(reports.0[1].1 >= 3, "fed flow visible in the snapshot");
    }
}
