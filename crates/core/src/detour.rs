//! Detour selection: where does the excess go?
//!
//! When an interface enters the detour phase it must place its excess rate
//! onto alternative sub-paths around the congested link. The paper
//! describes two modes (§3.3):
//!
//! * **load-aware** (option i): neighbours periodically advertise their
//!   interface loads, so the router assigns to each detour path "exactly
//!   as much traffic as this detour path can accommodate";
//! * **blind** (option ii): no load information; excess is spread evenly
//!   and downstream nodes may detour again.
//!
//! Depth policy follows the Fig. 4 setup: depth 1 uses 1-hop detours,
//! depth 2 additionally allows the "one extra hop" paths.

use std::collections::HashMap;

use inrpp_sim::time::SimTime;
use inrpp_sim::units::Rate;
use inrpp_topology::detour::DetourTable;
use inrpp_topology::graph::{LinkId, NodeId, Topology};
use inrpp_topology::spath::Path;

/// Advertised residual capacities of neighbour interfaces, keyed by the
/// directed pair `(from, to)`. Entries carry the advertisement time so
/// stale gossip can be aged out.
#[derive(Debug, Clone, Default)]
pub struct NeighborLoads {
    residual: HashMap<(NodeId, NodeId), (Rate, SimTime)>,
}

impl NeighborLoads {
    /// Empty map (blind operation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that channel `from -> to` advertised `residual` free capacity.
    pub fn advertise(&mut self, now: SimTime, from: NodeId, to: NodeId, residual: Rate) {
        self.residual.insert((from, to), (residual, now));
    }

    /// The advertised residual for `from -> to`, if any.
    pub fn residual(&self, from: NodeId, to: NodeId) -> Option<Rate> {
        self.residual.get(&(from, to)).map(|&(r, _)| r)
    }

    /// Drop advertisements older than `oldest`.
    pub fn expire(&mut self, oldest: SimTime) {
        self.residual.retain(|_, &mut (_, t)| t >= oldest);
    }

    /// Number of live advertisements.
    pub fn len(&self) -> usize {
        self.residual.len()
    }

    /// True when no advertisements are known.
    pub fn is_empty(&self) -> bool {
        self.residual.is_empty()
    }
}

/// A detour path together with the rate assigned onto it.
#[derive(Debug, Clone, PartialEq)]
pub struct DetourAssignment {
    /// The bypass path (starts at the congested link's upstream node, ends
    /// at its downstream node).
    pub path: Path,
    /// Rate assigned to this path.
    pub rate: Rate,
}

/// Policy + precomputed table for picking detours on one topology.
#[derive(Debug, Clone)]
pub struct DetourSelector {
    table: DetourTable,
    load_aware: bool,
    max_depth: u8,
    max_paths: usize,
}

impl DetourSelector {
    /// Build a selector for `topo`.
    ///
    /// # Panics
    /// Panics if `max_depth` is 0 (that would disable detouring; use the
    /// baseline strategies instead).
    pub fn new(topo: &Topology, load_aware: bool, max_depth: u8, max_paths: usize) -> Self {
        assert!(max_depth >= 1, "detour depth must be at least 1");
        DetourSelector {
            table: DetourTable::build(topo, max_paths.max(1)),
            load_aware,
            max_depth,
            max_paths: max_paths.max(1),
        }
    }

    /// Whether this selector uses neighbour load information.
    pub fn is_load_aware(&self) -> bool {
        self.load_aware
    }

    /// Candidate bypass paths around `link` traversed `from -> to`,
    /// shortest first, respecting the depth policy.
    pub fn candidates(&self, topo: &Topology, link: LinkId, from: NodeId, to: NodeId) -> Vec<Path> {
        self.table
            .detour_paths(topo, link, from, to, self.max_paths)
            .into_iter()
            .filter(|p| p.hops() <= self.max_depth as usize + 1)
            .collect()
    }

    /// True when at least one bypass exists (used by the phase machine's
    /// `detour_available` input).
    pub fn has_detour(&self, topo: &Topology, link: LinkId, from: NodeId, to: NodeId) -> bool {
        !self.candidates(topo, link, from, to).is_empty()
    }

    /// Assign `excess` onto detour paths.
    ///
    /// Load-aware mode fills paths in preference order up to the minimum
    /// advertised residual along each; rate that fits nowhere is *not*
    /// assigned (the caller must cache it and push back). Blind mode
    /// spreads the excess equally across all candidates with no capacity
    /// check — the paper's option ii, where "data may find itself before
    /// another congested link".
    pub fn select(
        &self,
        topo: &Topology,
        link: LinkId,
        from: NodeId,
        to: NodeId,
        excess: Rate,
        loads: &NeighborLoads,
    ) -> Vec<DetourAssignment> {
        let candidates = self.candidates(topo, link, from, to);
        if candidates.is_empty() || excess.is_zero() {
            return Vec::new();
        }
        if !self.load_aware {
            let share = excess / candidates.len() as f64;
            return candidates
                .into_iter()
                .map(|path| DetourAssignment { path, rate: share })
                .collect();
        }
        let mut remaining = excess;
        let mut out = Vec::new();
        for path in candidates {
            if remaining.is_zero() {
                break;
            }
            // Headroom = min advertised residual along the path; a hop with
            // no advertisement is assumed free only up to its capacity.
            let mut headroom = Rate::bps(f64::MAX / 4.0);
            for w in path.nodes().windows(2) {
                let hop = loads.residual(w[0], w[1]).unwrap_or_else(|| {
                    let l = topo
                        .link_between(w[0], w[1])
                        .expect("candidate paths are walkable");
                    topo.link(l).capacity
                });
                headroom = headroom.min(hop);
            }
            let take = headroom.min(remaining);
            if !take.is_zero() {
                remaining = remaining.saturating_sub(take);
                out.push(DetourAssignment { path, rate: take });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_sim::time::SimDuration;

    fn fig3() -> Topology {
        Topology::fig3()
    }

    fn ids(t: &Topology) -> (NodeId, NodeId, NodeId, NodeId) {
        (
            t.node_by_name("1").unwrap(),
            t.node_by_name("2").unwrap(),
            t.node_by_name("3").unwrap(),
            t.node_by_name("4").unwrap(),
        )
    }

    #[test]
    fn fig3_bottleneck_has_one_candidate() {
        let t = fig3();
        let (_, n2, n3, n4) = ids(&t);
        let sel = DetourSelector::new(&t, true, 2, 4);
        let link = t.link_between(n2, n4).unwrap();
        let cands = sel.candidates(&t, link, n2, n4);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].nodes(), &[n2, n3, n4]);
        assert!(sel.has_detour(&t, link, n2, n4));
    }

    #[test]
    fn access_link_has_no_detour() {
        let t = fig3();
        let (n1, n2, _, _) = ids(&t);
        let sel = DetourSelector::new(&t, true, 2, 4);
        let link = t.link_between(n1, n2).unwrap();
        assert!(!sel.has_detour(&t, link, n1, n2));
        assert!(sel
            .select(&t, link, n1, n2, Rate::mbps(1.0), &NeighborLoads::new())
            .is_empty());
    }

    #[test]
    fn load_aware_respects_advertised_residuals() {
        // Fig. 3 scenario: 3 Mbps excess over link 2-4, detour via 3 whose
        // second hop (3->4) advertises only 3 Mbps free.
        let t = fig3();
        let (_, n2, n3, n4) = ids(&t);
        let sel = DetourSelector::new(&t, true, 2, 4);
        let link = t.link_between(n2, n4).unwrap();
        let mut loads = NeighborLoads::new();
        loads.advertise(SimTime::ZERO, n2, n3, Rate::mbps(3.0));
        loads.advertise(SimTime::ZERO, n3, n4, Rate::mbps(3.0));
        let picks = sel.select(&t, link, n2, n4, Rate::mbps(5.0), &loads);
        assert_eq!(picks.len(), 1);
        assert!((picks[0].rate.as_mbps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn load_aware_without_ads_uses_capacity() {
        let t = fig3();
        let (_, n2, n3, n4) = ids(&t);
        let sel = DetourSelector::new(&t, true, 2, 4);
        let link = t.link_between(n2, n4).unwrap();
        let picks = sel.select(&t, link, n2, n4, Rate::mbps(50.0), &NeighborLoads::new());
        // capacity of 3-4 is 3 Mbps -> at most 3 Mbps assigned
        assert_eq!(picks.len(), 1);
        assert!((picks[0].rate.as_mbps() - 3.0).abs() < 1e-9);
        let _ = n3;
    }

    #[test]
    fn blind_mode_splits_evenly_without_checks() {
        let t = Topology::full_mesh(5, Rate::mbps(10.0), SimDuration::from_millis(1));
        let sel = DetourSelector::new(&t, false, 1, 3);
        let link = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let picks = sel.select(
            &t,
            link,
            NodeId(0),
            NodeId(1),
            Rate::mbps(30.0),
            &NeighborLoads::new(),
        );
        assert_eq!(picks.len(), 3);
        for p in &picks {
            assert!((p.rate.as_mbps() - 10.0).abs() < 1e-9);
        }
        assert!(!sel.is_load_aware());
    }

    #[test]
    fn depth_one_excludes_two_hop_paths() {
        // quad: detour around a-b requires 2 intermediates
        let mut t = Topology::new("quad");
        let n = t.add_nodes(4);
        let c = Rate::mbps(10.0);
        let d = SimDuration::from_millis(1);
        t.add_link(n[0], n[1], c, d).unwrap();
        t.add_link(n[0], n[2], c, d).unwrap();
        t.add_link(n[2], n[3], c, d).unwrap();
        t.add_link(n[3], n[1], c, d).unwrap();
        let link = t.link_between(n[0], n[1]).unwrap();
        let shallow = DetourSelector::new(&t, true, 1, 4);
        assert!(!shallow.has_detour(&t, link, n[0], n[1]));
        let deep = DetourSelector::new(&t, true, 2, 4);
        assert!(deep.has_detour(&t, link, n[0], n[1]));
    }

    #[test]
    fn zero_excess_assigns_nothing() {
        let t = fig3();
        let (_, n2, _, n4) = ids(&t);
        let sel = DetourSelector::new(&t, true, 2, 4);
        let link = t.link_between(n2, n4).unwrap();
        assert!(sel
            .select(&t, link, n2, n4, Rate::ZERO, &NeighborLoads::new())
            .is_empty());
    }

    #[test]
    fn neighbor_loads_expire() {
        let mut loads = NeighborLoads::new();
        loads.advertise(SimTime::from_secs(1), NodeId(0), NodeId(1), Rate::mbps(5.0));
        loads.advertise(SimTime::from_secs(3), NodeId(1), NodeId(2), Rate::mbps(7.0));
        assert_eq!(loads.len(), 2);
        loads.expire(SimTime::from_secs(2));
        assert_eq!(loads.len(), 1);
        assert!(loads.residual(NodeId(0), NodeId(1)).is_none());
        assert!(loads.residual(NodeId(1), NodeId(2)).is_some());
        assert!(!loads.is_empty());
    }

    #[test]
    fn advertisements_overwrite() {
        let mut loads = NeighborLoads::new();
        loads.advertise(SimTime::ZERO, NodeId(0), NodeId(1), Rate::mbps(5.0));
        loads.advertise(SimTime::from_secs(1), NodeId(0), NodeId(1), Rate::mbps(2.0));
        assert_eq!(loads.residual(NodeId(0), NodeId(1)), Some(Rate::mbps(2.0)));
        assert_eq!(loads.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let t = fig3();
        let _ = DetourSelector::new(&t, true, 0, 4);
    }
}
