//! Back-pressure signalling (§3.3, back-pressure phase).
//!
//! When an interface has no usable detour, the congested node caches the
//! overflow and "explicitly informs its one-hop upstream neighbour to
//! forward data at a slower requested rate". The informed neighbour then
//! faces the choice the paper spells out: find a longer detour of its own,
//! or propagate the notification one hop further — all the way to the
//! sender, which enters a closed loop for that flow.
//!
//! This module provides the message type, the per-node table of active
//! slow-downs (rate caps with expiry), and the decision helper.

use std::collections::HashMap;

use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::Rate;
use inrpp_topology::graph::{LinkId, NodeId};

/// A hop-by-hop slow-down notification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownMsg {
    /// The node that detected the congestion (owner of the bottleneck
    /// interface).
    pub origin: NodeId,
    /// The congested link.
    pub congested_link: LinkId,
    /// The rate the congested interface can actually serve; upstream must
    /// not exceed it for traffic heading into this link.
    pub allowed: Rate,
    /// Hops this notification has travelled upstream (0 at the origin's
    /// immediate neighbour).
    pub hops_travelled: u8,
}

impl SlowdownMsg {
    /// Copy of this message propagated one hop further upstream.
    pub fn propagated(self) -> SlowdownMsg {
        SlowdownMsg {
            hops_travelled: self.hops_travelled.saturating_add(1),
            ..self
        }
    }
}

/// What an upstream node does with a received slow-down (§3.3: "the
/// upstream neighbour node that has been informed of the congested link
/// has two options").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpstreamAction {
    /// Bypass the congested region with a (longer) detour of its own.
    Detour,
    /// Send the notification one hop further back.
    Propagate,
    /// The notification reached the data sender: enter the closed loop.
    SenderClosedLoop,
}

/// Decide the reaction per the paper's two options (plus sender terminal
/// case).
pub fn decide_upstream_action(is_sender: bool, can_detour: bool) -> UpstreamAction {
    if is_sender {
        UpstreamAction::SenderClosedLoop
    } else if can_detour {
        UpstreamAction::Detour
    } else {
        UpstreamAction::Propagate
    }
}

/// Active slow-downs at one node: per congested link, the allowed rate and
/// its expiry. Re-advertisement refreshes the entry; silence lets it lapse
/// (the closed loop is temporary, §3.3: "to avoid excessive caching").
#[derive(Debug, Clone, Default)]
pub struct BackpressureState {
    limits: HashMap<LinkId, (Rate, SimTime)>,
    received: u64,
    expired: u64,
}

impl BackpressureState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `msg` with time-to-live `ttl`. Refreshing an entry keeps the
    /// *lower* of old and new rate until expiry (conservative merge).
    pub fn apply(&mut self, now: SimTime, msg: &SlowdownMsg, ttl: SimDuration) {
        self.received += 1;
        let expiry = now.saturating_add(ttl);
        self.limits
            .entry(msg.congested_link)
            .and_modify(|(r, e)| {
                *r = r.min(msg.allowed);
                *e = expiry;
            })
            .or_insert((msg.allowed, expiry));
    }

    /// The live rate cap for traffic heading into `link`, if any.
    pub fn allowed_rate(&self, now: SimTime, link: LinkId) -> Option<Rate> {
        self.limits
            .get(&link)
            .and_then(|&(r, e)| (e > now).then_some(r))
    }

    /// Whether any cap is currently live.
    pub fn any_active(&self, now: SimTime) -> bool {
        self.limits.values().any(|&(_, e)| e > now)
    }

    /// Drop expired entries; call periodically.
    pub fn cleanup(&mut self, now: SimTime) {
        let before = self.limits.len();
        self.limits.retain(|_, &mut (_, e)| e > now);
        self.expired += (before - self.limits.len()) as u64;
    }

    /// `(messages received, entries expired)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.received, self.expired)
    }

    /// Number of entries (live or awaiting cleanup).
    pub fn len(&self) -> usize {
        self.limits.len()
    }

    /// True when no entries exist at all.
    pub fn is_empty(&self) -> bool {
        self.limits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(allowed_mbps: f64) -> SlowdownMsg {
        SlowdownMsg {
            origin: NodeId(2),
            congested_link: LinkId(1),
            allowed: Rate::mbps(allowed_mbps),
            hops_travelled: 0,
        }
    }

    #[test]
    fn apply_and_query() {
        let mut bp = BackpressureState::new();
        assert!(bp.is_empty());
        bp.apply(SimTime::ZERO, &msg(2.0), SimDuration::from_millis(200));
        assert_eq!(
            bp.allowed_rate(SimTime::from_millis(100), LinkId(1)),
            Some(Rate::mbps(2.0))
        );
        assert_eq!(bp.allowed_rate(SimTime::ZERO, LinkId(9)), None);
        assert!(bp.any_active(SimTime::from_millis(100)));
        assert_eq!(bp.len(), 1);
    }

    #[test]
    fn limits_expire() {
        let mut bp = BackpressureState::new();
        bp.apply(SimTime::ZERO, &msg(2.0), SimDuration::from_millis(200));
        assert_eq!(bp.allowed_rate(SimTime::from_millis(250), LinkId(1)), None);
        assert!(!bp.any_active(SimTime::from_millis(250)));
        bp.cleanup(SimTime::from_millis(250));
        assert!(bp.is_empty());
        assert_eq!(bp.stats(), (1, 1));
    }

    #[test]
    fn refresh_keeps_conservative_rate() {
        let mut bp = BackpressureState::new();
        bp.apply(SimTime::ZERO, &msg(2.0), SimDuration::from_millis(100));
        // later refresh with a *higher* rate: keep the lower cap but extend
        bp.apply(
            SimTime::from_millis(50),
            &msg(5.0),
            SimDuration::from_millis(100),
        );
        assert_eq!(
            bp.allowed_rate(SimTime::from_millis(120), LinkId(1)),
            Some(Rate::mbps(2.0))
        );
        // lower refresh tightens immediately
        bp.apply(
            SimTime::from_millis(60),
            &msg(1.0),
            SimDuration::from_millis(100),
        );
        assert_eq!(
            bp.allowed_rate(SimTime::from_millis(100), LinkId(1)),
            Some(Rate::mbps(1.0))
        );
    }

    #[test]
    fn propagation_counts_hops() {
        let m = msg(2.0);
        let p = m.propagated();
        assert_eq!(p.hops_travelled, 1);
        assert_eq!(p.propagated().hops_travelled, 2);
        assert_eq!(p.congested_link, m.congested_link);
        assert_eq!(p.allowed, m.allowed);
        // saturates rather than wraps
        let mut far = m;
        far.hops_travelled = u8::MAX;
        assert_eq!(far.propagated().hops_travelled, u8::MAX);
    }

    #[test]
    fn upstream_decision_logic() {
        assert_eq!(decide_upstream_action(false, true), UpstreamAction::Detour);
        assert_eq!(
            decide_upstream_action(false, false),
            UpstreamAction::Propagate
        );
        // the sender always terminates the chain, detour or not
        assert_eq!(
            decide_upstream_action(true, true),
            UpstreamAction::SenderClosedLoop
        );
        assert_eq!(
            decide_upstream_action(true, false),
            UpstreamAction::SenderClosedLoop
        );
    }

    #[test]
    fn independent_links_tracked_separately() {
        let mut bp = BackpressureState::new();
        bp.apply(SimTime::ZERO, &msg(2.0), SimDuration::from_secs(1));
        let other = SlowdownMsg {
            congested_link: LinkId(7),
            ..msg(4.0)
        };
        bp.apply(SimTime::ZERO, &other, SimDuration::from_secs(1));
        assert_eq!(
            bp.allowed_rate(SimTime::from_millis(1), LinkId(1)),
            Some(Rate::mbps(2.0))
        );
        assert_eq!(
            bp.allowed_rate(SimTime::from_millis(1), LinkId(7)),
            Some(Rate::mbps(4.0))
        );
    }
}
