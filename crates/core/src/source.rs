//! Workload sources: where service-mode traffic comes from.
//!
//! A [`WorkloadSource`] yields [`Transfer`]s in nondecreasing `start`
//! order; [`pump`] drains one into a live
//! [`ServiceSession`], feeding every
//! transfer due by the requested boundary and then advancing the clock.
//! Three sources cover the operating modes:
//!
//! * [`SyntheticSource`] — the existing workload generators
//!   ([`WorkloadConfig`]) as a streaming source;
//! * [`TraceSource`] — recorded traces in the `# inrpp-trace v1` text
//!   format, read line by line (streaming ingestion: the whole trace is
//!   never materialised);
//! * [`FeedSource`] — a programmatic queue for embedding.
//!
//! [`PacedSource`] wraps any of them with a token-bucket admission
//! throttle (object bits against a rate/burst budget).
//!
//! # Trace format (`# inrpp-trace v1`)
//!
//! Plain text. The first non-blank line must be the header
//! `# inrpp-trace v1`. Every other line is either blank, a `#` comment,
//! or one arrival:
//!
//! ```text
//! # inrpp-trace v1
//! # start_secs flow src dst chunks chunk_bytes
//! 0.0   1 1 4 800 1250
//! 0.5   2 1 3 400 1250
//! ```
//!
//! `src`/`dst` are node *names* in the session topology. `start_secs`
//! must be nondecreasing down the file and parse to a representable
//! simulation time (violations surface as typed
//! [`SessionError::InvalidConfig`] with the line number, via the same
//! `TimeError` conversion the builder uses). [`format_trace`] writes
//! the symmetric output.

use std::collections::VecDeque;
use std::io::BufRead;

use inrpp_sim::fault::TokenBucket;
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::{ByteSize, Rate};
use inrpp_topology::graph::Topology;

use crate::service::ServiceSession;
use crate::session::{Probe, SessionError, Transfer, Workload, WorkloadConfig};

/// The trace header every `# inrpp-trace v1` file starts with.
pub const TRACE_HEADER: &str = "# inrpp-trace v1";

/// A stream of transfers in nondecreasing `start` order.
pub trait WorkloadSource {
    /// The next transfer without consuming it (`None` when exhausted).
    /// Repeated calls return the same transfer until [`pop`] is called.
    ///
    /// [`pop`]: WorkloadSource::pop
    fn peek(&mut self) -> Result<Option<Transfer>, SessionError>;

    /// Consume the transfer last returned by [`peek`].
    ///
    /// [`peek`]: WorkloadSource::peek
    fn pop(&mut self);
}

/// Feed every transfer due at or before `to` into `session`, then
/// advance it to `to`. Feeding happens *before* the clock moves, so a
/// transfer starting anywhere in `(now, to]` is scheduled exactly as if
/// it had been known up front — the determinism contract is over the
/// boundary schedule, and a checkpoint taken at any boundary resumes
/// compatibly with [`skip_until`].
pub fn pump(
    source: &mut dyn WorkloadSource,
    session: &mut dyn ServiceSession,
    to: SimTime,
    probes: &mut [&mut dyn Probe],
) -> Result<SimTime, SessionError> {
    while let Some(t) = source.peek()? {
        if t.start > to {
            break;
        }
        session.feed(&t)?;
        source.pop();
    }
    session.advance(to, probes)
}

/// Discard every transfer with `start <= t` — exactly the set [`pump`]
/// has already fed by the time the clock reached boundary `t`. Call
/// this on a freshly opened source before resuming a checkpoint taken
/// at `t`. Returns how many transfers were skipped.
pub fn skip_until(source: &mut dyn WorkloadSource, t: SimTime) -> Result<usize, SessionError> {
    let mut skipped = 0;
    while let Some(next) = source.peek()? {
        if next.start > t {
            break;
        }
        source.pop();
        skipped += 1;
    }
    Ok(skipped)
}

// ===================================================================
// FeedSource
// ===================================================================

/// A programmatic source: push transfers, the service pulls them.
#[derive(Debug, Clone, Default)]
pub struct FeedSource {
    queue: VecDeque<Transfer>,
}

impl FeedSource {
    /// An empty queue.
    pub fn new() -> Self {
        FeedSource::default()
    }

    /// Append a transfer. Starts must be pushed in nondecreasing order
    /// (the [`WorkloadSource`] contract); out-of-order pushes are
    /// rejected so the error surfaces at the push site, not later
    /// inside an engine.
    pub fn push(&mut self, t: Transfer) -> Result<(), SessionError> {
        if let Some(last) = self.queue.back() {
            if t.start < last.start {
                return Err(SessionError::InvalidTransfer(format!(
                    "flow {} starts at {:?}, before the previously queued {:?}",
                    t.flow, t.start, last.start
                )));
            }
        }
        self.queue.push_back(t);
        Ok(())
    }

    /// Transfers still queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl WorkloadSource for FeedSource {
    fn peek(&mut self) -> Result<Option<Transfer>, SessionError> {
        Ok(self.queue.front().copied())
    }

    fn pop(&mut self) {
        self.queue.pop_front();
    }
}

// ===================================================================
// SyntheticSource
// ===================================================================

/// The synthetic workload generators as a source: generates the
/// workload up front (deterministic in `(config, horizon, seed)`,
/// exactly as [`crate::session::SessionBuilder::workload_config`]
/// would) and streams it in arrival order, quantised to whole chunks.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    transfers: VecDeque<Transfer>,
}

impl SyntheticSource {
    /// Generate the arrival stream.
    pub fn new(
        topo: &Topology,
        config: &WorkloadConfig,
        horizon: SimDuration,
        seed: u64,
        chunk_bytes: ByteSize,
    ) -> Result<Self, SessionError> {
        let workload = Workload::try_generate(topo, config, horizon, seed)?;
        let mut transfers: Vec<Transfer> = workload
            .flows
            .iter()
            .map(|f| {
                Transfer::for_object_bits(f.id, f.src, f.dst, f.size_bits, chunk_bytes, f.arrival)
            })
            .collect();
        // generators emit in arrival order already; make the source
        // contract unconditional (stable key: start, then id)
        transfers.sort_by_key(|t| (t.start, t.flow));
        Ok(SyntheticSource {
            transfers: transfers.into(),
        })
    }

    /// Arrivals remaining.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True when the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }
}

impl WorkloadSource for SyntheticSource {
    fn peek(&mut self) -> Result<Option<Transfer>, SessionError> {
        Ok(self.transfers.front().copied())
    }

    fn pop(&mut self) {
        self.transfers.pop_front();
    }
}

// ===================================================================
// PacedSource
// ===================================================================

/// An admission throttle over any [`WorkloadSource`]: each transfer is
/// released only once a token bucket ([`TokenBucket`], tokens = object
/// bits refilling at `rate`, burst `burst_bits`) affords its whole
/// object, so a recorded or synthetic arrival process can be replayed
/// against an ingest-rate budget. A transfer due at `start` is admitted
/// at `max(start, bucket availability)`; admissions stay nondecreasing
/// (the [`WorkloadSource`] contract) and the schedule is a pure
/// function of the inner stream and the bucket parameters, so pacing
/// composes with checkpoint/resume like any other source.
///
/// The bucket parameters are user input, so construction goes through
/// [`TokenBucket::try_new`] and a non-positive or non-finite burst is a
/// typed [`SessionError::InvalidConfig`], not a panic.
#[derive(Debug, Clone)]
pub struct PacedSource<S> {
    inner: S,
    bucket: TokenBucket,
    /// Last admission instant: keeps the paced stream nondecreasing
    /// even when the bucket has refilled past a later arrival.
    floor: SimTime,
    /// The priced head-of-line transfer (start rewritten to its
    /// admission instant); repeated peeks must not re-draw.
    staged: Option<Transfer>,
}

impl<S: WorkloadSource> PacedSource<S> {
    /// Wrap `inner`, budgeting admissions to `rate` with at most
    /// `burst_bits` of instantaneous credit.
    pub fn new(inner: S, rate: Rate, burst_bits: f64) -> Result<Self, SessionError> {
        let bucket = TokenBucket::try_new(rate, burst_bits, SimTime::ZERO)
            .map_err(|e| SessionError::InvalidConfig(format!("paced source: {e}")))?;
        Ok(PacedSource {
            inner,
            bucket,
            floor: SimTime::ZERO,
            staged: None,
        })
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

fn object_bits(t: &Transfer) -> f64 {
    (t.chunks * t.chunk_bytes.as_bits()) as f64
}

impl<S: WorkloadSource> WorkloadSource for PacedSource<S> {
    fn peek(&mut self) -> Result<Option<Transfer>, SessionError> {
        if self.staged.is_none() {
            if let Some(mut t) = self.inner.peek()? {
                let bits = object_bits(&t);
                let at = self.bucket.next_available(self.floor.max(t.start), bits);
                if at == SimTime::MAX {
                    return Err(SessionError::InvalidConfig(format!(
                        "paced source: flow {} carries {bits} bits, more than the \
                         {} bit burst can ever admit",
                        t.flow,
                        self.bucket.burst_bits()
                    )));
                }
                t.start = at;
                self.staged = Some(t);
            }
        }
        Ok(self.staged)
    }

    fn pop(&mut self) {
        if let Some(t) = self.staged.take() {
            self.bucket.try_consume(t.start, object_bits(&t));
            self.floor = t.start;
            self.inner.pop();
        }
    }
}

// ===================================================================
// TraceSource
// ===================================================================

/// A recorded-trace source: parses `# inrpp-trace v1` text line by
/// line. Node names resolve against the topology given at construction;
/// every malformed line is a typed error carrying its line number.
pub struct TraceSource<'t, R> {
    topo: &'t Topology,
    reader: R,
    line_no: usize,
    header_seen: bool,
    last_start: SimTime,
    pending: Option<Transfer>,
    done: bool,
}

impl<'t, R: BufRead> TraceSource<'t, R> {
    /// Wrap a reader producing trace text.
    pub fn new(topo: &'t Topology, reader: R) -> Self {
        TraceSource {
            topo,
            reader,
            line_no: 0,
            header_seen: false,
            last_start: SimTime::ZERO,
            pending: None,
            done: false,
        }
    }

    fn bad(&self, what: impl std::fmt::Display) -> SessionError {
        SessionError::InvalidConfig(format!("trace line {}: {what}", self.line_no))
    }

    fn parse_line(&self, line: &str) -> Result<Transfer, SessionError> {
        let mut fields = line.split_whitespace();
        let mut next = |name: &str| {
            fields
                .next()
                .ok_or_else(|| self.bad(format_args!("missing field `{name}`")))
        };
        let start_secs: f64 = next("start_secs")?
            .parse()
            .map_err(|e| self.bad(format_args!("bad start_secs: {e}")))?;
        let flow: u64 = next("flow")?
            .parse()
            .map_err(|e| self.bad(format_args!("bad flow id: {e}")))?;
        let src_name = next("src")?;
        let dst_name = next("dst")?;
        let chunks: u64 = next("chunks")?
            .parse()
            .map_err(|e| self.bad(format_args!("bad chunk count: {e}")))?;
        let chunk_bytes: u64 = next("chunk_bytes")?
            .parse()
            .map_err(|e| self.bad(format_args!("bad chunk_bytes: {e}")))?;
        if let Some(extra) = fields.next() {
            return Err(self.bad(format_args!("unexpected trailing field `{extra}`")));
        }
        // negative / non-finite / out-of-range times surface as the
        // same typed error the session builder produces
        let start = SimTime::ZERO
            + SimDuration::try_from_secs_f64(start_secs)
                .map_err(|e| self.bad(format_args!("bad start_secs: {e}")))?;
        let src = self
            .topo
            .node_by_name(src_name)
            .ok_or_else(|| self.bad(format_args!("unknown node `{src_name}`")))?;
        let dst = self
            .topo
            .node_by_name(dst_name)
            .ok_or_else(|| self.bad(format_args!("unknown node `{dst_name}`")))?;
        Ok(Transfer {
            flow,
            src,
            dst,
            chunks,
            chunk_bytes: ByteSize::bytes(chunk_bytes),
            start,
        })
    }

    fn fill(&mut self) -> Result<(), SessionError> {
        while self.pending.is_none() && !self.done {
            let mut line = String::new();
            self.line_no += 1;
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| self.bad(format_args!("read error: {e}")))?;
            if n == 0 {
                self.done = true;
                if !self.header_seen {
                    return Err(SessionError::InvalidConfig(format!(
                        "trace is empty (expected `{TRACE_HEADER}` header)"
                    )));
                }
                return Ok(());
            }
            let trimmed = line.trim();
            if !self.header_seen {
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed != TRACE_HEADER {
                    return Err(self.bad(format_args!(
                        "expected `{TRACE_HEADER}` header, found `{trimmed}`"
                    )));
                }
                self.header_seen = true;
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let t = self.parse_line(trimmed)?;
            if t.start < self.last_start {
                return Err(self.bad(format_args!(
                    "starts must be nondecreasing ({:?} after {:?})",
                    t.start, self.last_start
                )));
            }
            self.last_start = t.start;
            self.pending = Some(t);
        }
        Ok(())
    }
}

impl<R: BufRead> WorkloadSource for TraceSource<'_, R> {
    fn peek(&mut self) -> Result<Option<Transfer>, SessionError> {
        self.fill()?;
        Ok(self.pending)
    }

    fn pop(&mut self) {
        self.pending = None;
    }
}

/// Render transfers as `# inrpp-trace v1` text — the inverse of
/// [`TraceSource`]. Starts are written with full float precision so a
/// round trip is exact.
pub fn format_trace(topo: &Topology, transfers: &[Transfer]) -> String {
    let mut out = String::from(TRACE_HEADER);
    out.push('\n');
    out.push_str("# start_secs flow src dst chunks chunk_bytes\n");
    for t in transfers {
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            t.start.as_secs_f64(),
            t.flow,
            topo.node(t.src).name,
            topo.node(t.dst).name,
            t.chunks,
            t.chunk_bytes.as_bytes(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{FluidBacking, FluidService};
    use crate::session::{Session, SessionStrategy};
    use inrpp_flowsim::workload::PairSelector;

    fn fig3_transfers(topo: &Topology) -> Vec<Transfer> {
        let n = |s: &str| topo.node_by_name(s).unwrap();
        vec![
            Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks: 800,
                chunk_bytes: ByteSize::bytes(1250),
                start: SimTime::ZERO,
            },
            Transfer {
                flow: 2,
                src: n("1"),
                dst: n("3"),
                chunks: 400,
                chunk_bytes: ByteSize::bytes(1250),
                start: SimTime::from_millis(500),
            },
        ]
    }

    #[test]
    fn trace_round_trips_exactly() {
        let topo = Topology::fig3();
        let transfers = fig3_transfers(&topo);
        let text = format_trace(&topo, &transfers);
        let mut src = TraceSource::new(&topo, text.as_bytes());
        let mut seen = Vec::new();
        while let Some(t) = src.peek().unwrap() {
            seen.push(t);
            src.pop();
        }
        assert_eq!(seen, transfers);
    }

    #[test]
    fn trace_errors_carry_line_numbers() {
        let topo = Topology::fig3();
        let check = |text: &str, needle: &str| {
            let mut src = TraceSource::new(&topo, text.as_bytes());
            let err = loop {
                match src.peek() {
                    Err(e) => break e,
                    Ok(None) => panic!("trace unexpectedly parsed: {text:?}"),
                    Ok(Some(_)) => src.pop(),
                }
            };
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        };
        check("", "header");
        check("# wrong header\n", "header");
        check("# inrpp-trace v1\n0.0 1 1\n", "missing field");
        check("# inrpp-trace v1\n0.0 1 1 4 10 1250 extra\n", "trailing");
        check("# inrpp-trace v1\nnope 1 1 4 10 1250\n", "start_secs");
        check("# inrpp-trace v1\n-1.0 1 1 4 10 1250\n", "non-negative");
        check("# inrpp-trace v1\n0.0 1 zz 4 10 1250\n", "unknown node");
        check(
            "# inrpp-trace v1\n2.0 1 1 4 10 1250\n1.0 2 1 3 10 1250\n",
            "nondecreasing",
        );
        // the line number points at the offending line
        check("# inrpp-trace v1\n\n0.0 1 1 4 10 1250\nbad\n", "line 4");
    }

    #[test]
    fn feed_source_enforces_order() {
        let topo = Topology::fig3();
        let ts = fig3_transfers(&topo);
        let mut src = FeedSource::new();
        src.push(ts[1]).unwrap();
        assert!(matches!(
            src.push(ts[0]).unwrap_err(),
            SessionError::InvalidTransfer(_)
        ));
        assert_eq!(src.len(), 1);
    }

    #[test]
    fn synthetic_source_matches_builder_generation() {
        let topo = Topology::fig3();
        let cfg = WorkloadConfig {
            arrival_rate: 20.0,
            mean_size_bits: 1e6,
            pairs: PairSelector::Uniform,
            ..WorkloadConfig::default()
        };
        let horizon = SimDuration::from_secs(2);
        let chunk = ByteSize::bytes(1250);
        let mut src = SyntheticSource::new(&topo, &cfg, horizon, 7, chunk).unwrap();
        let direct = Workload::try_generate(&topo, &cfg, horizon, 7).unwrap();
        assert_eq!(src.len(), direct.flows.len());
        let first = src.peek().unwrap().unwrap();
        assert_eq!(first.flow, direct.flows[0].id);
        // quantisation is the shared ceil rule
        let want = (direct.flows[0].size_bits / chunk.as_bits() as f64)
            .ceil()
            .max(1.0) as u64;
        assert_eq!(first.chunks, want);
    }

    #[test]
    fn paced_source_delays_admissions_to_the_budget() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let chunk = ByteSize::bytes(1250); // 10_000 bits
        let mut feed = FeedSource::new();
        for flow in 1..=3u64 {
            feed.push(Transfer {
                flow,
                src: n("1"),
                dst: n("4"),
                chunks: 100, // 1 Mbit object
                chunk_bytes: chunk,
                start: SimTime::ZERO,
            })
            .unwrap();
        }
        // burst admits exactly one object instantly; 1 Mbps refill
        // spaces the rest a second apart
        let mut paced = PacedSource::new(feed, Rate::mbps(1.0), 1e6).unwrap();
        let mut admitted = Vec::new();
        while let Some(t) = paced.peek().unwrap() {
            // a second peek must not move the admission
            assert_eq!(paced.peek().unwrap().unwrap().start, t.start);
            admitted.push(t.start);
            paced.pop();
        }
        assert_eq!(
            admitted,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(2)]
        );
    }

    #[test]
    fn paced_source_rejects_bad_budgets_with_typed_errors() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match PacedSource::new(FeedSource::new(), Rate::mbps(1.0), bad) {
                Err(SessionError::InvalidConfig(msg)) => {
                    assert!(msg.contains("paced source"), "{msg}")
                }
                other => panic!("burst {bad}: expected InvalidConfig, got {other:?}"),
            }
        }
        // an object no burst ever covers is caught at peek, typed
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let mut feed = FeedSource::new();
        feed.push(Transfer {
            flow: 1,
            src: n("1"),
            dst: n("4"),
            chunks: 1_000,
            chunk_bytes: ByteSize::bytes(1250),
            start: SimTime::ZERO,
        })
        .unwrap();
        let mut paced = PacedSource::new(feed, Rate::mbps(1.0), 1e3).unwrap();
        assert!(matches!(paced.peek(), Err(SessionError::InvalidConfig(_))));
    }

    #[test]
    fn pumped_trace_run_matches_upfront_session() {
        // driving a service from a trace == declaring the same transfers
        // up front, bit for bit
        let topo = Topology::fig3();
        let transfers = fig3_transfers(&topo);
        let upfront = Session::builder()
            .topology(&topo)
            .transfers(transfers.clone())
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(30))
            .build()
            .unwrap();
        let one_shot = upfront.run().unwrap();

        let text = format_trace(&topo, &transfers);
        let mut src = TraceSource::new(&topo, text.as_bytes());
        // open with an *empty* workload: the full backing would already
        // contain the transfers, and the trace feeding them again would
        // double-count
        let empty = FluidBacking::empty_for(&upfront);
        let mut service = FluidService::open(&upfront, &empty).unwrap();
        for ms in [250, 500, 1_000, 30_000] {
            pump(&mut src, &mut service, SimTime::from_millis(ms), &mut []).unwrap();
        }
        let streamed = service.finish_run(&mut []).unwrap();
        assert_eq!(one_shot.aggregates, streamed.aggregates);
        assert_eq!(one_shot.flows, streamed.flows);
    }
}
