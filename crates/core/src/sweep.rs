//! Experiment-cell enumeration.
//!
//! A paper artifact is a grid of independent simulation cells — topology ×
//! strategy × seed × parameter point. [`Grid`] fixes the *canonical order*
//! of such a grid (row-major, first axis slowest) so that every consumer —
//! the parallel sweep runner, report mergers, regression tests — agrees on
//! which cell is "cell 7" without ever communicating. That shared
//! convention is one third of the suite's determinism story (the other two
//! are per-cell RNG streams and canonical-order merging; see
//! `inrpp-runner`).

/// A named multi-axis grid with row-major cell enumeration.
///
/// ```
/// use inrpp::sweep::Grid;
///
/// // 3 topologies × 2 seeds, topology is the slow axis
/// let grid = Grid::new().axis("topology", 3).axis("seed", 2);
/// assert_eq!(grid.len(), 6);
/// assert_eq!(grid.coord(0), vec![0, 0]);
/// assert_eq!(grid.coord(1), vec![0, 1]); // seed varies fastest
/// assert_eq!(grid.coord(5), vec![2, 1]);
/// assert_eq!(grid.index(&[2, 1]), 5);    // inverse mapping
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Grid {
    axes: Vec<(String, usize)>,
}

impl Grid {
    /// An empty grid (one implicit cell once the first axis is added;
    /// zero axes enumerate a single empty coordinate).
    pub fn new() -> Self {
        Grid::default()
    }

    /// Append an axis with `len` points. Earlier axes vary slower.
    ///
    /// # Panics
    /// Panics if `len == 0` — an empty axis would make every coordinate
    /// unreachable and is always a configuration bug.
    pub fn axis<S: Into<String>>(mut self, name: S, len: usize) -> Self {
        assert!(len > 0, "grid axis cannot be empty");
        self.axes.push((name.into(), len));
        self
    }

    /// Axis names and lengths, in declaration order.
    pub fn axes(&self) -> &[(String, usize)] {
        &self.axes
    }

    /// Total number of cells (product of axis lengths; 1 for no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, n)| n).product()
    }

    /// True when the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Decode cell `index` into per-axis coordinates (row-major).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    pub fn coord(&self, index: usize) -> Vec<usize> {
        assert!(index < self.len(), "cell index {index} out of range");
        let mut rem = index;
        let mut coord = vec![0; self.axes.len()];
        for (i, (_, n)) in self.axes.iter().enumerate().rev() {
            coord[i] = rem % n;
            rem /= n;
        }
        coord
    }

    /// Encode per-axis coordinates back into a cell index.
    ///
    /// # Panics
    /// Panics on an arity mismatch or an out-of-range coordinate.
    pub fn index(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.axes.len(), "coordinate arity mismatch");
        let mut idx = 0;
        for ((_, n), &c) in self.axes.iter().zip(coord) {
            assert!(c < *n, "coordinate {c} out of range for axis of {n}");
            idx = idx * n + c;
        }
        idx
    }

    /// Iterate every coordinate in canonical (row-major) order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.len()).map(|i| self.coord(i))
    }

    /// Human-readable label for one cell, e.g. `"topology=1 seed=0"`.
    pub fn label(&self, index: usize) -> String {
        let coord = self.coord(index);
        self.axes
            .iter()
            .zip(&coord)
            .map(|((name, _), c)| format!("{name}={c}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_round_trip() {
        let g = Grid::new().axis("a", 4).axis("b", 3).axis("c", 2);
        assert_eq!(g.len(), 24);
        for i in 0..g.len() {
            assert_eq!(g.index(&g.coord(i)), i);
        }
        // first axis is slowest
        assert_eq!(g.coord(0), vec![0, 0, 0]);
        assert_eq!(g.coord(1), vec![0, 0, 1]);
        assert_eq!(g.coord(2), vec![0, 1, 0]);
        assert_eq!(g.coord(6), vec![1, 0, 0]);
    }

    #[test]
    fn iter_matches_coord() {
        let g = Grid::new().axis("x", 2).axis("y", 2);
        let all: Vec<Vec<usize>> = g.iter().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn empty_grid_has_one_cell() {
        let g = Grid::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 1);
        assert_eq!(g.coord(0), Vec::<usize>::new());
        assert_eq!(g.index(&[]), 0);
    }

    #[test]
    fn labels_name_axes() {
        let g = Grid::new().axis("topology", 3).axis("seed", 2);
        assert_eq!(g.label(3), "topology=1 seed=1");
        assert_eq!(g.axes()[0].0, "topology");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_out_of_range_panics() {
        Grid::new().axis("a", 2).coord(2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_length_axis_panics() {
        let _ = Grid::new().axis("a", 0);
    }
}
