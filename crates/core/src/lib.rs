//! # inrpp — the In-Network Resource Pooling Principle as a library
//!
//! This crate implements the paper's contribution proper: the mechanisms a
//! router and the endpoints need to pool bandwidth *and* cache resources
//! along the whole delivery path (§3 of the paper).
//!
//! | Paper concept (§) | Module |
//! |---|---|
//! | Request/anticipated-rate accounting, Eq. 1 (§3.3) | [`rate`] |
//! | Push-data / detour / back-pressure interface phases (§3.3) | [`phase`] |
//! | Detour selection, blind and load-aware (§3.3 options i/ii) | [`detour`] |
//! | Flowlet splitting for detoured traffic (§1, flowlets of ref.\[50\]) | [`flowlet`] |
//! | Back-pressure notifications and closed-loop entry (§3.3) | [`backpressure`] |
//! | Receiver ⟨Nc, ACKc, Ac⟩ pipeline and sender modes (§3.2) | [`endpoint`] |
//! | Global fairness / local stability arithmetic (Fig. 3) | [`fairness`] |
//! | Whole-scenario convenience API over the substrates | [`scenario`] |
//! | Experiment-cell enumeration for parallel sweeps | [`sweep`] |
//! | Steppable sessions with checkpoint/resume (service mode) | [`service`] |
//! | Streaming workload ingestion (traces, generators, feeds) | [`source`] |
//!
//! The chunk-level dynamics live in `inrpp-packetsim`, which drives these
//! state machines from a discrete-event loop; the fluid equilibria live in
//! `inrpp-flowsim`. Both share this crate's configuration type,
//! [`config::InrppConfig`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backpressure;
pub mod config;
pub mod detour;
pub mod endpoint;
pub mod fairness;
pub mod flowlet;
pub mod monitor;
pub mod phase;
pub mod rate;
pub mod scenario;
pub mod service;
pub mod session;
pub mod source;
pub mod sweep;

pub use config::InrppConfig;
pub use phase::{Phase, PhaseController};
pub use rate::RateEstimator;
pub use service::{Checkpoint, FluidBacking, FluidService, ServiceSession};
pub use session::{
    Engine, EngineKind, FluidEngine, Probe, QuantileProbe, RunReport, Session, SessionBuilder,
    SessionError, SessionStrategy, TimeSeriesProbe,
};
pub use source::{FeedSource, PacedSource, SyntheticSource, TraceSource, WorkloadSource};
