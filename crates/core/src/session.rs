//! The unified experiment facade: one typed `Session` API over both
//! simulation engines.
//!
//! The paper's core claim is comparative — the same traffic over the same
//! topology under different sharing regimes, at flow *and* packet
//! granularity. This module is the one front door for that comparison:
//!
//! * [`Session`] — a validated experiment description (topology, traffic,
//!   strategy, window, seed), built through [`Session::builder`] with
//!   typed [`SessionError`]s instead of construction panics;
//! * [`Engine`] — the backend abstraction. [`FluidEngine`] (this module)
//!   runs the flow-level fluid simulator; `PacketEngine` (in
//!   `inrpp-packetsim`, which layers *above* this crate) runs the
//!   chunk-level discrete-event simulator. The same `Session` runs on
//!   both — the differential harness in `tests/model_consistency.rs` is
//!   exactly that;
//! * [`Probe`] — streaming observers ([`TimeSeriesProbe`],
//!   [`QuantileProbe`], or your own) that collect metrics *during* the
//!   run, enabling time-resolved views the post-hoc reports cannot
//!   express;
//! * [`RunReport`] — the unified typed result: per-flow [`FlowRecord`]s,
//!   [`Aggregates`], per-channel utilisation, plus the engine-specific
//!   detail ([`EngineDetail`]).
//!
//! The facade is behaviour-preserving by construction: engines rebuild
//! exactly the inputs the underlying simulators always took, so a
//! facade-driven run is bit-identical to a hand-driven one.
//!
//! ```
//! use inrpp::session::{Session, SessionStrategy};
//! use inrpp_flowsim::workload::WorkloadConfig;
//! use inrpp_sim::time::SimDuration;
//! use inrpp_topology::Topology;
//!
//! let topo = Topology::fig3();
//! let report = Session::builder()
//!     .topology(&topo)
//!     .workload_config(WorkloadConfig::default())
//!     .strategy(SessionStrategy::urp())
//!     .horizon(SimDuration::from_secs(2))
//!     .seed(7)
//!     .build()?
//!     .run()?;
//! assert!(report.throughput() > 0.0 && report.throughput() <= 1.0);
//! assert_eq!(report.strategy, "URP");
//! # Ok::<(), inrpp::session::SessionError>(())
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

use inrpp_flowsim::sim::{FlowObserver, FlowSim, FlowSimConfig};
use inrpp_flowsim::strategy::{
    EcmpStrategy, InrpConfig, InrpStrategy, MptcpStrategy, RoutingStrategy, SinglePathStrategy,
};
use inrpp_flowsim::FlowSimReport;
use inrpp_sim::fault::FaultPlan;
use inrpp_sim::snap::{self, Snap, SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::{SimDuration, SimTime, TimeError};
use inrpp_sim::units::ByteSize;
use inrpp_topology::graph::{NodeId, Topology};

// Re-exported so facade consumers (including the packet backend, which
// sees flowsim only transitively) can name the traffic types without a
// direct flowsim dependency.
pub use inrpp_flowsim::workload::{FlowSpec, Workload, WorkloadConfig, WorkloadError};

// ===================================================================
// Errors
// ===================================================================

/// Why a session could not be built or run.
///
/// Construction problems that used to panic deep inside `FlowSim::new` /
/// `PacketSim::new` paths surface here as typed variants instead.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No topology was supplied to the builder.
    MissingTopology,
    /// No workload, workload config, or transfer list was supplied.
    MissingTraffic,
    /// The simulation window has zero (or unset-able) duration.
    EmptyWindow,
    /// The selected strategy cannot run on the selected engine (e.g.
    /// ECMP on the packet engine, whose routing is built in).
    IncompatibleStrategy {
        /// Engine that rejected the strategy.
        engine: EngineKind,
        /// Display name of the offending strategy.
        strategy: String,
    },
    /// The traffic description cannot be used by the selected engine
    /// (e.g. transfers quantised with a chunk size the packet engine was
    /// not configured for).
    IncompatibleTraffic {
        /// Engine that rejected the traffic.
        engine: EngineKind,
        /// What exactly was wrong.
        reason: String,
    },
    /// Workload generation from a [`WorkloadConfig`] failed.
    Workload(WorkloadError),
    /// A chunk transfer was malformed (zero chunks, identical endpoints,
    /// zero-sized chunks).
    InvalidTransfer(String),
    /// Two flows/transfers in the session share an id. Flow ids key
    /// per-flow state in both engines (the packet engine would silently
    /// overwrite one of them), so duplicates are rejected at build time.
    DuplicateFlow(u64),
    /// No route exists between a transfer's endpoints.
    Unroutable {
        /// The flow without a route.
        flow: u64,
    },
    /// An engine configuration value was rejected (e.g. an invalid
    /// `InrppConfig` behind the packet engine).
    InvalidConfig(String),
    /// A checkpoint could not be resumed against this session: wrong
    /// engine, a different session spec (fingerprint mismatch), or a
    /// corrupt byte stream.
    CheckpointMismatch(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingTopology => {
                write!(f, "session has no topology (call .topology(..))")
            }
            SessionError::MissingTraffic => write!(
                f,
                "session has no traffic (call .workload(..), .workload_config(..) \
                 or .transfers(..))"
            ),
            SessionError::EmptyWindow => {
                write!(f, "session window has zero duration")
            }
            SessionError::IncompatibleStrategy { engine, strategy } => {
                write!(f, "strategy {strategy} cannot run on the {engine} engine")
            }
            SessionError::IncompatibleTraffic { engine, reason } => {
                write!(f, "traffic unusable on the {engine} engine: {reason}")
            }
            SessionError::Workload(e) => write!(f, "workload generation failed: {e}"),
            SessionError::InvalidTransfer(msg) => write!(f, "invalid transfer: {msg}"),
            SessionError::DuplicateFlow(id) => {
                write!(f, "duplicate flow id {id} in the session traffic")
            }
            SessionError::Unroutable { flow } => {
                write!(f, "no route exists for transfer flow {flow}")
            }
            SessionError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
            SessionError::CheckpointMismatch(msg) => {
                write!(f, "checkpoint cannot be resumed: {msg}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<WorkloadError> for SessionError {
    fn from(e: WorkloadError) -> Self {
        SessionError::Workload(e)
    }
}

/// Out-of-range time values (negative, non-finite, or beyond the
/// representable nanosecond range) surface as typed configuration
/// errors instead of panicking deep inside the conversion.
impl From<TimeError> for SessionError {
    fn from(e: TimeError) -> Self {
        SessionError::InvalidConfig(format!("invalid time value: {e}"))
    }
}

// ===================================================================
// Strategy and traffic
// ===================================================================

/// Which engine a [`RunReport`] came from / an [`Engine`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Flow-level fluid simulation (`inrpp-flowsim`).
    Fluid,
    /// Chunk-level discrete-event simulation (`inrpp-packetsim`).
    Packet,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Fluid => write!(f, "fluid"),
            EngineKind::Packet => write!(f, "packet"),
        }
    }
}

/// The routing / resource-sharing regime a session runs under.
///
/// On the fluid engine every variant maps to a
/// [`RoutingStrategy`]; on the packet engine only the regimes with a
/// chunk-level transport are accepted — [`SessionStrategy::Urp`] (the
/// INRPP transport; the fluid detour knobs inside are ignored there, the
/// engine's own `InrppConfig` governs) and [`SessionStrategy::Sp`] (the
/// drop-tail AIMD baseline).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SessionStrategy {
    /// Single shortest path (the e2e baseline).
    #[default]
    Sp,
    /// Equal-cost multipath (per-flow hash over the shortest-path set).
    Ecmp,
    /// MPTCP-style end-to-end multipath (edge-disjoint subflows).
    Mptcp,
    /// In-network resource pooling (URP in the figures) with the given
    /// fluid detour configuration.
    Urp(InrpConfig),
}

impl SessionStrategy {
    /// URP with the default detour configuration.
    pub fn urp() -> Self {
        SessionStrategy::Urp(InrpConfig::default())
    }

    /// Display name, matching the engine report `strategy` fields.
    pub fn name(&self) -> &'static str {
        match self {
            SessionStrategy::Sp => "SP",
            SessionStrategy::Ecmp => "ECMP",
            SessionStrategy::Mptcp => "MPTCP",
            SessionStrategy::Urp(_) => "URP",
        }
    }

    /// Instantiate the fluid-engine routing strategy.
    pub fn build_fluid(&self, topo: &Topology) -> Box<dyn RoutingStrategy> {
        match *self {
            SessionStrategy::Sp => Box::new(SinglePathStrategy),
            SessionStrategy::Ecmp => Box::new(EcmpStrategy::default()),
            SessionStrategy::Mptcp => Box::new(MptcpStrategy::default()),
            SessionStrategy::Urp(cfg) => Box::new(InrpStrategy::new(topo, cfg)),
        }
    }
}

/// One chunked content transfer, the engine-neutral counterpart of the
/// packet simulator's `TransferSpec`. Sizes are whole chunks so the same
/// transfer list replays with *identical offered bits* on both engines:
/// the fluid engine sees `chunks x chunk_bytes` bits, the packet engine
/// sees the chunks themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Flow identity (unique within the session).
    pub flow: u64,
    /// Content source.
    pub src: NodeId,
    /// Content consumer.
    pub dst: NodeId,
    /// Object length in chunks.
    pub chunks: u64,
    /// Payload size of one chunk.
    pub chunk_bytes: ByteSize,
    /// When the transfer starts.
    pub start: SimTime,
}

impl Transfer {
    /// A transfer carrying at least `bits`: `ceil(bits / chunk_bits)`
    /// chunks, minimum one — the quantisation rule shared by both engine
    /// backends (and by `TransferSpec::for_object_bits`).
    pub fn for_object_bits(
        flow: u64,
        src: NodeId,
        dst: NodeId,
        bits: f64,
        chunk_bytes: ByteSize,
        start: SimTime,
    ) -> Transfer {
        let chunks = (bits / chunk_bytes.as_bits() as f64).ceil().max(1.0) as u64;
        Transfer {
            flow,
            src,
            dst,
            chunks,
            chunk_bytes,
            start,
        }
    }

    /// Exact payload volume in bits.
    pub fn size_bits(&self) -> f64 {
        self.chunks as f64 * self.chunk_bytes.as_bits() as f64
    }
}

impl Snap for Transfer {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.flow);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_u64(self.chunks);
        w.put_u64(self.chunk_bytes.as_bytes());
        self.start.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Transfer {
            flow: r.get_u64()?,
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            chunks: r.get_u64()?,
            chunk_bytes: ByteSize::bytes(r.get_u64()?),
            start: SimTime::decode(r)?,
        })
    }
}

/// The session's traffic description.
#[derive(Debug, Clone, PartialEq)]
pub enum Traffic {
    /// Fluid flow specs (native to the fluid engine; the packet engine
    /// quantises them into whole-chunk transfers).
    Flows(Workload),
    /// Whole-chunk transfers (native to the packet engine; the fluid
    /// engine replays them as flows of `chunks x chunk_bytes` bits).
    Transfers(Vec<Transfer>),
}

// ===================================================================
// Probes
// ===================================================================

/// A flow/transfer entered the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStart {
    /// Event instant.
    pub time: SimTime,
    /// Flow identity.
    pub flow: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Offered volume in bits.
    pub size_bits: f64,
    /// Subpaths resolved for the flow (1 on the packet engine).
    pub subpaths: usize,
}

/// A flow/transfer completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEnd {
    /// Event instant.
    pub time: SimTime,
    /// Flow identity.
    pub flow: u64,
    /// Bits delivered over the flow's lifetime.
    pub delivered_bits: f64,
    /// Flow completion time in seconds.
    pub fct_secs: f64,
}

/// A fluid re-allocation just ran (fluid engine only).
#[derive(Debug, Clone, Copy)]
pub struct AllocationEvent<'a> {
    /// Event instant.
    pub time: SimTime,
    /// Active flow ids, ascending.
    pub flows: &'a [u64],
    /// `rates[i]` is the allocated rate of `flows[i]` in bits/s.
    pub rates: &'a [f64],
}

impl AllocationEvent<'_> {
    /// Sum of all allocated rates, bits/s.
    pub fn total_rate_bps(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// A progress sample: cumulative delivery up to `time`. The fluid engine
/// emits one per integration step, the packet engine one per delivered
/// chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample instant.
    pub time: SimTime,
    /// Cumulative bits delivered across all flows.
    pub delivered_bits: f64,
}

/// A streaming observer attached to a session run.
///
/// Hooks fire *during* the simulation, in event order, on both engines
/// (except [`Probe::on_allocation`], which only the fluid engine emits).
/// All hooks default to no-ops. Probes are passive: an instrumented run
/// produces a bit-identical [`RunReport`] to an uninstrumented one.
#[allow(unused_variables)]
pub trait Probe {
    /// A flow was admitted.
    fn on_flow_start(&mut self, ev: &FlowStart) {}
    /// A flow completed.
    fn on_flow_end(&mut self, ev: &FlowEnd) {}
    /// The fluid allocator recomputed the rate vector.
    fn on_allocation(&mut self, ev: &AllocationEvent<'_>) {}
    /// Cumulative delivery progressed.
    fn on_sample(&mut self, ev: &Sample) {}
    /// An incremental [`RunReport`] snapshot of the run so far. Emitted
    /// only in service mode (`inrpp::service`), once per
    /// [`advance`](crate::service::ServiceSession::advance) boundary —
    /// one-shot [`Session::run`]-style runs never fire it.
    fn on_report(&mut self, report: &RunReport) {}
}

/// Fan-out dispatcher over a probe list — what [`Engine`] backends call
/// into. Constructing one from an empty slice gives the zero-cost
/// uninstrumented path.
pub struct ProbeSet<'a, 'b> {
    probes: &'a mut [&'b mut dyn Probe],
}

impl<'a, 'b> ProbeSet<'a, 'b> {
    /// Wrap a probe list.
    pub fn new(probes: &'a mut [&'b mut dyn Probe]) -> Self {
        ProbeSet { probes }
    }

    /// True when no probe is attached.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Dispatch [`Probe::on_flow_start`].
    pub fn flow_start(&mut self, ev: &FlowStart) {
        for p in self.probes.iter_mut() {
            p.on_flow_start(ev);
        }
    }

    /// Dispatch [`Probe::on_flow_end`].
    pub fn flow_end(&mut self, ev: &FlowEnd) {
        for p in self.probes.iter_mut() {
            p.on_flow_end(ev);
        }
    }

    /// Dispatch [`Probe::on_allocation`].
    pub fn allocation(&mut self, ev: &AllocationEvent<'_>) {
        for p in self.probes.iter_mut() {
            p.on_allocation(ev);
        }
    }

    /// Dispatch [`Probe::on_sample`].
    pub fn sample(&mut self, ev: &Sample) {
        for p in self.probes.iter_mut() {
            p.on_sample(ev);
        }
    }

    /// Dispatch [`Probe::on_report`].
    pub fn report(&mut self, report: &RunReport) {
        for p in self.probes.iter_mut() {
            p.on_report(report);
        }
    }
}

/// One bucket of a [`TimeSeriesProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBin {
    /// Flows admitted in this bucket.
    pub arrivals: u32,
    /// Flows completed in this bucket.
    pub completions: u32,
    /// Bits completed flows delivered in this bucket.
    pub completed_bits: f64,
    /// Last cumulative-delivery sample seen in this bucket.
    pub delivered_bits: f64,
    /// Largest concurrently-active flow count observed (fluid engine).
    pub peak_active: u32,
    /// Last total allocated rate seen in this bucket, bits/s (fluid
    /// engine).
    pub rate_bps: f64,
}

/// Built-in probe: a bucketed time series of arrivals, completions,
/// delivery progress and (on the fluid engine) allocated rate — the
/// time-resolved view the post-hoc reports cannot express.
///
/// ```
/// use inrpp::session::{Session, SessionStrategy, TimeSeriesProbe};
/// use inrpp_flowsim::workload::WorkloadConfig;
/// use inrpp_sim::time::SimDuration;
/// use inrpp_topology::Topology;
///
/// let topo = Topology::fig3();
/// let session = Session::builder()
///     .topology(&topo)
///     .workload_config(WorkloadConfig::default())
///     .strategy(SessionStrategy::urp())
///     .horizon(SimDuration::from_secs(2))
///     .seed(7)
///     .build()?;
/// let mut series = TimeSeriesProbe::new(SimDuration::from_millis(250));
/// let report = session.run_probed(&mut [&mut series])?;
/// // every admitted flow shows up in the stream
/// let arrivals: u32 = series.bins().iter().map(|b| b.arrivals).sum();
/// assert_eq!(arrivals as usize, report.aggregates.arrived_flows);
/// assert!(series.to_csv().starts_with("bin_start_secs,arrivals,"));
/// # Ok::<(), inrpp::session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeriesProbe {
    bucket: SimDuration,
    bins: Vec<TimeBin>,
    active: u32,
}

impl TimeSeriesProbe {
    /// A time series with the given bucket width.
    ///
    /// # Panics
    /// Panics on a zero bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(
            bucket > SimDuration::ZERO,
            "time series bucket must be positive"
        );
        TimeSeriesProbe {
            bucket,
            bins: Vec::new(),
            active: 0,
        }
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// The recorded buckets (index `i` covers
    /// `[i * bucket, (i + 1) * bucket)`).
    pub fn bins(&self) -> &[TimeBin] {
        &self.bins
    }

    fn bin_at(&mut self, t: SimTime) -> &mut TimeBin {
        let idx = (t.duration_since(SimTime::ZERO).as_secs_f64() / self.bucket.as_secs_f64())
            .floor() as usize;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, TimeBin::default());
        }
        &mut self.bins[idx]
    }

    /// Canonical CSV rendering of the series — the byte-determinism
    /// surface the facade tests gate on.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "bin_start_secs,arrivals,completions,completed_bits,delivered_bits,\
             peak_active,rate_bps\n",
        );
        let w = self.bucket.as_secs_f64();
        for (i, b) in self.bins.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                i as f64 * w,
                b.arrivals,
                b.completions,
                b.completed_bits,
                b.delivered_bits,
                b.peak_active,
                b.rate_bps
            ));
        }
        out
    }
}

impl Probe for TimeSeriesProbe {
    fn on_flow_start(&mut self, ev: &FlowStart) {
        self.active += 1;
        let active = self.active;
        let bin = self.bin_at(ev.time);
        bin.arrivals += 1;
        bin.peak_active = bin.peak_active.max(active);
    }

    fn on_flow_end(&mut self, ev: &FlowEnd) {
        self.active = self.active.saturating_sub(1);
        let bin = self.bin_at(ev.time);
        bin.completions += 1;
        bin.completed_bits += ev.delivered_bits;
    }

    fn on_allocation(&mut self, ev: &AllocationEvent<'_>) {
        let total = ev.total_rate_bps();
        let active = ev.flows.len() as u32;
        let bin = self.bin_at(ev.time);
        bin.rate_bps = total;
        bin.peak_active = bin.peak_active.max(active);
    }

    fn on_sample(&mut self, ev: &Sample) {
        let bin = self.bin_at(ev.time);
        bin.delivered_bits = ev.delivered_bits;
    }
}

/// Built-in probe: streaming flow-completion-time quantiles.
///
/// Collects every [`FlowEnd`] as it happens; quantiles are exact (sorted
/// on demand, ties broken deterministically).
#[derive(Debug, Clone, Default)]
pub struct QuantileProbe {
    fct_secs: Vec<f64>,
    sorted: bool,
}

impl QuantileProbe {
    /// An empty probe.
    pub fn new() -> Self {
        QuantileProbe::default()
    }

    /// Completed flows observed.
    pub fn count(&self) -> usize {
        self.fct_secs.len()
    }

    /// Mean completion time in seconds (0 when nothing completed).
    pub fn mean(&self) -> f64 {
        if self.fct_secs.is_empty() {
            0.0
        } else {
            self.fct_secs.iter().sum::<f64>() / self.fct_secs.len() as f64
        }
    }

    /// The `q`-quantile of completion times, `None` when empty.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.fct_secs.is_empty() {
            return None;
        }
        if !self.sorted {
            // the shared NaN-total ordering every quantile surface uses
            inrpp_sim::metrics::sort_samples(&mut self.fct_secs);
            self.sorted = true;
        }
        let idx = ((self.fct_secs.len() as f64 - 1.0) * q).round() as usize;
        Some(self.fct_secs[idx])
    }
}

impl Probe for QuantileProbe {
    fn on_flow_end(&mut self, ev: &FlowEnd) {
        self.fct_secs.push(ev.fct_secs);
        self.sorted = false;
    }
}

// ===================================================================
// Run report
// ===================================================================

/// Per-flow outcome, engine-neutral.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Flow identity.
    pub flow: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Offered volume in bits.
    pub offered_bits: f64,
    /// Delivered volume in bits (partial flows included).
    pub delivered_bits: f64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Completion time in seconds, `None` when unfinished at the horizon.
    pub fct_secs: Option<f64>,
    /// Subpaths the flow was admitted with (1 on the packet engine).
    pub subpaths: usize,
    /// False when no route existed (the flow never entered the network).
    pub routed: bool,
    /// Requests re-issued after timeout (packet engine; 0 on fluid).
    pub retransmits: u64,
    /// Chunks that left the primary path to route around a faulted
    /// link/node (packet engine; 0 on fluid).
    pub detours: u64,
    /// Custody chunks re-homed off a crashed node (packet engine; 0 on
    /// fluid).
    pub custody_rescues: u64,
    /// Delay attributable to fault outages: time chunks sat parked in
    /// custody behind a down channel plus rescue transit (packet engine;
    /// 0 on fluid).
    pub outage_delay_secs: f64,
}

impl FlowRecord {
    /// True when the flow finished before the horizon.
    pub fn completed(&self) -> bool {
        self.fct_secs.is_some()
    }
}

impl Snap for FlowRecord {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.flow);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_f64(self.offered_bits);
        w.put_f64(self.delivered_bits);
        self.arrival.encode(w);
        match self.fct_secs {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                w.put_f64(v);
            }
        }
        w.put_usize(self.subpaths);
        w.put_bool(self.routed);
        w.put_u64(self.retransmits);
        w.put_u64(self.detours);
        w.put_u64(self.custody_rescues);
        w.put_f64(self.outage_delay_secs);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowRecord {
            flow: r.get_u64()?,
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            offered_bits: r.get_f64()?,
            delivered_bits: r.get_f64()?,
            arrival: SimTime::decode(r)?,
            fct_secs: if r.get_bool()? {
                Some(r.get_f64()?)
            } else {
                None
            },
            subpaths: r.get_usize()?,
            routed: r.get_bool()?,
            retransmits: r.get_u64()?,
            detours: r.get_u64()?,
            custody_rescues: r.get_u64()?,
            outage_delay_secs: r.get_f64()?,
        })
    }
}

/// Whole-run aggregate metrics, engine-neutral. [`RunReport`] derefs to
/// this, so `report.delivered_bits` etc. read naturally.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregates {
    /// Flows that arrived within the window.
    pub arrived_flows: usize,
    /// Flows that completed before the horizon.
    pub completed_flows: usize,
    /// Flows with no route.
    pub unroutable_flows: usize,
    /// Total bits offered by routed flows.
    pub offered_bits: f64,
    /// Total bits delivered (partial flows included).
    pub delivered_bits: f64,
    /// Simulated window length.
    pub duration: SimDuration,
    /// Mean completion time over completed flows, seconds.
    pub mean_fct_secs: f64,
    /// Time-weighted mean of Jain's fairness index (fluid), or the Jain
    /// index over per-flow goodputs (packet); 0 when undefined.
    pub mean_jain: f64,
    /// Mean utilisation across directed channels.
    pub mean_utilisation: f64,
}

impl Aggregates {
    /// Normalised throughput: delivered / offered (the Fig. 4a metric).
    pub fn throughput(&self) -> f64 {
        if self.offered_bits <= 0.0 {
            0.0
        } else {
            self.delivered_bits / self.offered_bits
        }
    }

    /// Delivered bits per second of simulated time.
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered_bits / secs
        }
    }
}

/// Packet-engine counters surfaced through the unified report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PacketSummary {
    /// Distinct data chunks delivered end-to-end.
    pub chunks_delivered: u64,
    /// Data chunks dropped.
    pub chunks_dropped: u64,
    /// Data chunks that left their primary path at least once.
    pub chunks_detoured: u64,
    /// Chunks that spent time in custody stores.
    pub chunks_custodied: u64,
    /// Custody chunks re-homed off crashed nodes by the rescue machinery.
    pub chunks_rescued: u64,
    /// Back-pressure notifications emitted.
    pub backpressure_msgs: u64,
    /// Payload bits per chunk (goodput arithmetic).
    pub chunk_bits: f64,
}

/// Engine-specific detail retained alongside the unified view.
#[derive(Debug, Clone)]
pub enum EngineDetail {
    /// The full fluid-engine report (stretch CDF, FCT CDF, ...).
    Fluid(Box<FlowSimReport>),
    /// Packet-engine counters.
    Packet(PacketSummary),
}

/// The unified typed result of one session run.
///
/// Derefs to [`Aggregates`]: `report.throughput()`,
/// `report.delivered_bits`, `report.mean_jain` all work directly.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which engine produced this report.
    pub engine: EngineKind,
    /// Strategy/transport display name ("SP", "ECMP", "URP", "INRPP",
    /// "AIMD", ...).
    pub strategy: String,
    /// Topology display name.
    pub topology: String,
    /// Per-flow records, in admission order (fluid) or ascending flow id
    /// (packet).
    pub flows: Vec<FlowRecord>,
    /// Whole-run aggregates.
    pub aggregates: Aggregates,
    /// Mean utilisation per directed channel
    /// (index = `link.idx() * 2 + direction`).
    pub channel_utilisation: Vec<f64>,
    /// Engine-specific detail.
    pub detail: EngineDetail,
}

impl std::ops::Deref for RunReport {
    type Target = Aggregates;

    fn deref(&self) -> &Aggregates {
        &self.aggregates
    }
}

impl RunReport {
    /// The fluid-engine report, when this run came from the fluid engine.
    pub fn fluid(&self) -> Option<&FlowSimReport> {
        match &self.detail {
            EngineDetail::Fluid(r) => Some(r),
            EngineDetail::Packet(_) => None,
        }
    }

    /// Consume the report, yielding the fluid-engine detail.
    pub fn into_fluid(self) -> Option<FlowSimReport> {
        match self.detail {
            EngineDetail::Fluid(r) => Some(*r),
            EngineDetail::Packet(_) => None,
        }
    }

    /// The packet-engine counters, when this run came from the packet
    /// engine.
    pub fn packet(&self) -> Option<&PacketSummary> {
        match &self.detail {
            EngineDetail::Packet(s) => Some(s),
            EngineDetail::Fluid(_) => None,
        }
    }

    /// Look up one flow's record by id.
    pub fn flow(&self, flow: u64) -> Option<&FlowRecord> {
        self.flows.iter().find(|f| f.flow == flow)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<5} [{}] on {:<14} thr={:.3} jain={:.3} fct={:.3}s done={}/{}",
            self.strategy,
            self.engine,
            self.topology,
            self.throughput(),
            self.mean_jain,
            self.mean_fct_secs,
            self.completed_flows,
            self.arrived_flows,
        )
    }
}

// ===================================================================
// Session + builder
// ===================================================================

/// A validated experiment description: topology + traffic + strategy +
/// window + seed. Build one with [`Session::builder`], run it with
/// [`Session::run`] (fluid engine), [`Session::run_probed`] (fluid engine
/// with probes) or [`Session::run_on`] (any [`Engine`] backend).
#[derive(Debug, Clone)]
pub struct Session<'a> {
    topology: &'a Topology,
    traffic: Traffic,
    strategy: SessionStrategy,
    horizon: SimDuration,
    seed: u64,
    workers: usize,
    faults: FaultPlan,
}

/// Builder for [`Session`]; see the module docs for the grammar.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder<'a> {
    topology: Option<&'a Topology>,
    workload: Option<Workload>,
    workload_config: Option<WorkloadConfig>,
    transfers: Option<Vec<Transfer>>,
    strategy: SessionStrategy,
    horizon: Option<SimDuration>,
    horizon_secs: Option<f64>,
    seed: u64,
    workers: Option<usize>,
    faults: FaultPlan,
}

impl<'a> SessionBuilder<'a> {
    /// The network the session runs over.
    pub fn topology(mut self, topo: &'a Topology) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Use a pre-generated flow workload (replaces any earlier traffic
    /// source).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self.workload_config = None;
        self.transfers = None;
        self
    }

    /// Generate the flow workload at build time from `config`, over the
    /// session window with the session seed (replaces any earlier traffic
    /// source). Generation failures surface as
    /// [`SessionError::Workload`].
    pub fn workload_config(mut self, config: WorkloadConfig) -> Self {
        self.workload_config = Some(config);
        self.workload = None;
        self.transfers = None;
        self
    }

    /// Use an explicit whole-chunk transfer list (replaces any earlier
    /// traffic source) — the traffic form both engines replay with
    /// identical offered bits.
    pub fn transfers(mut self, transfers: Vec<Transfer>) -> Self {
        self.transfers = Some(transfers);
        self.workload = None;
        self.workload_config = None;
        self
    }

    /// The sharing regime (default: [`SessionStrategy::Sp`]).
    pub fn strategy(mut self, strategy: SessionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Simulation window and hard stop (default: 60 s). A zero duration
    /// is rejected at build time.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = Some(horizon);
        self.horizon_secs = None;
        self
    }

    /// Simulation window from raw (possibly untrusted) seconds, e.g.
    /// parsed CLI or service input. Negative, non-finite, or
    /// out-of-range values are rejected at build time with
    /// [`SessionError::InvalidConfig`] instead of panicking in the
    /// nanosecond conversion.
    pub fn horizon_secs(mut self, secs: f64) -> Self {
        self.horizon_secs = Some(secs);
        self.horizon = None;
        self
    }

    /// Seed for workload generation (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for engines that support sharded execution
    /// (default: 1, i.e. the sequential path). The packet engine runs
    /// `n > 1` as a sharded simulation — byte-identical to `n = 1` by
    /// contract — while the fluid engine accepts only `n = 1`.
    /// `workers(0)` is rejected at build time with
    /// [`SessionError::InvalidConfig`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// A deterministic fault plan applied mid-run by both engines
    /// (default: no faults). Plans are validated against the topology at
    /// build time: an event naming a node or link the topology does not
    /// have is rejected with [`SessionError::InvalidConfig`]. The
    /// determinism contract is unchanged under any plan — sharded runs,
    /// checkpoint/resume, and repeated runs stay byte-identical.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Validate and assemble the session.
    pub fn build(self) -> Result<Session<'a>, SessionError> {
        let topology = self.topology.ok_or(SessionError::MissingTopology)?;
        let workers = match self.workers {
            Some(0) => {
                return Err(SessionError::InvalidConfig(
                    "workers(0) is meaningless: a run needs at least one worker".into(),
                ))
            }
            Some(n) => n,
            None => 1,
        };
        let horizon = match (self.horizon, self.horizon_secs) {
            (_, Some(secs)) => SimDuration::try_from_secs_f64(secs)?,
            (Some(d), None) => d,
            (None, None) => SimDuration::from_secs(60),
        };
        if horizon <= SimDuration::ZERO {
            return Err(SessionError::EmptyWindow);
        }
        // flow ids key per-flow state in both engines: reject duplicates
        // for every traffic form, not just transfers
        fn check_unique_ids<I: Iterator<Item = u64>>(ids: I) -> Result<(), SessionError> {
            let mut seen = std::collections::BTreeSet::new();
            for id in ids {
                if !seen.insert(id) {
                    return Err(SessionError::DuplicateFlow(id));
                }
            }
            Ok(())
        }
        let traffic = if let Some(w) = self.workload {
            check_unique_ids(w.flows.iter().map(|f| f.id))?;
            Traffic::Flows(w)
        } else if let Some(cfg) = self.workload_config {
            Traffic::Flows(Workload::try_generate(topology, &cfg, horizon, self.seed)?)
        } else if let Some(transfers) = self.transfers {
            for t in &transfers {
                if t.chunks == 0 {
                    return Err(SessionError::InvalidTransfer(format!(
                        "flow {} has zero chunks",
                        t.flow
                    )));
                }
                if t.src == t.dst {
                    return Err(SessionError::InvalidTransfer(format!(
                        "flow {} endpoints coincide ({})",
                        t.flow, t.src
                    )));
                }
                if t.chunk_bytes.as_bits() == 0 {
                    return Err(SessionError::InvalidTransfer(format!(
                        "flow {} has zero-sized chunks",
                        t.flow
                    )));
                }
            }
            check_unique_ids(transfers.iter().map(|t| t.flow))?;
            Traffic::Transfers(transfers)
        } else {
            return Err(SessionError::MissingTraffic);
        };
        self.faults
            .check_indices(topology.node_count(), topology.link_count())
            .map_err(|e| SessionError::InvalidConfig(format!("invalid fault plan: {e}")))?;
        Ok(Session {
            topology,
            traffic,
            strategy: self.strategy,
            horizon,
            seed: self.seed,
            workers,
            faults: self.faults,
        })
    }
}

impl<'a> Session<'a> {
    /// Start describing a session.
    pub fn builder() -> SessionBuilder<'a> {
        SessionBuilder::default()
    }

    /// The session's network.
    pub fn topology(&self) -> &'a Topology {
        self.topology
    }

    /// A deterministic fingerprint of the session spec (topology shape,
    /// traffic, strategy, horizon, seed). Checkpoints embed it so a
    /// resume against a *different* spec is rejected instead of
    /// silently diverging. Worker count is deliberately excluded:
    /// sharded and sequential runs are byte-identical by contract, so a
    /// checkpoint may be resumed under either.
    pub fn fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        w.put_str(self.topology.name());
        w.put_usize(self.topology.node_count());
        w.put_usize(self.topology.link_count());
        // Debug covers every strategy knob (e.g. the URP detour config)
        // without each config type needing its own canonical encoding.
        w.put_str(&format!("{:?}", self.strategy));
        self.horizon.encode(&mut w);
        w.put_u64(self.seed);
        match &self.traffic {
            Traffic::Flows(wl) => {
                w.put_u8(0);
                wl.flows.encode(&mut w);
            }
            Traffic::Transfers(ts) => {
                w.put_u8(1);
                ts.encode(&mut w);
            }
        }
        // fault plans are part of the spec a checkpoint must match;
        // encoded only when present so plan-free fingerprints are
        // unchanged from earlier versions
        if !self.faults.is_empty() {
            w.put_u8(2);
            self.faults.encode(&mut w);
        }
        snap::fingerprint(&w.into_bytes())
    }

    /// The session's traffic description.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// The session's sharing regime.
    pub fn strategy(&self) -> SessionStrategy {
        self.strategy
    }

    /// The session's simulation window.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The session's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads requested for the run (≥ 1; default 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The session's fault plan (empty when no faults were configured).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The traffic as a fluid workload: borrowed when flow-native,
    /// converted (whole-chunk sizes) when transfer-native.
    pub fn fluid_workload(&self) -> Cow<'_, Workload> {
        match &self.traffic {
            Traffic::Flows(w) => Cow::Borrowed(w),
            Traffic::Transfers(ts) => {
                let flows: Vec<FlowSpec> = ts
                    .iter()
                    .map(|t| FlowSpec {
                        id: t.flow,
                        src: t.src,
                        dst: t.dst,
                        size_bits: t.size_bits(),
                        arrival: t.start,
                    })
                    .collect();
                Cow::Owned(Workload {
                    offered_bits: flows.iter().map(|f| f.size_bits).sum(),
                    flows,
                })
            }
        }
    }

    /// Run on the built-in [`FluidEngine`] with no probes.
    pub fn run(&self) -> Result<RunReport, SessionError> {
        self.run_probed(&mut [])
    }

    /// Run on the built-in [`FluidEngine`] with streaming probes.
    pub fn run_probed(&self, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        self.run_on(&FluidEngine, probes)
    }

    /// Run on any [`Engine`] backend with streaming probes.
    pub fn run_on(
        &self,
        engine: &dyn Engine,
        probes: &mut [&mut dyn Probe],
    ) -> Result<RunReport, SessionError> {
        engine.run(self, probes)
    }
}

// ===================================================================
// Engines
// ===================================================================

/// A simulation backend the facade can drive.
///
/// Implementations rebuild exactly the inputs their simulator always
/// took, so a facade run is bit-identical to a hand-driven one.
pub trait Engine {
    /// Which backend this is.
    fn kind(&self) -> EngineKind;

    /// Execute `session`, streaming events into `probes`.
    fn run(
        &self,
        session: &Session<'_>,
        probes: &mut [&mut dyn Probe],
    ) -> Result<RunReport, SessionError>;
}

/// The flow-level fluid backend (`inrpp-flowsim`). Accepts every
/// [`SessionStrategy`]; transfer-native traffic is replayed as flows of
/// `chunks x chunk_bytes` bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FluidEngine;

/// Adapter: flowsim's raw observer stream -> session probes + per-flow
/// record collection. The record storage is borrowed so service-mode
/// runs (`inrpp::service`) can keep it alive across stepping calls.
pub(crate) struct FluidAdapter<'r, 'a, 'b> {
    pub(crate) probes: ProbeSet<'a, 'b>,
    pub(crate) records: &'r mut Vec<FlowRecord>,
    pub(crate) index: &'r mut HashMap<u64, usize>,
}

impl FluidAdapter<'_, '_, '_> {
    fn record(&mut self, t: SimTime, spec: &FlowSpec, subpaths: usize, routed: bool) {
        self.index.insert(spec.id, self.records.len());
        self.records.push(FlowRecord {
            flow: spec.id,
            src: spec.src,
            dst: spec.dst,
            offered_bits: spec.size_bits,
            delivered_bits: 0.0,
            arrival: t,
            fct_secs: None,
            subpaths,
            routed,
            retransmits: 0,
            detours: 0,
            custody_rescues: 0,
            outage_delay_secs: 0.0,
        });
    }
}

impl FlowObserver for FluidAdapter<'_, '_, '_> {
    fn on_flow_start(&mut self, t: SimTime, spec: &FlowSpec, subpaths: usize) {
        self.record(t, spec, subpaths, true);
        self.probes.flow_start(&FlowStart {
            time: t,
            flow: spec.id,
            src: spec.src,
            dst: spec.dst,
            size_bits: spec.size_bits,
            subpaths,
        });
    }

    fn on_flow_unroutable(&mut self, t: SimTime, spec: &FlowSpec) {
        self.record(t, spec, 0, false);
    }

    fn on_flow_end(&mut self, t: SimTime, flow: u64, delivered_bits: f64, fct_secs: f64) {
        if let Some(&i) = self.index.get(&flow) {
            self.records[i].delivered_bits = delivered_bits;
            self.records[i].fct_secs = Some(fct_secs);
        }
        self.probes.flow_end(&FlowEnd {
            time: t,
            flow,
            delivered_bits,
            fct_secs,
        });
    }

    fn on_flow_partial(&mut self, _t: SimTime, flow: u64, delivered_bits: f64) {
        if let Some(&i) = self.index.get(&flow) {
            self.records[i].delivered_bits = delivered_bits;
        }
    }

    fn on_allocation(&mut self, t: SimTime, flows: &[u64], rates: &[f64]) {
        self.probes.allocation(&AllocationEvent {
            time: t,
            flows,
            rates,
        });
    }

    fn on_sample(&mut self, t: SimTime, delivered_bits: f64) {
        self.probes.sample(&Sample {
            time: t,
            delivered_bits,
        });
    }
}

impl Engine for FluidEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Fluid
    }

    fn run(
        &self,
        session: &Session<'_>,
        probes: &mut [&mut dyn Probe],
    ) -> Result<RunReport, SessionError> {
        if session.workers() > 1 {
            return Err(SessionError::InvalidConfig(format!(
                "the fluid engine is single-threaded; workers({}) is only \
                 supported by the packet engine",
                session.workers()
            )));
        }
        let workload = session.fluid_workload();
        let strategy = session.strategy.build_fluid(session.topology);
        let mut records = Vec::with_capacity(workload.flows.len());
        let mut index = HashMap::with_capacity(workload.flows.len());
        let mut adapter = FluidAdapter {
            probes: ProbeSet::new(probes),
            records: &mut records,
            index: &mut index,
        };
        let report = FlowSim::new(
            session.topology,
            strategy.as_ref(),
            &workload,
            FlowSimConfig {
                horizon: session.horizon,
            },
        )
        .with_faults(session.faults().clone())
        .run_observed(&mut adapter);
        Ok(assemble_fluid_report(report, records))
    }
}

/// Assemble the unified report from a fluid-engine report plus the
/// per-flow records an adapter collected (shared between one-shot runs
/// and service-mode snapshots).
pub(crate) fn assemble_fluid_report(report: FlowSimReport, flows: Vec<FlowRecord>) -> RunReport {
    RunReport {
        engine: EngineKind::Fluid,
        strategy: report.strategy.clone(),
        topology: report.topology.clone(),
        flows,
        aggregates: Aggregates {
            arrived_flows: report.arrived_flows,
            completed_flows: report.completed_flows,
            unroutable_flows: report.unroutable_flows,
            offered_bits: report.offered_bits,
            delivered_bits: report.delivered_bits,
            duration: report.duration,
            mean_fct_secs: report.mean_fct_secs,
            mean_jain: report.mean_jain,
            mean_utilisation: report.mean_utilisation,
        },
        channel_utilisation: report.channel_utilisation.clone(),
        detail: EngineDetail::Fluid(Box::new(report)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp_flowsim::workload::PairSelector;
    use inrpp_sim::units::Rate;

    fn quick_session(topo: &Topology) -> Session<'_> {
        Session::builder()
            .topology(topo)
            .workload_config(WorkloadConfig {
                arrival_rate: 40.0,
                mean_size_bits: 2e6,
                pairs: PairSelector::Uniform,
                ..WorkloadConfig::default()
            })
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(2))
            .seed(11)
            .build()
            .expect("valid session")
    }

    #[test]
    fn builder_rejects_missing_topology() {
        let err = Session::builder()
            .workload_config(WorkloadConfig::default())
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::MissingTopology);
        assert!(err.to_string().contains("topology"));
    }

    #[test]
    fn builder_rejects_missing_traffic() {
        let topo = Topology::fig3();
        let err = Session::builder().topology(&topo).build().unwrap_err();
        assert_eq!(err, SessionError::MissingTraffic);
        assert!(err.to_string().contains("traffic"));
    }

    #[test]
    fn builder_rejects_empty_window() {
        let topo = Topology::fig3();
        let err = Session::builder()
            .topology(&topo)
            .workload_config(WorkloadConfig::default())
            .horizon(SimDuration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::EmptyWindow);
    }

    #[test]
    fn builder_surfaces_workload_errors_typed() {
        let topo = Topology::fig3();
        let err = Session::builder()
            .topology(&topo)
            .workload_config(WorkloadConfig {
                arrival_rate: -1.0,
                ..WorkloadConfig::default()
            })
            .horizon(SimDuration::from_secs(1))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Workload(WorkloadError::NonPositiveArrivalRate(-1.0))
        );
    }

    #[test]
    fn builder_rejects_malformed_transfers() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let t = |flow, src, dst, chunks| Transfer {
            flow,
            src: n(src),
            dst: n(dst),
            chunks,
            chunk_bytes: ByteSize::bytes(1250),
            start: SimTime::ZERO,
        };
        let build = |ts: Vec<Transfer>| {
            Session::builder()
                .topology(&topo)
                .transfers(ts)
                .build()
                .unwrap_err()
        };
        assert!(matches!(
            build(vec![t(1, "1", "4", 0)]),
            SessionError::InvalidTransfer(m) if m.contains("zero chunks")
        ));
        assert!(matches!(
            build(vec![t(1, "1", "1", 5)]),
            SessionError::InvalidTransfer(m) if m.contains("coincide")
        ));
        assert_eq!(
            build(vec![t(1, "1", "4", 5), t(1, "1", "3", 5)]),
            SessionError::DuplicateFlow(1)
        );
        let mut zero = t(1, "1", "4", 5);
        zero.chunk_bytes = ByteSize::bytes(0);
        assert!(matches!(
            build(vec![zero]),
            SessionError::InvalidTransfer(m) if m.contains("zero-sized")
        ));
    }

    #[test]
    fn builder_rejects_duplicate_flow_ids_in_workloads() {
        // flow-native traffic too: a duplicate id would silently drop a
        // flow on the packet engine (BTreeMap-keyed per-flow state)
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let dup = FlowSpec {
            id: 4,
            src: n("1"),
            dst: n("4"),
            size_bits: 1e6,
            arrival: SimTime::ZERO,
        };
        let err = Session::builder()
            .topology(&topo)
            .workload(Workload {
                offered_bits: 2e6,
                flows: vec![dup.clone(), dup],
            })
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::DuplicateFlow(4));
    }

    #[test]
    fn facade_run_matches_direct_flowsim() {
        // the behaviour-preservation contract: a facade run must be
        // bit-identical to hand-constructing the simulator
        use inrpp_flowsim::strategy::InrpStrategy;
        let topo = Topology::fig3();
        let session = quick_session(&topo);
        let facade = session.run().expect("fluid run");
        let workload = session.fluid_workload().into_owned();
        let inrp = InrpStrategy::with_defaults(&topo);
        let direct = FlowSim::new(
            &topo,
            &inrp,
            &workload,
            FlowSimConfig {
                horizon: SimDuration::from_secs(2),
            },
        )
        .run();
        assert_eq!(facade.aggregates.delivered_bits, direct.delivered_bits);
        assert_eq!(facade.aggregates.mean_jain, direct.mean_jain);
        assert_eq!(facade.aggregates.completed_flows, direct.completed_flows);
        assert_eq!(facade.channel_utilisation, direct.channel_utilisation);
        assert_eq!(facade.fluid().unwrap().mean_fct_secs, direct.mean_fct_secs);
    }

    #[test]
    fn probed_run_equals_unprobed_run() {
        let topo = Topology::fig3();
        let session = quick_session(&topo);
        let plain = session.run().expect("plain run");
        let mut series = TimeSeriesProbe::new(SimDuration::from_millis(100));
        let mut quant = QuantileProbe::new();
        let probed = session
            .run_probed(&mut [&mut series, &mut quant])
            .expect("probed run");
        assert_eq!(plain.aggregates, probed.aggregates);
        assert_eq!(plain.flows, probed.flows);
        assert_eq!(plain.channel_utilisation, probed.channel_utilisation);
        // and the probes saw the run
        assert_eq!(quant.count(), probed.aggregates.completed_flows);
        let arrivals: u32 = series.bins().iter().map(|b| b.arrivals).sum();
        assert_eq!(arrivals as usize, probed.aggregates.arrived_flows);
    }

    #[test]
    fn per_flow_records_are_complete_and_conserving() {
        let topo = Topology::fig3();
        let session = quick_session(&topo);
        let report = session.run().expect("run");
        // one record per arrival (unroutable arrivals included, flagged)
        assert_eq!(report.flows.len(), report.aggregates.arrived_flows);
        assert_eq!(
            report.flows.iter().filter(|f| !f.routed).count(),
            report.aggregates.unroutable_flows
        );
        let delivered: f64 = report.flows.iter().map(|f| f.delivered_bits).sum();
        assert!((delivered - report.aggregates.delivered_bits).abs() < 1.0);
        for fl in &report.flows {
            assert!(fl.delivered_bits <= fl.offered_bits * (1.0 + 1e-9));
            if let Some(fct) = fl.fct_secs {
                assert!(fct >= 0.0);
            }
        }
        assert_eq!(
            report.flows.iter().filter(|f| f.completed()).count(),
            report.aggregates.completed_flows
        );
    }

    #[test]
    fn transfers_replay_as_fluid_flows() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let chunk = ByteSize::bytes(1250);
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![
                Transfer::for_object_bits(1, n("1"), n("4"), 5e6, chunk, SimTime::ZERO),
                Transfer::for_object_bits(2, n("1"), n("3"), 5e6, chunk, SimTime::ZERO),
            ])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(30))
            .build()
            .expect("valid transfer session");
        let report = session.run().expect("fluid replay");
        assert_eq!(report.aggregates.arrived_flows, 2);
        assert_eq!(report.aggregates.completed_flows, 2);
        // whole-chunk quantisation: offered bits are exact chunk multiples
        let chunk_bits = chunk.as_bits() as f64;
        for fl in &report.flows {
            assert_eq!(fl.offered_bits % chunk_bits, 0.0);
        }
    }

    #[test]
    fn quantile_probe_quantiles_are_exact() {
        let mut q = QuantileProbe::new();
        assert_eq!(q.quantile(0.5), None);
        for v in [3.0, 1.0, 2.0] {
            q.on_flow_end(&FlowEnd {
                time: SimTime::ZERO,
                flow: 0,
                delivered_bits: 0.0,
                fct_secs: v,
            });
        }
        assert_eq!(q.count(), 3);
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(0.5), Some(2.0));
        assert_eq!(q.quantile(1.0), Some(3.0));
        assert!((q.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_series_probe_buckets_by_time() {
        let mut p = TimeSeriesProbe::new(SimDuration::from_secs(1));
        p.on_flow_start(&FlowStart {
            time: SimTime::from_millis(100),
            flow: 1,
            src: NodeId(0),
            dst: NodeId(1),
            size_bits: 8.0,
            subpaths: 1,
        });
        p.on_flow_end(&FlowEnd {
            time: SimTime::from_millis(2500),
            flow: 1,
            delivered_bits: 8.0,
            fct_secs: 2.4,
        });
        assert_eq!(p.bins().len(), 3);
        assert_eq!(p.bins()[0].arrivals, 1);
        assert_eq!(p.bins()[0].peak_active, 1);
        assert_eq!(p.bins()[2].completions, 1);
        let csv = p.to_csv();
        assert_eq!(csv.lines().count(), 4, "header + 3 bins:\n{csv}");
    }

    #[test]
    fn strategy_names_and_builders() {
        let topo = Topology::fig3();
        for (s, name) in [
            (SessionStrategy::Sp, "SP"),
            (SessionStrategy::Ecmp, "ECMP"),
            (SessionStrategy::Mptcp, "MPTCP"),
            (SessionStrategy::urp(), "URP"),
        ] {
            assert_eq!(s.name(), name);
            assert_eq!(s.build_fluid(&topo).name(), name);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = SessionError::IncompatibleStrategy {
            engine: EngineKind::Packet,
            strategy: "ECMP".to_string(),
        };
        assert!(e.to_string().contains("ECMP"));
        assert!(e.to_string().contains("packet"));
        let e = SessionError::Unroutable { flow: 9 };
        assert!(e.to_string().contains('9'));
        let _ = Rate::ZERO;
    }
}
