//! End-point node models (§3.2).
//!
//! **Receivers** request at the application rate with a constant
//! anticipation window: the request packet format is `⟨Nc, ACKc, Ac⟩` —
//! next chunk needed, latest chunk acknowledged, last anticipated chunk.
//! After start-up the receiver clocks one new request out per data chunk
//! in, so the request rate self-adjusts to the delivery rate.
//!
//! **Senders** keep per-flow state and run in one of two modes:
//! *push-data* (open loop: send everything covered by requests plus a
//! push-ahead of anticipated chunks, multiplexing flows processor-sharing
//! style) or *closed-loop* (exact 1-to-1 request/data balance, entered on
//! back-pressure). Processor sharing is realised as chunk-grain round-robin
//! over eligible flows.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Flow identity.
pub type FlowId = u64;
/// Chunk sequence number.
pub type ChunkNo = u64;

/// The paper's request packet `⟨Nc, ACKc, Ac⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// `Nc`: the next chunk the application needs.
    pub next: ChunkNo,
    /// `ACKc`: latest chunk received, if any.
    pub ack: Option<ChunkNo>,
    /// `Ac`: the last anticipated chunk covered by this request.
    pub anticipated: ChunkNo,
}

/// Outcome of delivering one chunk to a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverOutput {
    /// Request to send upstream (pipeline advance), if the transfer still
    /// needs more chunks.
    pub request: Option<Request>,
    /// The transfer just finished with this chunk.
    pub completed: bool,
    /// The chunk was a duplicate (already delivered).
    pub duplicate: bool,
}

/// Receiver-side state for one named-content transfer.
///
/// ```
/// use inrpp::endpoint::Receiver;
///
/// // a 100-chunk object requested with anticipation window A_c = 4
/// let mut rx = Receiver::new(100, 4);
/// let first = rx.initial_request();
/// assert_eq!((first.next, first.anticipated), (0, 4));
/// // each delivered chunk clocks out one new request — self-adjusting rate
/// let out = rx.on_chunk(0);
/// let req = out.request.unwrap();
/// assert_eq!(req.anticipated, 5);
/// assert_eq!(req.ack, Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct Receiver {
    total_chunks: u64,
    anticipation: u64,
    next_unrequested: ChunkNo,
    received: BTreeSet<ChunkNo>,
    highest_contiguous: Option<ChunkNo>,
}

impl Receiver {
    /// A receiver for a `total_chunks`-long object with anticipation
    /// window `Ac = anticipation`.
    ///
    /// # Panics
    /// Panics if `total_chunks == 0`.
    pub fn new(total_chunks: u64, anticipation: u64) -> Self {
        assert!(total_chunks > 0, "a transfer needs at least one chunk");
        Receiver {
            total_chunks,
            anticipation,
            next_unrequested: 0,
            received: BTreeSet::new(),
            highest_contiguous: None,
        }
    }

    /// The start-up request covering `0..=Ac` (clamped to the object).
    /// Call exactly once; marks those chunks as requested.
    pub fn initial_request(&mut self) -> Request {
        assert_eq!(self.next_unrequested, 0, "initial_request called twice");
        let last = self.anticipation.min(self.total_chunks - 1);
        self.next_unrequested = last + 1;
        Request {
            next: 0,
            ack: None,
            anticipated: last,
        }
    }

    /// Deliver `chunk`; returns the pipeline reaction.
    pub fn on_chunk(&mut self, chunk: ChunkNo) -> ReceiverOutput {
        if chunk >= self.total_chunks || !self.received.insert(chunk) {
            return ReceiverOutput {
                request: None,
                completed: false,
                duplicate: true,
            };
        }
        // advance the in-order watermark
        let mut hc = self.highest_contiguous.map_or(0, |h| h + 1);
        while self.received.contains(&hc) {
            hc += 1;
        }
        self.highest_contiguous = hc.checked_sub(1);

        let completed = self.received.len() as u64 == self.total_chunks;
        let request = if !completed && self.next_unrequested < self.total_chunks {
            let newly = self.next_unrequested;
            self.next_unrequested += 1;
            Some(Request {
                next: hc, // next chunk the application actually needs
                ack: Some(chunk),
                anticipated: newly,
            })
        } else {
            None
        };
        ReceiverOutput {
            request,
            completed,
            duplicate: false,
        }
    }

    /// Fraction of chunks delivered.
    pub fn progress(&self) -> f64 {
        self.received.len() as f64 / self.total_chunks as f64
    }

    /// All chunks delivered?
    pub fn is_complete(&self) -> bool {
        self.received.len() as u64 == self.total_chunks
    }

    /// Highest chunk number `h` such that `0..=h` are all delivered.
    pub fn highest_contiguous(&self) -> Option<ChunkNo> {
        self.highest_contiguous
    }
}

/// Sender operating mode (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SenderMode {
    /// Open loop: push requested + anticipated data at link speed.
    #[default]
    PushData,
    /// Closed loop after back-pressure: 1-to-1 request/data balance.
    ClosedLoop,
}

#[derive(Debug, Clone)]
struct SenderFlow {
    total_chunks: u64,
    highest_requested: Option<ChunkNo>,
    next_to_send: ChunkNo,
    mode: SenderMode,
    acked: Option<ChunkNo>,
}

impl SenderFlow {
    /// Highest chunk this flow may currently emit.
    fn send_limit(&self, push_ahead: u64) -> Option<ChunkNo> {
        let hr = self.highest_requested?;
        let limit = match self.mode {
            SenderMode::PushData => hr.saturating_add(push_ahead),
            SenderMode::ClosedLoop => hr,
        };
        Some(limit.min(self.total_chunks - 1))
    }

    fn eligible(&self, push_ahead: u64) -> bool {
        match self.send_limit(push_ahead) {
            Some(limit) => self.next_to_send <= limit,
            None => false,
        }
    }
}

/// Sender-side state: per-flow windows plus the processor-sharing
/// round-robin scheduler.
#[derive(Debug, Clone, Default)]
pub struct Sender {
    flows: BTreeMap<FlowId, SenderFlow>,
    rr: VecDeque<FlowId>,
    push_ahead: u64,
}

impl Sender {
    /// A sender that pushes up to `push_ahead` chunks beyond the highest
    /// explicit request while in push-data mode (the paper's "anticipated
    /// data (data not explicitly requested yet)"; 0 disables push-ahead).
    pub fn new(push_ahead: u64) -> Self {
        Sender {
            push_ahead,
            ..Default::default()
        }
    }

    /// Register a flow serving a `total_chunks`-long object.
    ///
    /// # Panics
    /// Panics on duplicate registration or a zero-length object.
    pub fn register(&mut self, flow: FlowId, total_chunks: u64) {
        assert!(total_chunks > 0, "a transfer needs at least one chunk");
        let prev = self.flows.insert(
            flow,
            SenderFlow {
                total_chunks,
                highest_requested: None,
                next_to_send: 0,
                mode: SenderMode::PushData,
                acked: None,
            },
        );
        assert!(prev.is_none(), "flow {flow} registered twice");
        self.rr.push_back(flow);
    }

    /// Process a request packet for `flow`.
    pub fn on_request(&mut self, flow: FlowId, req: Request) {
        let Some(f) = self.flows.get_mut(&flow) else {
            return; // stale request for a finished flow: ignore
        };
        let hr = f
            .highest_requested
            .map_or(req.anticipated, |h| h.max(req.anticipated));
        f.highest_requested = Some(hr.min(f.total_chunks - 1));
        if let Some(a) = req.ack {
            f.acked = Some(f.acked.map_or(a, |prev| prev.max(a)));
        }
    }

    /// Switch `flow`'s mode (back-pressure entry/exit).
    pub fn set_mode(&mut self, flow: FlowId, mode: SenderMode) {
        if let Some(f) = self.flows.get_mut(&flow) {
            f.mode = mode;
        }
    }

    /// Current mode of `flow`.
    pub fn mode(&self, flow: FlowId) -> Option<SenderMode> {
        self.flows.get(&flow).map(|f| f.mode)
    }

    /// Processor-sharing scheduler: pick the next `(flow, chunk)` to emit,
    /// round-robin over flows that currently have something to send.
    /// `None` when no flow is eligible (all windows exhausted).
    pub fn next_chunk(&mut self) -> Option<(FlowId, ChunkNo)> {
        self.next_chunk_where(|_| true)
    }

    /// Like [`Sender::next_chunk`], but skips flows for which `admit`
    /// returns false (e.g. their access channel is currently backlogged).
    /// Skipped flows keep their window state untouched.
    pub fn next_chunk_where(
        &mut self,
        mut admit: impl FnMut(FlowId) -> bool,
    ) -> Option<(FlowId, ChunkNo)> {
        for _ in 0..self.rr.len() {
            let flow = *self.rr.front().expect("rr non-empty in loop");
            self.rr.rotate_left(1);
            let Some(f) = self.flows.get_mut(&flow) else {
                continue;
            };
            if f.eligible(self.push_ahead) && admit(flow) {
                let chunk = f.next_to_send;
                f.next_to_send += 1;
                return Some((flow, chunk));
            }
        }
        None
    }

    /// True when some flow has chunks it may emit right now.
    pub fn has_eligible(&self) -> bool {
        self.flows.values().any(|f| f.eligible(self.push_ahead))
    }

    /// Drop all state for a finished flow.
    pub fn finish(&mut self, flow: FlowId) {
        self.flows.remove(&flow);
        self.rr.retain(|&f| f != flow);
    }

    /// Flows still registered.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// True if `flow` has emitted every chunk of its object.
    pub fn drained(&self, flow: FlowId) -> bool {
        self.flows
            .get(&flow)
            .is_some_and(|f| f.next_to_send >= f.total_chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_initial_request_covers_window() {
        let mut r = Receiver::new(100, 4);
        let req = r.initial_request();
        assert_eq!(
            req,
            Request {
                next: 0,
                ack: None,
                anticipated: 4
            }
        );
    }

    #[test]
    fn receiver_window_clamps_to_object() {
        let mut r = Receiver::new(3, 10);
        let req = r.initial_request();
        assert_eq!(req.anticipated, 2);
        // all chunks already requested: no further requests
        assert_eq!(r.on_chunk(0).request, None);
    }

    #[test]
    fn receiver_pipeline_one_request_per_chunk() {
        let mut r = Receiver::new(10, 2);
        let _ = r.initial_request(); // 0,1,2 requested
        let out = r.on_chunk(0);
        assert!(!out.duplicate && !out.completed);
        let req = out.request.unwrap();
        assert_eq!(req.anticipated, 3, "next unrequested chunk");
        assert_eq!(req.ack, Some(0));
        assert_eq!(req.next, 1, "application needs chunk 1 next");
        let req2 = r.on_chunk(1).request.unwrap();
        assert_eq!(req2.anticipated, 4);
    }

    #[test]
    fn receiver_out_of_order_tracks_watermark() {
        let mut r = Receiver::new(5, 1);
        let _ = r.initial_request(); // 0,1
        let out = r.on_chunk(1); // out of order
        assert_eq!(r.highest_contiguous(), None);
        assert_eq!(out.request.unwrap().next, 0, "still needs chunk 0");
        let out = r.on_chunk(0);
        assert_eq!(r.highest_contiguous(), Some(1));
        assert_eq!(out.request.unwrap().next, 2);
    }

    #[test]
    fn receiver_completion() {
        let mut r = Receiver::new(3, 0);
        let req = r.initial_request();
        assert_eq!(req.anticipated, 0);
        assert!(!r.on_chunk(0).completed);
        assert!(!r.on_chunk(1).completed);
        let out = r.on_chunk(2);
        assert!(out.completed);
        assert!(r.is_complete());
        assert_eq!(out.request, None);
        assert!((r.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn receiver_duplicates_and_garbage_flagged() {
        let mut r = Receiver::new(3, 1);
        let _ = r.initial_request();
        assert!(!r.on_chunk(0).duplicate);
        assert!(r.on_chunk(0).duplicate);
        assert!(
            r.on_chunk(99).duplicate,
            "out-of-range chunk treated as dup"
        );
    }

    #[test]
    #[should_panic(expected = "called twice")]
    fn initial_request_only_once() {
        let mut r = Receiver::new(3, 1);
        let _ = r.initial_request();
        let _ = r.initial_request();
    }

    #[test]
    fn sender_respects_request_window_in_closed_loop() {
        let mut s = Sender::new(4);
        s.register(1, 100);
        s.set_mode(1, SenderMode::ClosedLoop);
        assert_eq!(s.next_chunk(), None, "nothing requested yet");
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 2,
            },
        );
        assert_eq!(s.next_chunk(), Some((1, 0)));
        assert_eq!(s.next_chunk(), Some((1, 1)));
        assert_eq!(s.next_chunk(), Some((1, 2)));
        assert_eq!(s.next_chunk(), None, "closed loop: 1-to-1 balance");
    }

    #[test]
    fn sender_push_ahead_in_open_loop() {
        let mut s = Sender::new(3);
        s.register(1, 100);
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 0,
            },
        );
        let mut sent = Vec::new();
        while let Some((_, c)) = s.next_chunk() {
            sent.push(c);
        }
        // requested chunk 0 + push-ahead of 3
        assert_eq!(sent, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sender_round_robin_is_processor_sharing() {
        let mut s = Sender::new(0);
        s.register(1, 10);
        s.register(2, 10);
        for f in [1, 2] {
            s.on_request(
                f,
                Request {
                    next: 0,
                    ack: None,
                    anticipated: 5,
                },
            );
        }
        let order: Vec<FlowId> = (0..6).map(|_| s.next_chunk().unwrap().0).collect();
        // strict alternation between the two backlogged flows
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn sender_skips_exhausted_flows() {
        let mut s = Sender::new(0);
        s.register(1, 2);
        s.register(2, 10);
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 9,
            },
        );
        s.on_request(
            2,
            Request {
                next: 0,
                ack: None,
                anticipated: 9,
            },
        );
        let mut count1 = 0;
        let mut count2 = 0;
        while let Some((f, _)) = s.next_chunk() {
            if f == 1 {
                count1 += 1;
            } else {
                count2 += 1;
            }
        }
        assert_eq!(count1, 2, "flow 1 only has 2 chunks");
        assert_eq!(count2, 10);
        assert!(s.drained(1));
    }

    #[test]
    fn sender_mode_switch_takes_effect() {
        let mut s = Sender::new(5);
        s.register(1, 100);
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 0,
            },
        );
        assert_eq!(s.mode(1), Some(SenderMode::PushData));
        // push-data allows 0..=5
        assert_eq!(s.next_chunk(), Some((1, 0)));
        s.set_mode(1, SenderMode::ClosedLoop);
        assert_eq!(s.mode(1), Some(SenderMode::ClosedLoop));
        // closed loop: only chunk 0 was requested and it is already sent
        assert_eq!(s.next_chunk(), None);
    }

    #[test]
    fn sender_finish_removes_flow() {
        let mut s = Sender::new(0);
        s.register(1, 5);
        s.register(2, 5);
        assert_eq!(s.active_flows(), 2);
        s.finish(1);
        assert_eq!(s.active_flows(), 1);
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 1,
            },
        );
        assert_eq!(s.next_chunk(), None, "stale requests ignored");
    }

    #[test]
    fn requests_never_extend_past_object_end() {
        let mut s = Sender::new(0);
        s.register(1, 3);
        s.on_request(
            1,
            Request {
                next: 0,
                ack: None,
                anticipated: 500,
            },
        );
        let mut sent = Vec::new();
        while let Some((_, c)) = s.next_chunk() {
            sent.push(c);
        }
        assert_eq!(sent, vec![0, 1, 2]);
    }

    #[test]
    fn next_chunk_where_skips_unadmitted_flows() {
        let mut s = Sender::new(0);
        s.register(1, 10);
        s.register(2, 10);
        for f in [1, 2] {
            s.on_request(
                f,
                Request {
                    next: 0,
                    ack: None,
                    anticipated: 9,
                },
            );
        }
        assert!(s.has_eligible());
        // flow 1's channel is "busy": only flow 2 gets served
        for expect in 0..3 {
            let (f, c) = s.next_chunk_where(|f| f == 2).unwrap();
            assert_eq!((f, c), (2, expect));
        }
        // flow 1's window is untouched
        assert_eq!(s.next_chunk_where(|f| f == 1), Some((1, 0)));
        // nobody admitted: None, windows untouched
        assert_eq!(s.next_chunk_where(|_| false), None);
        assert_eq!(s.next_chunk(), Some((2, 3)));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut s = Sender::new(0);
        s.register(1, 5);
        s.register(1, 5);
    }
}
