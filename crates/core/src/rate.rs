//! Request accounting and the anticipated-rate estimator (Eq. 1, §3.3).
//!
//! ICN's request/data symmetry means a router can *predict* its incoming
//! data: every request it forwards upstream will pull one chunk back along
//! the reverse path roughly one RTT later. Concretely:
//!
//! * a request arrives on downstream interface `j`, is forwarded upstream
//!   out of interface `i`, and names a chunk of known size;
//! * the chunk will arrive on `i` and must depart through `j`.
//!
//! Each upstream interface `i` therefore tracks, per tumbling window `T_i`,
//! how many request-bits it forwarded on behalf of every downstream
//! interface `j` — the paper's `y_{j→i}` ratios. Summing over `i` gives the
//! **anticipated rate** `r_a(j)` each outgoing interface must sustain in
//! the next interval, which the phase machine compares with the actual
//! capacity `r(j)`.
//!
//! The estimator exposes the ratios, the per-interface anticipated rates,
//! and an RTT tracker so `T_i` can follow the measured chunk RTT
//! (footnote 4 of the paper).

use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::Rate;

/// Dense local interface index within one router.
pub type IfaceId = usize;

/// Tumbling-window request accountant for one router.
///
/// ```
/// use inrpp::rate::RateEstimator;
/// use inrpp_sim::time::{SimDuration, SimTime};
///
/// // a 3-interface router, accounting over T_i = 100 ms
/// let mut est = RateEstimator::new(3, SimDuration::from_millis(100), SimTime::ZERO);
/// // requests forwarded upstream via iface 0 on behalf of downstream iface 2,
/// // naming 1 Mbit of chunks in total
/// est.record_request(SimTime::ZERO, 0, 2, 1e6);
/// // once the window closes, iface 2 anticipates 1 Mbit / 100 ms = 10 Mbps
/// est.maybe_roll(SimTime::from_millis(100));
/// assert!((est.anticipated_rate(2).as_mbps() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    n_ifaces: usize,
    interval: SimDuration,
    window_start: SimTime,
    /// bits\[upstream i\]\[downstream j\] requested during the open window
    open: Vec<Vec<f64>>,
    /// snapshot of the last completed window
    closed: Vec<Vec<f64>>,
    /// length of the last completed window (for rate conversion)
    closed_len: SimDuration,
    /// smoothed chunk RTT (EWMA), if any samples arrived
    srtt: Option<SimDuration>,
}

impl RateEstimator {
    /// An estimator for a router with `n_ifaces` interfaces.
    ///
    /// # Panics
    /// Panics if `n_ifaces == 0` or the interval is zero.
    pub fn new(n_ifaces: usize, interval: SimDuration, now: SimTime) -> Self {
        assert!(n_ifaces > 0, "router needs at least one interface");
        assert!(!interval.is_zero(), "interval T_i must be positive");
        RateEstimator {
            n_ifaces,
            interval,
            window_start: now,
            open: vec![vec![0.0; n_ifaces]; n_ifaces],
            closed: vec![vec![0.0; n_ifaces]; n_ifaces],
            closed_len: interval,
            srtt: None,
        }
    }

    /// Number of interfaces being tracked.
    pub fn iface_count(&self) -> usize {
        self.n_ifaces
    }

    /// The active accounting interval `T_i`.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Roll the tumbling window forward if `now` passed its end. Idempotent.
    pub fn maybe_roll(&mut self, now: SimTime) {
        while now.saturating_duration_since(self.window_start) >= self.interval {
            std::mem::swap(&mut self.open, &mut self.closed);
            for row in &mut self.open {
                row.iter_mut().for_each(|v| *v = 0.0);
            }
            self.closed_len = self.interval;
            self.window_start += self.interval;
        }
    }

    /// Record a request forwarded upstream out of `up` that will pull
    /// `chunk_bits` of data back out through downstream interface `down`.
    ///
    /// # Panics
    /// Panics on out-of-range interface ids or a negative size.
    pub fn record_request(&mut self, now: SimTime, up: IfaceId, down: IfaceId, chunk_bits: f64) {
        assert!(
            up < self.n_ifaces && down < self.n_ifaces,
            "iface out of range"
        );
        assert!(chunk_bits >= 0.0, "negative chunk size");
        self.maybe_roll(now);
        self.open[up][down] += chunk_bits;
    }

    /// Eq. 1: the fraction of interface `up`'s forwarded requests that were
    /// on behalf of downstream interface `down`, over the last completed
    /// window. Zero when `up` forwarded nothing.
    pub fn ratio(&self, up: IfaceId, down: IfaceId) -> f64 {
        let total: f64 = self.closed[up].iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            self.closed[up][down] / total
        }
    }

    /// Anticipated rate `r_a(j)`: traffic interface `j` must forward in the
    /// next interval, summed over all upstream interfaces (the "central
    /// management entity" aggregation of §3.3).
    pub fn anticipated_rate(&self, down: IfaceId) -> Rate {
        assert!(down < self.n_ifaces, "iface out of range");
        let bits: f64 = (0..self.n_ifaces).map(|up| self.closed[up][down]).sum();
        let secs = self.closed_len.as_secs_f64();
        if secs <= 0.0 {
            Rate::ZERO
        } else {
            Rate::bps(bits / secs)
        }
    }

    /// All anticipated rates at once.
    pub fn anticipated_rates(&self) -> Vec<Rate> {
        (0..self.n_ifaces)
            .map(|j| self.anticipated_rate(j))
            .collect()
    }

    /// Feed a measured chunk RTT sample (EWMA with gain 1/8, TCP-style) and
    /// optionally retune the interval to track it.
    pub fn record_rtt(&mut self, sample: SimDuration) {
        let s = match self.srtt {
            None => sample,
            Some(prev) => {
                let a = 0.125;
                SimDuration::from_secs_f64(
                    prev.as_secs_f64() * (1.0 - a) + sample.as_secs_f64() * a,
                )
            }
        };
        self.srtt = Some(s);
    }

    /// The smoothed RTT, if any samples were recorded.
    pub fn smoothed_rtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Adopt the smoothed RTT as the new `T_i` (paper footnote 4). The
    /// change takes effect at the next roll; no-op without RTT samples or
    /// when the smoothed RTT is zero.
    pub fn adopt_rtt_interval(&mut self) {
        if let Some(rtt) = self.srtt {
            if !rtt.is_zero() {
                self.interval = rtt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RateEstimator {
        RateEstimator::new(3, SimDuration::from_millis(100), SimTime::ZERO)
    }

    #[test]
    fn fresh_estimator_predicts_nothing() {
        let e = est();
        assert_eq!(e.anticipated_rate(0), Rate::ZERO);
        assert_eq!(e.ratio(0, 1), 0.0);
        assert_eq!(e.iface_count(), 3);
    }

    #[test]
    fn anticipated_rate_appears_after_window_rolls() {
        let mut e = est();
        // 1 Mbit of requests in the first 100 ms window: up=0, down=1
        e.record_request(SimTime::ZERO, 0, 1, 1e6);
        // still the open window: nothing anticipated yet
        assert_eq!(e.anticipated_rate(1), Rate::ZERO);
        // roll by recording in the next window
        e.maybe_roll(SimTime::from_millis(100));
        // 1 Mbit over 100 ms = 10 Mbps
        assert!((e.anticipated_rate(1).as_mbps() - 10.0).abs() < 1e-9);
        assert_eq!(e.anticipated_rate(0), Rate::ZERO);
    }

    #[test]
    fn ratios_follow_eq1() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 0, 1, 3e6);
        e.record_request(SimTime::ZERO, 0, 2, 1e6);
        e.maybe_roll(SimTime::from_millis(100));
        assert!((e.ratio(0, 1) - 0.75).abs() < 1e-12);
        assert!((e.ratio(0, 2) - 0.25).abs() < 1e-12);
        assert_eq!(e.ratio(1, 0), 0.0);
    }

    #[test]
    fn anticipated_rate_sums_over_upstreams() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 0, 2, 2e6);
        e.record_request(SimTime::ZERO, 1, 2, 3e6);
        e.maybe_roll(SimTime::from_millis(100));
        assert!((e.anticipated_rate(2).as_mbps() - 50.0).abs() < 1e-9);
        let all = e.anticipated_rates();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], Rate::ZERO);
    }

    #[test]
    fn windows_tumble_and_forget() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 0, 1, 1e6);
        e.maybe_roll(SimTime::from_millis(100));
        assert!(e.anticipated_rate(1).as_bps() > 0.0);
        // two empty windows later the prediction is gone
        e.maybe_roll(SimTime::from_millis(300));
        assert_eq!(e.anticipated_rate(1), Rate::ZERO);
    }

    #[test]
    fn roll_is_idempotent_within_window() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 0, 1, 1e6);
        e.maybe_roll(SimTime::from_millis(150));
        let r1 = e.anticipated_rate(1);
        e.maybe_roll(SimTime::from_millis(160));
        e.maybe_roll(SimTime::from_millis(199));
        assert_eq!(e.anticipated_rate(1), r1);
    }

    #[test]
    fn recording_rolls_automatically() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 0, 1, 1e6);
        // recording in a later window rolls the old one out
        e.record_request(SimTime::from_millis(250), 0, 1, 5e5);
        // the closed window is now the *second* (empty) 100ms window
        assert_eq!(e.anticipated_rate(1), Rate::ZERO);
    }

    #[test]
    fn rtt_ewma_and_interval_adoption() {
        let mut e = est();
        assert_eq!(e.smoothed_rtt(), None);
        e.record_rtt(SimDuration::from_millis(80));
        assert_eq!(e.smoothed_rtt(), Some(SimDuration::from_millis(80)));
        e.record_rtt(SimDuration::from_millis(160));
        let s = e.smoothed_rtt().unwrap();
        assert!((s.as_millis_f64() - 90.0).abs() < 1e-9, "srtt {s}");
        e.adopt_rtt_interval();
        assert_eq!(e.interval(), s);
    }

    #[test]
    fn adopt_without_samples_is_noop() {
        let mut e = est();
        let before = e.interval();
        e.adopt_rtt_interval();
        assert_eq!(e.interval(), before);
    }

    #[test]
    #[should_panic(expected = "iface out of range")]
    fn out_of_range_interface_panics() {
        let mut e = est();
        e.record_request(SimTime::ZERO, 5, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one interface")]
    fn zero_interfaces_rejected() {
        let _ = RateEstimator::new(0, SimDuration::from_millis(1), SimTime::ZERO);
    }
}
