//! High-level experiment orchestration.
//!
//! The binaries in `inrpp-bench` and the runnable examples build on these
//! helpers so every regeneration of a figure uses the same calibrated
//! setup: capacity proxy, load scaling, strategy trio, seed handling.

use inrpp_flowsim::sim::{FlowSim, FlowSimConfig};
use inrpp_flowsim::strategy::{
    EcmpStrategy, InrpConfig, InrpStrategy, RoutingStrategy, SinglePathStrategy,
};
use inrpp_flowsim::workload::{PairSelector, Workload, WorkloadConfig};
use inrpp_flowsim::FlowSimReport;
use inrpp_sim::time::SimDuration;
use inrpp_topology::graph::Topology;
use inrpp_topology::rocketfuel::{generate_with_capacities, CapacityPlan, Isp};
use inrpp_topology::spath::hop_matrix;
use inrpp_sim::units::Rate;

/// A rough upper bound on concurrently deliverable traffic: total directed
/// link capacity divided by the mean shortest-path hop count (every
/// delivered bit occupies ~`mean_hops` channels).
pub fn transport_capacity_proxy(topo: &Topology) -> f64 {
    let total: f64 = topo
        .link_ids()
        .map(|l| topo.link(l).capacity.as_bps() * 2.0)
        .sum();
    let m = hop_matrix(topo);
    let mut hops = 0u64;
    let mut pairs = 0u64;
    for (i, row) in m.iter().enumerate() {
        for (j, d) in row.iter().enumerate() {
            if i != j {
                if let Some(d) = d {
                    hops += *d as u64;
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        return 0.0;
    }
    let mean_hops = (hops as f64 / pairs as f64).max(1.0);
    total / mean_hops
}

/// Configuration of a Fig. 4-style comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Config {
    /// Offered load as a multiple of [`transport_capacity_proxy`]
    /// (>1 ⇒ overload, the regime where the strategies separate).
    pub load: f64,
    /// Arrival window; the horizon is the same, so unfinished traffic
    /// counts against throughput.
    pub duration: SimDuration,
    /// Mean flow size in bits.
    pub mean_flow_bits: f64,
    /// Workload seed.
    pub seed: u64,
    /// Link capacity plan for the generated topology (the default plan is
    /// scaled down ×10 from the generator's so runs stay fast).
    pub capacities: CapacityPlan,
    /// INRP strategy knobs (detour depth etc.).
    pub inrp: InrpConfig,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            load: 1.25,
            duration: SimDuration::from_secs(4),
            mean_flow_bits: 100e6,
            seed: 1221,
            capacities: CapacityPlan {
                core: Rate::mbps(1000.0),
                metro: Rate::mbps(250.0),
                stub: Rate::mbps(100.0),
            },
            // The paper's Fig. 4 setup: routers exploit up to 1-hop
            // detours, and nodes on the detour path can further detour by
            // one extra hop only — i.e. ONE alternative per bottleneck,
            // extendable once, not a full detour menu.
            inrp: InrpConfig {
                one_hop_detours: true,
                two_hop_detours: true,
                detours_per_link: 1,
                max_subpaths: 4,
            },
        }
    }
}

impl Fig4Config {
    /// Same configuration with a different workload/topology seed —
    /// convenience for enumerating seed axes in sweeps.
    pub fn with_seed(self, seed: u64) -> Self {
        Fig4Config { seed, ..self }
    }

    /// Same configuration with a different offered load — convenience for
    /// enumerating load axes in sweeps.
    pub fn with_load(self, load: f64) -> Self {
        Fig4Config { load, ..self }
    }
}

/// Reports for the three contenders on one topology.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Topology display name.
    pub topology: String,
    /// Single shortest path baseline.
    pub sp: FlowSimReport,
    /// Equal-cost multipath baseline.
    pub ecmp: FlowSimReport,
    /// In-network resource pooling (URP in the paper's figure).
    pub urp: FlowSimReport,
}

impl StrategyComparison {
    /// URP's relative throughput gain over SP, in percent.
    pub fn urp_gain_over_sp_pct(&self) -> f64 {
        let sp = self.sp.throughput();
        if sp <= 0.0 {
            0.0
        } else {
            100.0 * (self.urp.throughput() - sp) / sp
        }
    }
}

/// Build the workload for a topology under `cfg` (shared across the three
/// strategies so the comparison is paired).
pub fn build_workload(topo: &Topology, cfg: &Fig4Config) -> Workload {
    let offered = cfg.load * transport_capacity_proxy(topo);
    let arrival_rate = (offered / cfg.mean_flow_bits).max(1e-3);
    Workload::generate(
        topo,
        &WorkloadConfig {
            arrival_rate,
            mean_size_bits: cfg.mean_flow_bits,
            pairs: PairSelector::Uniform,
        },
        cfg.duration,
        cfg.seed,
    )
}

/// Run SP, ECMP and URP on one topology with a shared workload.
pub fn compare_strategies(topo: &Topology, cfg: &Fig4Config) -> StrategyComparison {
    let workload = build_workload(topo, cfg);
    let sim_cfg = FlowSimConfig {
        horizon: cfg.duration,
    };
    let run = |s: &dyn RoutingStrategy| FlowSim::new(topo, s, &workload, sim_cfg).run();
    let sp = run(&SinglePathStrategy);
    let ecmp = run(&EcmpStrategy::default());
    let inrp = InrpStrategy::new(topo, cfg.inrp);
    let urp = run(&inrp);
    StrategyComparison {
        topology: topo.name().to_string(),
        sp,
        ecmp,
        urp,
    }
}

/// Generate the calibrated ISP topology (with `cfg`'s capacity plan) and
/// run the three-strategy comparison — one bar group of Fig. 4a.
pub fn run_fig4_row(isp: Isp, cfg: &Fig4Config) -> StrategyComparison {
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    compare_strategies(&topo, cfg)
}

/// The three topologies the paper uses in Fig. 4.
pub fn fig4_topologies() -> [Isp; 3] {
    [Isp::Telstra, Isp::Exodus, Isp::Tiscali]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_proxy_sane_on_line() {
        // line of 3 nodes, 2 links @10Mbps: total dir capacity 40Mbps,
        // mean hops = (1+1+2+2+1+1)/6 = 4/3
        let topo = Topology::line(3, Rate::mbps(10.0), SimDuration::from_millis(1));
        let proxy = transport_capacity_proxy(&topo);
        assert!((proxy - 40e6 / (4.0 / 3.0)).abs() < 1.0, "proxy {proxy}");
    }

    #[test]
    fn capacity_proxy_zero_for_disconnected_singleton() {
        let mut topo = Topology::new("one");
        topo.add_node();
        assert_eq!(transport_capacity_proxy(&topo), 0.0);
    }

    #[test]
    fn workload_scales_with_load() {
        let topo = Topology::fig3();
        let mut cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 1e6,
            ..Fig4Config::default()
        };
        cfg.load = 0.5;
        let light = build_workload(&topo, &cfg);
        cfg.load = 2.0;
        let heavy = build_workload(&topo, &cfg);
        assert!(heavy.len() > light.len() * 2);
    }

    #[test]
    fn fig4_row_shows_urp_advantage() {
        // Small ISP to keep the test quick; the full three-topology sweep
        // lives in the bench binary.
        let cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 50e6,
            load: 1.6,
            ..Fig4Config::default()
        };
        let row = run_fig4_row(Isp::Vsnl, &cfg);
        assert_eq!(row.sp.strategy, "SP");
        assert_eq!(row.ecmp.strategy, "ECMP");
        assert_eq!(row.urp.strategy, "URP");
        assert!(row.sp.throughput() < 1.0, "must be overloaded");
        assert!(
            row.urp.throughput() >= row.sp.throughput(),
            "URP {} vs SP {}",
            row.urp.throughput(),
            row.sp.throughput()
        );
    }

    #[test]
    fn config_builders_replace_one_field() {
        let base = Fig4Config::default();
        let s = base.with_seed(42);
        assert_eq!(s.seed, 42);
        assert_eq!(s.load, base.load);
        let l = base.with_load(2.5);
        assert_eq!(l.load, 2.5);
        assert_eq!(l.seed, base.seed);
    }

    #[test]
    fn fig4_topologies_match_paper() {
        let names: Vec<&str> = fig4_topologies().iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["Telstra (AUS)", "Exodus (US)", "Tiscali (EU)"]);
    }

    #[test]
    fn comparison_gain_helper() {
        let cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 50e6,
            load: 1.6,
            ..Fig4Config::default()
        };
        let row = run_fig4_row(Isp::Vsnl, &cfg);
        let gain = row.urp_gain_over_sp_pct();
        assert!(gain >= -1e-6, "gain {gain}");
    }
}
