//! High-level experiment orchestration.
//!
//! The binaries in `inrpp-bench` and the runnable examples build on these
//! helpers so every regeneration of a figure uses the same calibrated
//! setup: capacity proxy, load scaling, strategy trio, seed handling.
//!
//! Beyond the paper's own Fig. 4 setup, the **scenario catalog**
//! ([`ScenarioSpec`]) composes a synthetic topology family
//! ([`TopologyFamily`], built on `inrpp_topology::synth`) with a traffic
//! family ([`TrafficFamily`], built on the flowsim workload profiles) into
//! addressable cells like `scenario:fat-tree:flash-crowd`, each runnable
//! through the same SP/ECMP/URP strategy trio.

use inrpp_flowsim::strategy::InrpConfig;
use inrpp_flowsim::workload::{
    ArrivalProfile, PairSelector, SizeProfile, Workload, WorkloadConfig, WorkloadError,
};
use inrpp_sim::time::SimDuration;
use inrpp_sim::units::Rate;
use inrpp_topology::graph::{NodeId, Topology};
use inrpp_topology::rocketfuel::{generate_with_capacities, CapacityPlan, Isp};
use inrpp_topology::spath::hop_matrix;
use inrpp_topology::synth;

use crate::session::{RunReport, Session, SessionStrategy};

/// A rough upper bound on concurrently deliverable traffic: total directed
/// link capacity divided by the mean shortest-path hop count (every
/// delivered bit occupies ~`mean_hops` channels).
pub fn transport_capacity_proxy(topo: &Topology) -> f64 {
    let total: f64 = topo
        .link_ids()
        .map(|l| topo.link(l).capacity.as_bps() * 2.0)
        .sum();
    let m = hop_matrix(topo);
    let mut hops = 0u64;
    let mut pairs = 0u64;
    for (i, row) in m.iter().enumerate() {
        for (j, d) in row.iter().enumerate() {
            if i != j {
                if let Some(d) = d {
                    hops += *d as u64;
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        return 0.0;
    }
    let mean_hops = (hops as f64 / pairs as f64).max(1.0);
    total / mean_hops
}

/// Configuration of a Fig. 4-style comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Config {
    /// Offered load as a multiple of [`transport_capacity_proxy`]
    /// (>1 ⇒ overload, the regime where the strategies separate).
    pub load: f64,
    /// Arrival window; the horizon is the same, so unfinished traffic
    /// counts against throughput.
    pub duration: SimDuration,
    /// Mean flow size in bits.
    pub mean_flow_bits: f64,
    /// Workload seed.
    pub seed: u64,
    /// Link capacity plan for the generated topology (the default plan is
    /// scaled down ×10 from the generator's so runs stay fast).
    pub capacities: CapacityPlan,
    /// INRP strategy knobs (detour depth etc.).
    pub inrp: InrpConfig,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            load: 1.25,
            duration: SimDuration::from_secs(4),
            mean_flow_bits: 100e6,
            seed: 1221,
            capacities: CapacityPlan {
                core: Rate::mbps(1000.0),
                metro: Rate::mbps(250.0),
                stub: Rate::mbps(100.0),
            },
            // The paper's Fig. 4 setup: routers exploit up to 1-hop
            // detours, and nodes on the detour path can further detour by
            // one extra hop only — i.e. ONE alternative per bottleneck,
            // extendable once, not a full detour menu.
            inrp: InrpConfig {
                one_hop_detours: true,
                two_hop_detours: true,
                detours_per_link: 1,
                max_subpaths: 4,
            },
        }
    }
}

impl Fig4Config {
    /// Same configuration with a different workload/topology seed —
    /// convenience for enumerating seed axes in sweeps.
    pub fn with_seed(self, seed: u64) -> Self {
        Fig4Config { seed, ..self }
    }

    /// Same configuration with a different offered load — convenience for
    /// enumerating load axes in sweeps.
    pub fn with_load(self, load: f64) -> Self {
        Fig4Config { load, ..self }
    }
}

/// Reports for the three contenders on one topology, as unified
/// [`RunReport`]s off the session facade.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Topology display name.
    pub topology: String,
    /// Single shortest path baseline.
    pub sp: RunReport,
    /// Equal-cost multipath baseline.
    pub ecmp: RunReport,
    /// In-network resource pooling (URP in the paper's figure).
    pub urp: RunReport,
}

impl StrategyComparison {
    /// URP's relative throughput gain over SP, in percent.
    pub fn urp_gain_over_sp_pct(&self) -> f64 {
        let sp = self.sp.throughput();
        if sp <= 0.0 {
            0.0
        } else {
            100.0 * (self.urp.throughput() - sp) / sp
        }
    }
}

/// Build the workload for a topology under `cfg` (shared across the three
/// strategies so the comparison is paired).
pub fn build_workload(topo: &Topology, cfg: &Fig4Config) -> Workload {
    let offered = cfg.load * transport_capacity_proxy(topo);
    let arrival_rate = (offered / cfg.mean_flow_bits).max(1e-3);
    Workload::generate(
        topo,
        &WorkloadConfig {
            arrival_rate,
            mean_size_bits: cfg.mean_flow_bits,
            pairs: PairSelector::Uniform,
            ..WorkloadConfig::default()
        },
        cfg.duration,
        cfg.seed,
    )
}

/// Run SP, ECMP and URP on one topology with a shared workload, through
/// the [`Session`] facade.
pub fn compare_strategies(topo: &Topology, cfg: &Fig4Config) -> StrategyComparison {
    let workload = build_workload(topo, cfg);
    let run = |strategy: SessionStrategy| {
        Session::builder()
            .topology(topo)
            .workload(workload.clone())
            .strategy(strategy)
            .horizon(cfg.duration)
            .seed(cfg.seed)
            .build()
            .expect("comparison sessions are well-formed")
            .run()
            .expect("fluid engine accepts every strategy")
    };
    StrategyComparison {
        topology: topo.name().to_string(),
        sp: run(SessionStrategy::Sp),
        ecmp: run(SessionStrategy::Ecmp),
        urp: run(SessionStrategy::Urp(cfg.inrp)),
    }
}

/// Generate the calibrated ISP topology (with `cfg`'s capacity plan) and
/// run the three-strategy comparison — one bar group of Fig. 4a.
pub fn run_fig4_row(isp: Isp, cfg: &Fig4Config) -> StrategyComparison {
    let topo = generate_with_capacities(&isp.profile(), cfg.seed, cfg.capacities);
    compare_strategies(&topo, cfg)
}

/// The three topologies the paper uses in Fig. 4.
pub fn fig4_topologies() -> [Isp; 3] {
    [Isp::Telstra, Isp::Exodus, Isp::Tiscali]
}

// ===================================================================
// Scenario catalog
// ===================================================================

/// A synthetic topology family of the scenario catalog, with its catalog
/// parameterisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// Dumbbell with heterogeneous access links and a pooled side path
    /// ([`inrpp_topology::synth::het_dumbbell`]).
    HetDumbbell {
        /// Sender/receiver pairs.
        pairs: usize,
    },
    /// Parking-lot multi-bottleneck chain with per-segment detours
    /// ([`inrpp_topology::synth::parking_lot`]).
    ParkingLot {
        /// Chain segments (= bottleneck links).
        segments: usize,
    },
    /// k-ary fat-tree fabric with hosts
    /// ([`inrpp_topology::synth::fat_tree`]).
    FatTree {
        /// Fabric arity (even, >= 4).
        k: usize,
    },
    /// Barabási–Albert scale-free graph
    /// ([`inrpp_topology::synth::barabasi_albert`]).
    ScaleFree {
        /// Total node count.
        nodes: usize,
        /// Links each new node attaches with (>= 2).
        attach: usize,
    },
}

impl TopologyFamily {
    /// The catalog's canonical parameterisation of every family, in
    /// catalog order.
    pub fn catalog() -> [TopologyFamily; 4] {
        [
            TopologyFamily::HetDumbbell { pairs: 8 },
            TopologyFamily::ParkingLot { segments: 4 },
            TopologyFamily::FatTree { k: 4 },
            TopologyFamily::ScaleFree {
                nodes: 32,
                attach: 2,
            },
        ]
    }

    /// Stable identifier fragment (`scenario:<topology>:<traffic>`).
    pub fn slug(&self) -> &'static str {
        match self {
            TopologyFamily::HetDumbbell { .. } => "het-dumbbell",
            TopologyFamily::ParkingLot { .. } => "parking-lot",
            TopologyFamily::FatTree { .. } => "fat-tree",
            TopologyFamily::ScaleFree { .. } => "scale-free",
        }
    }

    /// Build the topology, deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Topology {
        match *self {
            TopologyFamily::HetDumbbell { pairs } => synth::het_dumbbell(pairs, seed),
            TopologyFamily::ParkingLot { segments } => synth::parking_lot(segments, seed),
            TopologyFamily::FatTree { k } => synth::fat_tree(k, seed),
            TopologyFamily::ScaleFree { nodes, attach } => {
                synth::barabasi_albert(nodes, attach, seed)
            }
        }
    }
}

/// A traffic family of the scenario catalog: arrival-time profile ×
/// flow-size law × endpoint selection, pre-composed into the shapes the
/// related pooling literature cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficFamily {
    /// Flash crowd: steady background, then a 4× arrival step at half the
    /// window, all converging on one edge "server" node.
    FlashCrowd,
    /// Diurnal sinusoidal arrival modulation between edge nodes.
    Diurnal,
    /// Heavy-tailed (bounded-Pareto) flow sizes with gravity endpoint
    /// skew — the CDN-like demand shape.
    HeavyTail,
    /// Mixed elastic + constant-rate flows between edge nodes.
    Mixed,
}

impl TrafficFamily {
    /// Every family, in catalog order.
    pub fn catalog() -> [TrafficFamily; 4] {
        [
            TrafficFamily::FlashCrowd,
            TrafficFamily::Diurnal,
            TrafficFamily::HeavyTail,
            TrafficFamily::Mixed,
        ]
    }

    /// Stable identifier fragment (`scenario:<topology>:<traffic>`).
    pub fn slug(&self) -> &'static str {
        match self {
            TrafficFamily::FlashCrowd => "flash-crowd",
            TrafficFamily::Diurnal => "diurnal",
            TrafficFamily::HeavyTail => "heavy-tail",
            TrafficFamily::Mixed => "mixed",
        }
    }

    /// The arrival profile of this family.
    pub fn arrivals(&self) -> ArrivalProfile {
        match self {
            TrafficFamily::FlashCrowd => ArrivalProfile::FlashCrowd {
                onset: 0.5,
                magnitude: 4.0,
            },
            TrafficFamily::Diurnal => ArrivalProfile::Diurnal {
                cycles: 2.0,
                amplitude: 0.8,
            },
            TrafficFamily::HeavyTail | TrafficFamily::Mixed => ArrivalProfile::Steady,
        }
    }

    /// The flow-size law of this family.
    pub fn sizes(&self) -> SizeProfile {
        match self {
            TrafficFamily::HeavyTail => SizeProfile::HeavyTail { shape: 1.5 },
            TrafficFamily::Mixed => SizeProfile::Mixed {
                bulk_frac: 0.25,
                bulk_factor: 3.0,
            },
            _ => SizeProfile::Exponential,
        }
    }

    /// Endpoint selection for this family on `topo`.
    pub fn pairs(&self, topo: &Topology) -> PairSelector {
        match self {
            TrafficFamily::FlashCrowd => PairSelector::Hotspot(flash_crowd_server(topo)),
            TrafficFamily::HeavyTail => PairSelector::Gravity { exponent: 1.0 },
            TrafficFamily::Diurnal | TrafficFamily::Mixed => PairSelector::EdgeToEdge,
        }
    }
}

/// The deterministic "content server" a flash crowd converges on: the
/// topology's hub (highest-degree node, lowest id on ties). A multi-homed
/// hub keeps the crowd's bottleneck *inside* the network — where pooling
/// has detours to recruit — instead of on a single access link.
///
/// # Panics
/// Panics on an empty topology.
pub fn flash_crowd_server(topo: &Topology) -> NodeId {
    synth::hub_node(topo).expect("catalog topologies are non-empty")
}

/// One cell of the scenario catalog: a topology family × traffic family
/// composition plus the load calibration the strategy trio runs under.
///
/// ```
/// use inrpp::scenario::{scenario_by_id, ScenarioSpec, TopologyFamily, TrafficFamily};
///
/// let spec = ScenarioSpec::new(
///     TopologyFamily::FatTree { k: 4 },
///     TrafficFamily::FlashCrowd,
/// );
/// assert_eq!(spec.id(), "scenario:fat-tree:flash-crowd");
/// assert_eq!(scenario_by_id(&spec.id()), Some(spec));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Topology family (with parameters).
    pub topology: TopologyFamily,
    /// Traffic family.
    pub traffic: TrafficFamily,
    /// Offered load as a multiple of the scenario's capacity reference
    /// ([`ScenarioSpec::target_offered_rate`]): the network-wide
    /// [`transport_capacity_proxy`], except for flash crowds, which are
    /// calibrated against the server's ingress capacity. Averaged over
    /// the arrival profile's window.
    pub load: f64,
    /// Arrival window; also the simulation horizon, so unfinished traffic
    /// counts against throughput (the Fig. 4 convention).
    pub duration: SimDuration,
    /// Mean flow size in bits.
    pub mean_flow_bits: f64,
    /// Seed for both the topology build and the workload.
    pub seed: u64,
    /// INRP (URP) strategy knobs.
    pub inrp: InrpConfig,
}

impl ScenarioSpec {
    /// The calibrated default cell for a family pair: moderate overload
    /// (1.3× the capacity reference) over a 3 s window. The 10 Mbit mean
    /// flow size keeps cells affordable — offered load is set by
    /// `load`, so fewer-but-larger flows trade event-loop work, not
    /// pressure.
    pub fn new(topology: TopologyFamily, traffic: TrafficFamily) -> Self {
        ScenarioSpec {
            topology,
            traffic,
            load: 1.3,
            duration: SimDuration::from_secs(3),
            mean_flow_bits: 10e6,
            seed: 1221,
            inrp: Fig4Config::default().inrp,
        }
    }

    /// The catalog identifier: `scenario:<topology>:<traffic>`.
    pub fn id(&self) -> String {
        format!("scenario:{}:{}", self.topology.slug(), self.traffic.slug())
    }

    /// A short-horizon variant for smokes and determinism gates.
    pub fn quick(mut self) -> Self {
        self.duration = SimDuration::from_millis(800);
        self
    }

    /// Build this scenario's topology.
    pub fn build_topology(&self) -> Topology {
        self.topology.build(self.seed)
    }

    /// The offered-load reference in bits/s that `load` multiplies: the
    /// flash-crowd server's total ingress capacity when every flow
    /// converges on it, the network-wide [`transport_capacity_proxy`]
    /// otherwise.
    pub fn target_offered_rate(&self, topo: &Topology) -> f64 {
        match self.traffic {
            TrafficFamily::FlashCrowd => {
                let server = flash_crowd_server(topo);
                topo.neighbors(server)
                    .iter()
                    .map(|&(_, l)| topo.link(l).capacity.as_bps())
                    .sum()
            }
            _ => transport_capacity_proxy(topo),
        }
    }

    /// The workload configuration on `topo`: the base arrival rate is
    /// calibrated so the *window-averaged* offered load is
    /// `load × target_offered_rate(topo)` regardless of the arrival
    /// profile's shape.
    pub fn workload_config(&self, topo: &Topology) -> WorkloadConfig {
        let arrivals = self.traffic.arrivals();
        let offered = self.load * self.target_offered_rate(topo);
        let base_rate = (offered / self.mean_flow_bits / arrivals.mean_factor()).max(1e-3);
        WorkloadConfig {
            arrival_rate: base_rate,
            mean_size_bits: self.mean_flow_bits,
            pairs: self.traffic.pairs(topo),
            arrivals,
            sizes: self.traffic.sizes(),
        }
    }

    /// Generate the scenario workload on `topo`.
    pub fn build_workload(&self, topo: &Topology) -> Result<Workload, WorkloadError> {
        Workload::try_generate(topo, &self.workload_config(topo), self.duration, self.seed)
    }

    /// Run a single strategy of the trio through the [`Session`] facade.
    ///
    /// # Panics
    /// Panics if the workload cannot be generated (degenerate spec).
    pub fn run_one(&self, strategy: ScenarioStrategy) -> RunReport {
        let topo = self.build_topology();
        let workload = self
            .build_workload(&topo)
            .unwrap_or_else(|e| panic!("scenario {}: {e}", self.id()));
        Session::builder()
            .topology(&topo)
            .workload(workload)
            .strategy(strategy.session_strategy(self.inrp))
            .horizon(self.duration)
            .seed(self.seed)
            .build()
            .unwrap_or_else(|e| panic!("scenario {}: {e}", self.id()))
            .run()
            .expect("fluid engine accepts every catalog strategy")
    }

    /// Run the full SP/ECMP/URP trio on the shared workload.
    ///
    /// # Panics
    /// Panics if the workload cannot be generated (degenerate spec).
    pub fn run(&self) -> StrategyComparison {
        StrategyComparison {
            topology: self.build_topology().name().to_string(),
            sp: self.run_one(ScenarioStrategy::Sp),
            ecmp: self.run_one(ScenarioStrategy::Ecmp),
            urp: self.run_one(ScenarioStrategy::Urp),
        }
    }
}

/// One contender of the scenario strategy trio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioStrategy {
    /// Single shortest path.
    Sp,
    /// Equal-cost multipath.
    Ecmp,
    /// In-network resource pooling (URP).
    Urp,
}

impl ScenarioStrategy {
    /// All three, in reporting order.
    pub fn all() -> [ScenarioStrategy; 3] {
        [
            ScenarioStrategy::Sp,
            ScenarioStrategy::Ecmp,
            ScenarioStrategy::Urp,
        ]
    }

    /// Display name matching the flowsim report's `strategy` field.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioStrategy::Sp => "SP",
            ScenarioStrategy::Ecmp => "ECMP",
            ScenarioStrategy::Urp => "URP",
        }
    }

    /// The session-facade strategy this contender maps to, with `inrp`
    /// as the URP detour configuration.
    pub fn session_strategy(&self, inrp: InrpConfig) -> SessionStrategy {
        match self {
            ScenarioStrategy::Sp => SessionStrategy::Sp,
            ScenarioStrategy::Ecmp => SessionStrategy::Ecmp,
            ScenarioStrategy::Urp => SessionStrategy::Urp(inrp),
        }
    }
}

/// The full scenario catalog: every topology family × every traffic
/// family at the calibrated defaults, in deterministic (topology-major)
/// order.
pub fn scenario_catalog() -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    for topo in TopologyFamily::catalog() {
        for traffic in TrafficFamily::catalog() {
            out.push(ScenarioSpec::new(topo, traffic));
        }
    }
    out
}

/// Look up a catalog cell by its `scenario:<topology>:<traffic>` id.
pub fn scenario_by_id(id: &str) -> Option<ScenarioSpec> {
    scenario_catalog().into_iter().find(|s| s.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_proxy_sane_on_line() {
        // line of 3 nodes, 2 links @10Mbps: total dir capacity 40Mbps,
        // mean hops = (1+1+2+2+1+1)/6 = 4/3
        let topo = Topology::line(3, Rate::mbps(10.0), SimDuration::from_millis(1));
        let proxy = transport_capacity_proxy(&topo);
        assert!((proxy - 40e6 / (4.0 / 3.0)).abs() < 1.0, "proxy {proxy}");
    }

    #[test]
    fn capacity_proxy_zero_for_disconnected_singleton() {
        let mut topo = Topology::new("one");
        topo.add_node();
        assert_eq!(transport_capacity_proxy(&topo), 0.0);
    }

    #[test]
    fn workload_scales_with_load() {
        let topo = Topology::fig3();
        let mut cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 1e6,
            ..Fig4Config::default()
        };
        cfg.load = 0.5;
        let light = build_workload(&topo, &cfg);
        cfg.load = 2.0;
        let heavy = build_workload(&topo, &cfg);
        assert!(heavy.len() > light.len() * 2);
    }

    #[test]
    fn fig4_row_shows_urp_advantage() {
        // Small ISP to keep the test quick; the full three-topology sweep
        // lives in the bench binary.
        let cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 50e6,
            load: 1.6,
            ..Fig4Config::default()
        };
        let row = run_fig4_row(Isp::Vsnl, &cfg);
        assert_eq!(row.sp.strategy, "SP");
        assert_eq!(row.ecmp.strategy, "ECMP");
        assert_eq!(row.urp.strategy, "URP");
        assert!(row.sp.throughput() < 1.0, "must be overloaded");
        assert!(
            row.urp.throughput() >= row.sp.throughput(),
            "URP {} vs SP {}",
            row.urp.throughput(),
            row.sp.throughput()
        );
    }

    #[test]
    fn config_builders_replace_one_field() {
        let base = Fig4Config::default();
        let s = base.with_seed(42);
        assert_eq!(s.seed, 42);
        assert_eq!(s.load, base.load);
        let l = base.with_load(2.5);
        assert_eq!(l.load, 2.5);
        assert_eq!(l.seed, base.seed);
    }

    #[test]
    fn fig4_topologies_match_paper() {
        let names: Vec<&str> = fig4_topologies().iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["Telstra (AUS)", "Exodus (US)", "Tiscali (EU)"]);
    }

    #[test]
    fn catalog_ids_are_unique_and_roundtrip() {
        let catalog = scenario_catalog();
        assert_eq!(catalog.len(), 16, "4 topology x 4 traffic families");
        let mut seen = std::collections::HashSet::new();
        for spec in &catalog {
            let id = spec.id();
            assert!(id.starts_with("scenario:"), "{id}");
            assert!(seen.insert(id.clone()), "duplicate id {id}");
            assert_eq!(scenario_by_id(&id), Some(*spec));
        }
        assert_eq!(scenario_by_id("scenario:no-such:family"), None);
    }

    #[test]
    fn workload_calibration_hits_offered_load() {
        // the base-rate calibration must deliver ~load x proxy offered
        // bits regardless of the arrival profile's mean factor
        for traffic in TrafficFamily::catalog() {
            let spec = ScenarioSpec {
                duration: SimDuration::from_secs(8),
                ..ScenarioSpec::new(TopologyFamily::HetDumbbell { pairs: 8 }, traffic)
            };
            let topo = spec.build_topology();
            let w = spec
                .build_workload(&topo)
                .expect("catalog workloads generate");
            let offered = w.offered_rate(spec.duration);
            let target = spec.load * spec.target_offered_rate(&topo);
            assert!(
                (offered - target).abs() < target * 0.25,
                "{}: offered {offered:.3e} vs target {target:.3e}",
                spec.id()
            );
        }
    }

    #[test]
    fn flash_crowd_scenario_targets_the_server() {
        let spec = ScenarioSpec::new(
            TopologyFamily::ParkingLot { segments: 4 },
            TrafficFamily::FlashCrowd,
        )
        .quick();
        let topo = spec.build_topology();
        let server = flash_crowd_server(&topo);
        assert_eq!(server, inrpp_topology::synth::hub_node(&topo).unwrap());
        let w = spec.build_workload(&topo).unwrap();
        assert!(w.flows.iter().all(|f| f.dst == server));
        // flash crowds are calibrated against the server's ingress, which
        // is far below the network-wide proxy on this chain
        assert!(spec.target_offered_rate(&topo) < transport_capacity_proxy(&topo));
    }

    #[test]
    fn scenario_trio_runs_and_is_deterministic() {
        let spec = ScenarioSpec::new(
            TopologyFamily::HetDumbbell { pairs: 8 },
            TrafficFamily::HeavyTail,
        )
        .quick();
        let a = spec.run();
        assert_eq!(a.sp.strategy, "SP");
        assert_eq!(a.ecmp.strategy, "ECMP");
        assert_eq!(a.urp.strategy, "URP");
        assert!(a.sp.arrived_flows > 0);
        assert!(a.urp.throughput() > 0.0 && a.urp.throughput() <= 1.0 + 1e-9);
        // pooling never hurts on the dumbbell's side path
        assert!(
            a.urp.throughput() >= a.sp.throughput() * 0.98,
            "URP {} vs SP {}",
            a.urp.throughput(),
            a.sp.throughput()
        );
        let b = spec.run();
        assert_eq!(a.urp.delivered_bits, b.urp.delivered_bits);
        assert_eq!(a.sp.delivered_bits, b.sp.delivered_bits);
    }

    #[test]
    fn comparison_gain_helper() {
        let cfg = Fig4Config {
            duration: SimDuration::from_secs(2),
            mean_flow_bits: 50e6,
            load: 1.6,
            ..Fig4Config::default()
        };
        let row = run_fig4_row(Isp::Vsnl, &cfg);
        let gain = row.urp_gain_over_sp_pct();
        assert!(gain >= -1e-6, "gain {gain}");
    }
}
