//! The three-phase interface state machine (§3.3).
//!
//! Every outgoing interface of a router is, at any instant, in one of the
//! paper's three phases:
//!
//! * **push-data** — anticipated demand fits (`r_a < r`): forward at link
//!   speed, keep the pipe full;
//! * **detour** — demand is about to exceed supply (`r_a ≈ r` or
//!   `r_a > r`): split the excess into flowlets and send them around;
//! * **back-pressure** — no usable detour (or the custody cache is
//!   filling): cache incoming data and tell the upstream neighbour to slow
//!   down.
//!
//! Transitions use hysteresis (`detour_enter`/`detour_exit` in
//! [`InrppConfig`]) because the paper lists "extensive link swapping" as a
//! failure mode to avoid (§4). The controller also counts transitions so
//! the `T_i`-sensitivity ablation (A5) can quantify flapping.

use inrpp_sim::units::Rate;

use crate::config::InrppConfig;

/// The paper's three interface phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Demand below capacity: open-loop forwarding.
    #[default]
    PushData,
    /// Demand at/above capacity and detours available: shift excess.
    Detour,
    /// No detour capacity (or cache pressure): closed-loop slow-down.
    BackPressure,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::PushData => write!(f, "push-data"),
            Phase::Detour => write!(f, "detour"),
            Phase::BackPressure => write!(f, "back-pressure"),
        }
    }
}

/// Inputs to a phase decision, gathered by the router each interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseInputs {
    /// Anticipated rate `r_a(i)` from the estimator.
    pub anticipated: Rate,
    /// Interface capacity `r(i)` (after forwarding headroom).
    pub capacity: Rate,
    /// Whether any detour path with spare capacity exists right now.
    pub detour_available: bool,
    /// Custody-cache fill fraction in `[0, 1]`.
    pub cache_fill: f64,
}

/// Hysteretic phase controller for one interface.
///
/// ```
/// use inrpp::config::InrppConfig;
/// use inrpp::phase::{Phase, PhaseController, PhaseInputs};
/// use inrpp_sim::units::Rate;
///
/// let mut ctl = PhaseController::new(InrppConfig::default());
/// let congested = PhaseInputs {
///     anticipated: Rate::mbps(12.0), // r_a from the estimator
///     capacity: Rate::mbps(10.0),    // r: the interface speed
///     detour_available: true,
///     cache_fill: 0.0,
/// };
/// assert_eq!(ctl.update(congested), Phase::Detour);
/// // no detour and a filling cache force the closed loop
/// let desperate = PhaseInputs { detour_available: false, cache_fill: 0.9, ..congested };
/// assert_eq!(ctl.update(desperate), Phase::BackPressure);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseController {
    config: InrppConfig,
    phase: Phase,
    transitions: u64,
}

impl PhaseController {
    /// A controller starting in push-data.
    pub fn new(config: InrppConfig) -> Self {
        config.validate().expect("invalid INRPP config");
        PhaseController {
            config,
            phase: Phase::PushData,
            transitions: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Number of phase changes so far (flap metric for ablation A5).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Demand pressure `r_a / r`; infinite for a zero-capacity interface
    /// with demand.
    pub fn pressure(inputs: &PhaseInputs) -> f64 {
        if inputs.capacity.is_zero() {
            if inputs.anticipated.is_zero() {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            inputs.anticipated.fraction_of(inputs.capacity)
        }
    }

    /// Evaluate the FSM for this interval and return the (possibly new)
    /// phase.
    pub fn update(&mut self, inputs: PhaseInputs) -> Phase {
        let pressure = Self::pressure(&inputs);
        let congested = match self.phase {
            // entering congestion needs the higher threshold...
            Phase::PushData => pressure >= self.config.detour_enter,
            // ...leaving it needs to drop below the lower one
            Phase::Detour | Phase::BackPressure => pressure > self.config.detour_exit,
        };
        let cache_forces_bp = inputs.cache_fill >= self.config.cache_pressure_threshold;
        let next = if !congested && !cache_forces_bp {
            Phase::PushData
        } else if inputs.detour_available && !cache_forces_bp {
            Phase::Detour
        } else {
            Phase::BackPressure
        };
        if next != self.phase {
            self.transitions += 1;
            self.phase = next;
        }
        self.phase
    }

    /// The excess rate that must leave via detours (or be cached) this
    /// interval: `max(0, r_a - r)`.
    pub fn excess(inputs: &PhaseInputs) -> Rate {
        inputs.anticipated.saturating_sub(inputs.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(anticipated_mbps: f64, capacity_mbps: f64) -> PhaseInputs {
        PhaseInputs {
            anticipated: Rate::mbps(anticipated_mbps),
            capacity: Rate::mbps(capacity_mbps),
            detour_available: true,
            cache_fill: 0.0,
        }
    }

    fn ctl() -> PhaseController {
        PhaseController::new(InrppConfig::default())
    }

    #[test]
    fn starts_in_push_data() {
        assert_eq!(ctl().phase(), Phase::PushData);
    }

    #[test]
    fn stays_in_push_data_when_demand_fits() {
        let mut c = ctl();
        assert_eq!(c.update(inputs(5.0, 10.0)), Phase::PushData);
        assert_eq!(c.transitions(), 0);
    }

    #[test]
    fn enters_detour_when_demand_reaches_capacity() {
        let mut c = ctl();
        // r_a ≈ r (paper: "when r_a ≈ r, or r_a > r")
        assert_eq!(c.update(inputs(9.6, 10.0)), Phase::Detour);
        assert_eq!(c.update(inputs(12.0, 10.0)), Phase::Detour);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn falls_to_backpressure_without_detours() {
        let mut c = ctl();
        let mut i = inputs(12.0, 10.0);
        i.detour_available = false;
        assert_eq!(c.update(i), Phase::BackPressure);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut c = ctl();
        c.update(inputs(10.0, 10.0)); // -> Detour
        assert_eq!(c.phase(), Phase::Detour);
        // pressure drops to 0.9: still above detour_exit (0.85) => stay
        assert_eq!(c.update(inputs(9.0, 10.0)), Phase::Detour);
        // pressure 0.84 < exit: back to push-data
        assert_eq!(c.update(inputs(8.4, 10.0)), Phase::PushData);
        assert_eq!(c.transitions(), 2);
        // oscillating between 0.9 and 0.93 from push-data never triggers
        for _ in 0..10 {
            assert_eq!(c.update(inputs(9.0, 10.0)), Phase::PushData);
            assert_eq!(c.update(inputs(9.3, 10.0)), Phase::PushData);
        }
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn cache_pressure_forces_backpressure_even_with_detours() {
        let mut c = ctl();
        let mut i = inputs(12.0, 10.0);
        i.cache_fill = 0.9; // above the 0.8 threshold
        assert_eq!(c.update(i), Phase::BackPressure);
        // detour is available but the cache must drain first
        assert!(i.detour_available);
    }

    #[test]
    fn recovers_from_backpressure() {
        let mut c = ctl();
        let mut i = inputs(12.0, 10.0);
        i.detour_available = false;
        c.update(i); // BP
                     // demand drops and cache drains: back to push-data
        let calm = inputs(3.0, 10.0);
        assert_eq!(c.update(calm), Phase::PushData);
    }

    #[test]
    fn backpressure_to_detour_when_alternatives_appear() {
        let mut c = ctl();
        let mut i = inputs(12.0, 10.0);
        i.detour_available = false;
        assert_eq!(c.update(i), Phase::BackPressure);
        i.detour_available = true;
        assert_eq!(c.update(i), Phase::Detour);
    }

    #[test]
    fn pressure_and_excess_helpers() {
        let i = inputs(15.0, 10.0);
        assert!((PhaseController::pressure(&i) - 1.5).abs() < 1e-12);
        assert!((PhaseController::excess(&i).as_mbps() - 5.0).abs() < 1e-9);
        let calm = inputs(5.0, 10.0);
        assert_eq!(PhaseController::excess(&calm), Rate::ZERO);
        let dead = PhaseInputs {
            anticipated: Rate::mbps(1.0),
            capacity: Rate::ZERO,
            detour_available: false,
            cache_fill: 0.0,
        };
        assert_eq!(PhaseController::pressure(&dead), f64::INFINITY);
        let idle = PhaseInputs {
            anticipated: Rate::ZERO,
            capacity: Rate::ZERO,
            detour_available: false,
            cache_fill: 0.0,
        };
        assert_eq!(PhaseController::pressure(&idle), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::PushData.to_string(), "push-data");
        assert_eq!(Phase::Detour.to_string(), "detour");
        assert_eq!(Phase::BackPressure.to_string(), "back-pressure");
    }
}
