//! Interface monitoring (§4: "monitoring mechanisms at the interface
//! level will need to be finalised to enable stable detouring and avoid
//! extensive link swapping").
//!
//! Two pieces, composable with the [`crate::phase::PhaseController`]:
//!
//! * a **smoothed utilisation** tracker (EWMA) so detour decisions see
//!   trends rather than instantaneous queue noise;
//! * a **flap detector**: if an interface's phase changed more than
//!   `max_changes` times within the sliding `window`, the interface is
//!   *flapping* and detouring should be damped (hold the current state)
//!   until it calms down — the paper's "extensive link swapping" guard.

use std::collections::VecDeque;

use inrpp_sim::time::{SimDuration, SimTime};

/// Per-interface monitor: utilisation EWMA + phase-flap detection.
#[derive(Debug, Clone)]
pub struct InterfaceMonitor {
    alpha: f64,
    util: Option<f64>,
    window: SimDuration,
    max_changes: usize,
    changes: VecDeque<SimTime>,
    total_changes: u64,
}

impl InterfaceMonitor {
    /// A monitor smoothing with gain `alpha` (0 < alpha ≤ 1; higher =
    /// snappier) and flagging flapping when more than `max_changes` phase
    /// changes land within `window`.
    ///
    /// # Panics
    /// Panics on an out-of-range `alpha`, a zero window or zero
    /// `max_changes`.
    pub fn new(alpha: f64, window: SimDuration, max_changes: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA gain must be in (0, 1], got {alpha}"
        );
        assert!(!window.is_zero(), "flap window must be positive");
        assert!(max_changes > 0, "max_changes must be positive");
        InterfaceMonitor {
            alpha,
            util: None,
            window,
            max_changes,
            changes: VecDeque::new(),
            total_changes: 0,
        }
    }

    /// Defaults tuned for the packet engine: gain 1/4, 1 s window, 6
    /// changes allowed per window.
    pub fn with_defaults() -> Self {
        InterfaceMonitor::new(0.25, SimDuration::from_secs(1), 6)
    }

    /// Feed a utilisation sample in `[0, 1]`; returns the new smoothed
    /// value.
    pub fn record_utilisation(&mut self, sample: f64) -> f64 {
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&sample),
            "utilisation sample out of range: {sample}"
        );
        let next = match self.util {
            None => sample,
            Some(prev) => prev * (1.0 - self.alpha) + sample * self.alpha,
        };
        self.util = Some(next);
        next
    }

    /// The smoothed utilisation, if any samples arrived.
    pub fn utilisation(&self) -> Option<f64> {
        self.util
    }

    /// Register that the interface's phase changed at `now`.
    pub fn record_phase_change(&mut self, now: SimTime) {
        self.total_changes += 1;
        self.changes.push_back(now);
        self.expire(now);
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = SimTime::from_nanos(now.as_nanos().saturating_sub(self.window.as_nanos()));
        while self.changes.front().is_some_and(|&t| t < cutoff) {
            self.changes.pop_front();
        }
    }

    /// True when the recent change count exceeds the budget — detour
    /// decisions should be held steady.
    pub fn is_flapping(&mut self, now: SimTime) -> bool {
        self.expire(now);
        self.changes.len() > self.max_changes
    }

    /// Lifetime phase-change count.
    pub fn total_changes(&self) -> u64 {
        self.total_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon() -> InterfaceMonitor {
        InterfaceMonitor::new(0.5, SimDuration::from_secs(1), 3)
    }

    #[test]
    fn ewma_converges_to_signal() {
        let mut m = mon();
        assert_eq!(m.utilisation(), None);
        assert_eq!(m.record_utilisation(0.8), 0.8, "first sample adopted");
        for _ in 0..20 {
            m.record_utilisation(0.2);
        }
        let u = m.utilisation().unwrap();
        assert!((u - 0.2).abs() < 0.01, "smoothed {u}");
    }

    #[test]
    fn ewma_damps_spikes() {
        let mut m = InterfaceMonitor::new(0.1, SimDuration::from_secs(1), 3);
        for _ in 0..50 {
            m.record_utilisation(0.3);
        }
        m.record_utilisation(1.0); // one spike
        let u = m.utilisation().unwrap();
        assert!(u < 0.45, "one spike should barely move the EWMA: {u}");
    }

    #[test]
    fn flap_detection_within_window() {
        let mut m = mon();
        for i in 0..3 {
            m.record_phase_change(SimTime::from_millis(i * 100));
        }
        assert!(
            !m.is_flapping(SimTime::from_millis(300)),
            "3 changes allowed"
        );
        m.record_phase_change(SimTime::from_millis(350));
        assert!(
            m.is_flapping(SimTime::from_millis(400)),
            "4th change flips it"
        );
    }

    #[test]
    fn flaps_expire_with_time() {
        let mut m = mon();
        for i in 0..5 {
            m.record_phase_change(SimTime::from_millis(i * 10));
        }
        assert!(m.is_flapping(SimTime::from_millis(100)));
        // 1.2 s later the window is clear again
        assert!(!m.is_flapping(SimTime::from_millis(1300)));
        assert_eq!(m.total_changes(), 5, "lifetime counter is unaffected");
    }

    #[test]
    fn changes_exactly_at_window_edge_count() {
        let mut m = mon();
        m.record_phase_change(SimTime::from_secs(1));
        // at t=2s the change sits exactly at the cutoff: still counted
        m.record_phase_change(SimTime::from_secs(2));
        assert_eq!(m.total_changes(), 2);
        assert!(!m.is_flapping(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "EWMA gain")]
    fn zero_alpha_rejected() {
        let _ = InterfaceMonitor::new(0.0, SimDuration::from_secs(1), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = InterfaceMonitor::new(0.5, SimDuration::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "max_changes")]
    fn zero_budget_rejected() {
        let _ = InterfaceMonitor::new(0.5, SimDuration::from_secs(1), 0);
    }
}
