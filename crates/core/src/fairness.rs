//! Global fairness and local stability arithmetic (Fig. 3).
//!
//! The paper's worked example: two flows enter at node 1; one exits at
//! node 4 across a 2 Mbps bottleneck with an 8→3 Mbps side path via node
//! 3, one exits at node 3.
//!
//! * e2e flow control (max-min on single paths): rates (2, 8), Jain 0.73 —
//!   *local* fairness at the bottleneck only;
//! * INRPP: the shared 10 Mbps link splits 5/5 and node 2 detours flow A's
//!   3 Mbps excess through node 3 — *global* fairness (Jain 1.0) with
//!   *local* stability (node 2 reacts, not the endpoints).
//!
//! Both outcomes are computed with the same multipath max-min allocator
//! from `inrpp-flowsim`; only the path sets differ.

use inrpp_flowsim::allocator::max_min_allocate;
use inrpp_flowsim::strategy::{InrpStrategy, RoutingStrategy, SinglePathStrategy};
use inrpp_sim::metrics::JainIndex;
use inrpp_topology::graph::{NodeId, Topology};

/// Jain's fairness index over a rate vector (`None` for empty/all-zero).
pub fn jain(rates: &[f64]) -> Option<f64> {
    JainIndex::compute(rates)
}

/// Allocated rates for `flows = (src, dst)` pairs under a strategy.
pub fn strategy_rates(
    topo: &Topology,
    flows: &[(NodeId, NodeId)],
    strategy: &dyn RoutingStrategy,
) -> Vec<f64> {
    let paths: Vec<_> = flows
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| strategy.paths_for(topo, s, d, i as u64))
        .collect();
    max_min_allocate(topo, &paths).flow_rates
}

/// The Fig. 3 comparison, fully materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Outcome {
    /// Rates under e2e single-path control (bits/s): `[flow 1→4, flow 1→3]`.
    pub e2e_rates: Vec<f64>,
    /// Rates under INRPP with the node-3 detour.
    pub inrpp_rates: Vec<f64>,
    /// Jain index of the e2e allocation (paper: 0.73).
    pub e2e_jain: f64,
    /// Jain index of the INRPP allocation (paper: 1.0).
    pub inrpp_jain: f64,
}

/// Compute both sides of Fig. 3 on the canonical topology.
pub fn fig3_outcome() -> Fig3Outcome {
    let topo = Topology::fig3();
    let n = |s: &str| topo.node_by_name(s).expect("fig3 node");
    let flows = [(n("1"), n("4")), (n("1"), n("3"))];
    let e2e_rates = strategy_rates(&topo, &flows, &SinglePathStrategy);
    let inrp = InrpStrategy::with_defaults(&topo);
    let inrpp_rates = strategy_rates(&topo, &flows, &inrp);
    Fig3Outcome {
        e2e_jain: jain(&e2e_rates).expect("non-zero rates"),
        inrpp_jain: jain(&inrpp_rates).expect("non-zero rates"),
        e2e_rates,
        inrpp_rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_paper_numbers() {
        let out = fig3_outcome();
        // e2e: 2 and 8 Mbps, Jain 0.73
        assert!((out.e2e_rates[0] - 2e6).abs() < 1e3, "{:?}", out.e2e_rates);
        assert!((out.e2e_rates[1] - 8e6).abs() < 1e3, "{:?}", out.e2e_rates);
        assert!(
            (out.e2e_jain - 0.7353).abs() < 1e-3,
            "jain {}",
            out.e2e_jain
        );
        // INRPP: 5 and 5, Jain 1.0
        assert!(
            (out.inrpp_rates[0] - 5e6).abs() < 1e3,
            "{:?}",
            out.inrpp_rates
        );
        assert!(
            (out.inrpp_rates[1] - 5e6).abs() < 1e3,
            "{:?}",
            out.inrpp_rates
        );
        assert!((out.inrpp_jain - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inrpp_never_hurts_aggregate() {
        let out = fig3_outcome();
        let e2e_total: f64 = out.e2e_rates.iter().sum();
        let inrpp_total: f64 = out.inrpp_rates.iter().sum();
        assert!(inrpp_total >= e2e_total * (1.0 - 1e-9));
    }

    #[test]
    fn strategy_rates_arbitrary_flows() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        // one flow alone: takes its bottleneck (2 Mbps direct to node 4)
        let rates = strategy_rates(&topo, &[(n("1"), n("4"))], &SinglePathStrategy);
        assert!((rates[0] - 2e6).abs() < 1e3);
        // same flow with INRP: 2 + 3 detoured = 5
        let inrp = InrpStrategy::with_defaults(&topo);
        let rates = strategy_rates(&topo, &[(n("1"), n("4"))], &inrp);
        assert!((rates[0] - 5e6).abs() < 1e3, "{rates:?}");
    }

    #[test]
    fn jain_helper_delegates() {
        assert_eq!(jain(&[]), None);
        assert!((jain(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
    }
}
