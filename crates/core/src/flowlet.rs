//! Flowlet splitting (§1: detoured data "is split in flowlets").
//!
//! Spreading a flow's chunks packet-by-packet over paths with different
//! latencies reorders them massively. Flowlet switching (Sinha, Kandula &
//! Katabi, HotNets-III) exploits the burst structure of transport traffic:
//! whenever the gap since a flow's previous chunk exceeds the path latency
//! difference, the next burst can be steered to a *different* path without
//! risking reordering. The splitter below implements exactly that: a
//! per-flow timer; bursts inherit their flowlet's path, gaps open a new
//! flowlet whose path is re-chosen by deterministic hash.

use std::collections::HashMap;

use inrpp_sim::rng::splitmix64;
use inrpp_sim::time::{SimDuration, SimTime};

/// Opaque flow identity.
pub type FlowId = u64;

#[derive(Debug, Clone, Copy)]
struct FlowletState {
    last_chunk: SimTime,
    flowlet_serial: u64,
    choice: usize,
}

/// Burst-gap flowlet splitter.
#[derive(Debug, Clone)]
pub struct FlowletSplitter {
    gap: SimDuration,
    flows: HashMap<FlowId, FlowletState>,
    flowlets_opened: u64,
}

impl FlowletSplitter {
    /// A splitter that opens a new flowlet after `gap` of flow silence.
    /// The gap should exceed the latency spread of the candidate paths.
    pub fn new(gap: SimDuration) -> Self {
        FlowletSplitter {
            gap,
            flows: HashMap::new(),
            flowlets_opened: 0,
        }
    }

    /// The configured gap threshold.
    pub fn gap(&self) -> SimDuration {
        self.gap
    }

    /// Total flowlets opened so far (path-switch opportunity count).
    pub fn flowlets_opened(&self) -> u64 {
        self.flowlets_opened
    }

    /// Route the chunk of `flow` arriving at `now` over one of `n_choices`
    /// paths; returns the path index.
    ///
    /// Chunks within a burst stick to their flowlet's path; a gap larger
    /// than the threshold re-hashes onto a possibly different path.
    ///
    /// # Panics
    /// Panics if `n_choices == 0`.
    pub fn assign(&mut self, now: SimTime, flow: FlowId, n_choices: usize) -> usize {
        assert!(n_choices > 0, "flowlet assignment needs at least one path");
        let hash = |flow: FlowId, serial: u64| -> usize {
            let mut s = flow ^ serial.rotate_left(17) ^ 0xF10E_7153_77A9_D201;
            (splitmix64(&mut s) % n_choices as u64) as usize
        };
        match self.flows.get_mut(&flow) {
            None => {
                let choice = hash(flow, 0);
                self.flows.insert(
                    flow,
                    FlowletState {
                        last_chunk: now,
                        flowlet_serial: 0,
                        choice,
                    },
                );
                self.flowlets_opened += 1;
                choice
            }
            Some(state) => {
                let idle = now.saturating_duration_since(state.last_chunk);
                state.last_chunk = now;
                if idle > self.gap {
                    state.flowlet_serial += 1;
                    state.choice = hash(flow, state.flowlet_serial);
                    self.flowlets_opened += 1;
                }
                // A shrunken choice set (paths withdrawn) must stay in range.
                state.choice %= n_choices;
                state.choice
            }
        }
    }

    /// Forget a finished flow's state.
    pub fn forget(&mut self, flow: FlowId) {
        self.flows.remove(&flow);
    }

    /// Number of flows currently tracked.
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn burst_sticks_to_one_path() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let first = fs.assign(ms(0), 42, 4);
        for i in 1..100 {
            // chunks 1 ms apart: same burst
            assert_eq!(fs.assign(ms(i), 42, 4), first);
        }
        assert_eq!(fs.flowlets_opened(), 1);
    }

    #[test]
    fn gap_opens_new_flowlet() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let _ = fs.assign(ms(0), 42, 4);
        let _ = fs.assign(ms(50), 42, 4); // 50 ms gap > 10 ms
        assert_eq!(fs.flowlets_opened(), 2);
    }

    #[test]
    fn flowlets_eventually_use_multiple_paths() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(1));
        let mut used = std::collections::HashSet::new();
        for i in 0..64 {
            used.insert(fs.assign(ms(i * 100), 7, 4));
        }
        assert!(used.len() >= 2, "hash never switched paths: {used:?}");
    }

    #[test]
    fn different_flows_are_independent() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let choices: Vec<usize> = (0..32).map(|f| fs.assign(ms(0), f, 8)).collect();
        let distinct: std::collections::HashSet<_> = choices.iter().collect();
        assert!(distinct.len() >= 3, "flow hash collapsed: {choices:?}");
        assert_eq!(fs.tracked_flows(), 32);
    }

    #[test]
    fn assignment_is_deterministic() {
        let run = || {
            let mut fs = FlowletSplitter::new(SimDuration::from_millis(5));
            (0..50u64)
                .map(|i| fs.assign(ms(i * 7), i % 3, 5))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shrinking_choice_set_stays_in_range() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let _ = fs.assign(ms(0), 1, 8);
        let c = fs.assign(ms(1), 1, 2);
        assert!(c < 2);
    }

    #[test]
    fn forget_releases_state() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let _ = fs.assign(ms(0), 1, 4);
        assert_eq!(fs.tracked_flows(), 1);
        fs.forget(1);
        assert_eq!(fs.tracked_flows(), 0);
        // re-assignment starts a fresh flowlet
        let _ = fs.assign(ms(1), 1, 4);
        assert_eq!(fs.flowlets_opened(), 2);
    }

    #[test]
    fn exact_gap_does_not_split() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let a = fs.assign(ms(0), 9, 4);
        // exactly the gap: strict inequality keeps the flowlet
        let b = fs.assign(ms(10), 9, 4);
        assert_eq!(a, b);
        assert_eq!(fs.flowlets_opened(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_choices_panics() {
        let mut fs = FlowletSplitter::new(SimDuration::from_millis(10));
        let _ = fs.assign(ms(0), 1, 0);
    }
}
