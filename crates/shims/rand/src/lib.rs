//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate vendors the *trait surface* the tree actually uses — nothing more:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32` / `next_u64` /
//!   `fill_bytes`);
//! * [`SeedableRng`] — byte-seed construction plus the SplitMix64-based
//!   `seed_from_u64` default;
//! * [`Rng`] — the extension trait providing `random_range`, blanket-
//!   implemented for every [`RngCore`].
//!
//! `inrpp-sim`'s [`SimRng`] deliberately implements its *own* xoshiro256\*\*
//! so simulation streams never depend on this crate's (or upstream rand's)
//! algorithms; only the trait signatures matter here. Method semantics match
//! rand 0.9 closely enough for the workspace's tests, but the bit streams of
//! `random_range` are NOT guaranteed to match upstream rand — nothing
//! determinism-sensitive may rely on them (and nothing in-tree does: all
//! simulation draws go through `SimRng`'s inherent methods).

/// The core generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The byte-array seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build a generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the same scheme
    /// upstream rand documents) and construct from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range usable with [`Rng::random_range`], mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a single uniform value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo draw from 64 bits: bias < 2^-64 * span, irrelevant
                // for the stub's users (tests and workload sampling helpers).
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur for the types below; treat as raw draw.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                // 53-bit uniform in [0, 1), scaled into the range.
                let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + f * (self.end as f64 - self.start as f64);
                // Scaling can land exactly on `end` after rounding; clamp back
                // into the half-open interval.
                if v as $t >= self.end { self.start } else { v as $t }
            }
            fn is_empty_range(&self) -> bool {
                // NaN endpoints also make the range empty.
                self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            f < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let a: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&a));
            let b: f64 = rng.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&b));
            let c: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d: u8 = rng.random_range(0u8..=255);
            let _ = d;
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Echo([u8; 32]);
        impl SeedableRng for Echo {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Echo(seed)
            }
        }
        let a = Echo::seed_from_u64(7);
        let b = Echo::seed_from_u64(7);
        assert_eq!(a.0, b.0);
        let c = Echo::seed_from_u64(8);
        assert_ne!(a.0, c.0);
    }
}
