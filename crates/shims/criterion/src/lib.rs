//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate implements the subset of criterion's API the `crates/bench/benches/`
//! files use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_with_input` / `bench_function` / `finish`, [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a *measurement sketch*, not a statistics engine: each benchmark is
//! warmed up briefly, timed over a capped wall-clock window, and reported as
//! a single mean ns/iter line on stdout. Numbers are for eyeballing relative
//! cost, not for publication — swap in real criterion when crates.io access
//! exists.

use std::time::{Duration, Instant};

/// Opaque hint that stops the optimiser from deleting a benchmark body.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    mean_ns: f64,
    /// Iterations actually executed.
    iters: u64,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean cost per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: batches of doubling size until the window closes.
        let mut total_iters: u64 = 0;
        let mut batch: u64 = 1;
        let measure_start = Instant::now();
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
            batch = (batch * 2).min(1 << 20);
            elapsed = measure_start.elapsed();
        }
        self.mean_ns = elapsed.as_nanos() as f64 / total_iters as f64;
        self.iters = total_iters;
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Set the target sample count (accepted for API compatibility; the
    /// stub's timing loop is wall-clock-bounded instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            // Cap the stub's windows so `cargo bench` over many benches
            // stays fast regardless of what the bench files request.
            warm_up: self.warm_up.min(Duration::from_millis(100)),
            measurement: self.measurement.min(Duration::from_millis(300)),
        };
        f(&mut b);
        println!(
            "bench {}/{:<40} {:>14.1} ns/iter  ({} iters)",
            self.name, id, b.mean_ns, b.iters
        );
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.id.clone();
        self.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<Id: Into<BenchmarkId>, F>(&mut self, id: Id, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().id;
        self.run_one(&label, |b| f(b));
        self
    }

    /// Finish the group (no-op in the stub; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
        }
    }

    /// Benchmark a standalone function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("default", f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}
