//! The failure path of the `proptest!` macro: inputs are re-sampled from the
//! rng snapshot and attached to the panic message, and `prop_assume!`
//! rejections draw replacement cases instead of failing.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The replayed inputs in the panic message must be the ones the body
    /// saw. `x` is drawn from a singleton range, so the report is exact.
    #[test]
    #[should_panic(expected = "inputs: x = 7; ")]
    fn failing_case_reports_its_inputs(x in 7u64..8) {
        prop_assert!(x != 7, "triggered on {x}");
    }

    #[test]
    #[should_panic(expected = "triggered on 7")]
    fn failure_message_carries_the_assert_format(x in 7u64..8) {
        prop_assert!(x != 7, "triggered on {x}");
    }

    /// Assumptions filter, bodies still run for the surviving cases.
    #[test]
    fn assume_rejects_draw_replacements(x in 0u64..10) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }

    /// Multi-argument case: every argument appears in the report.
    #[test]
    #[should_panic(expected = "b = ")]
    fn all_arguments_reported(a in 0u64..4, b in 0u64..4) {
        prop_assert!(a + b > 100, "always fails");
    }
}
