//! The [`Strategy`] trait and its implementations for primitive ranges and
//! tuples. Unlike real proptest there is no value tree and no shrinking: a
//! strategy is simply a deterministic sampler.

use crate::TestRng;
use core::ops::{Range, RangeInclusive};

/// A generator of random values for one `proptest!` argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields clones of one value (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy on empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let f = rng.f64();
                let v = (self.start as f64 + f * (self.end as f64 - self.start as f64)) as $t;
                // Rounding at the high end may touch `end`; fold back inside.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges_sample_in_bounds");
        for _ in 0..10_000 {
            let a = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&a));
            let b = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&b));
            let c = (0u8..=2).sample(&mut rng);
            assert!(c <= 2);
            let (x, y) = ((1u64..5), (-2i32..3)).sample(&mut rng);
            assert!((1..5).contains(&x) && (-2..3).contains(&y));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let mut c = TestRng::from_name("u");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
