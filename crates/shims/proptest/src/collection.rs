//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use core::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a size drawn from a
/// `usize` range. Returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec strategy with empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.index(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let strat = vec(0u64..10, 2..6);
        let mut rng = TestRng::from_name("vec_sizes_respect_range");
        for _ in 0..2_000 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
