//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate implements the subset of proptest's API that `tests/properties.rs`
//! uses, on top of a tiny deterministic RNG:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`ProptestConfig::with_cases`],
//! * [`strategy::Strategy`] implemented for primitive ranges, tuples,
//!   [`collection::vec`], and [`bool::ANY`],
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim; since the
//!   RNG is seeded from the test name, every run explores the same cases and
//!   failures reproduce exactly.
//! * **No persistence files**, no forking, no timeouts.
//!
//! Determinism is a feature here, not a limitation: the reproduction's CI
//! gate demands bit-stable runs (see `tests/determinism.rs`).

use std::fmt;

pub mod strategy;

pub mod collection;

/// `proptest::bool` — strategies over booleans.
pub mod bool {
    /// Strategy producing uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut crate::TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
    /// Upper bound on rejected cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// The deterministic generator behind every strategy draw.
///
/// SplitMix64 seeded from an FNV-1a hash of the test's name: independent
/// tests get independent streams, and the same test explores the same cases
/// on every run, on every machine.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::index on empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Declare a block of property tests.
///
/// Mirrors `proptest::proptest!`: an optional `#![proptest_config(expr)]`
/// inner attribute followed by `#[test] fn name(pat in strategy, ...) { .. }`
/// items. Each generated `#[test]` samples its arguments `config.cases`
/// times and runs the body; `prop_assume!` rejections draw a replacement
/// case, assertion failures panic with the offending inputs attached.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                // Snapshot the rng so the failing case's inputs can be
                // re-sampled for the report — the originals are moved into
                // the body, and formatting them eagerly on every passing
                // case would waste the success path.
                let __proptest_rng_snapshot = rng.clone();
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let __proptest_outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __proptest_outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        let mut __proptest_replay = __proptest_rng_snapshot;
                        $(let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_replay,
                        );)+
                        panic!(
                            "proptest {} failed at case {}: {}\n    inputs: {}",
                            stringify!($name),
                            accepted,
                            msg,
                            format!(
                                concat!($(stringify!($arg), " = {:?}; "),+),
                                $(&$arg),+
                            )
                        )
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (lhs, rhs) = (&($left), &($right));
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                lhs,
                rhs
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&($left), &($right));
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (lhs, rhs) = (&($left), &($right));
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                lhs
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&($left), &($right));
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                lhs
            )));
        }
    }};
}

/// `prop_assume!(cond)` — reject the current case and draw a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
