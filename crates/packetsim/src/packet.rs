//! Wire types and configuration for the chunk-level simulator.

use inrpp::config::InrppConfig;
use inrpp::endpoint::Request;
use inrpp_sim::fault::FaultConfig;
use inrpp_sim::snap::{Snap, SnapError, SnapReader, SnapWriter};
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::ByteSize;
use inrpp_topology::graph::{LinkId, NodeId};

/// Flow identity.
pub type FlowId = u64;
/// Chunk sequence number.
pub type ChunkNo = u64;

/// A packet in flight. Data and request packets carry an explicit source
/// route (`route[hop]` is the node currently holding the packet); INRPP
/// routers may rewrite the tail of a data packet's route to splice in a
/// detour — the paper's "spoof the destination router's identifier ...
/// effectively tunnelling through the detour node".
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// A `⟨Nc, ACKc, Ac⟩` request travelling receiver → sender.
    Request {
        /// Owning flow.
        flow: FlowId,
        /// The request body.
        req: Request,
        /// Route from receiver to sender.
        route: Vec<NodeId>,
        /// Index of the node currently holding the packet.
        hop: usize,
    },
    /// A content chunk travelling sender → receiver.
    Data {
        /// Owning flow.
        flow: FlowId,
        /// Chunk number.
        chunk: ChunkNo,
        /// Remaining route (possibly detour-spliced).
        route: Vec<NodeId>,
        /// Index of the node currently holding the packet.
        hop: usize,
        /// Links traversed so far (stretch accounting).
        hops_travelled: u32,
        /// True once the chunk left its original shortest path.
        detoured: bool,
        /// Emission time at the sender (RTT samples).
        sent_at: SimTime,
    },
    /// A hop-by-hop back-pressure notification (travels one hop upstream,
    /// may be re-emitted).
    Slowdown {
        /// Body as defined in `inrpp::backpressure`.
        msg: inrpp::backpressure::SlowdownMsg,
        /// The flow whose arrival triggered it (lets the sender pick which
        /// flow enters the closed loop).
        flow: FlowId,
    },
}

impl Packet {
    /// Owning flow (all packet kinds are flow-scoped).
    pub fn flow(&self) -> FlowId {
        match self {
            Packet::Request { flow, .. }
            | Packet::Data { flow, .. }
            | Packet::Slowdown { flow, .. } => *flow,
        }
    }
}

/// One content transfer: `chunks × chunk_bytes` served by `src`, consumed
/// by `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferSpec {
    /// Flow identity (unique per simulation).
    pub flow: FlowId,
    /// Content source (sender host).
    pub src: NodeId,
    /// Content consumer (receiver host).
    pub dst: NodeId,
    /// Number of chunks in the object.
    pub chunks: u64,
    /// When the receiver starts requesting.
    pub start: SimTime,
}

impl TransferSpec {
    /// A transfer carrying (at least) `bits` of payload: the chunk count
    /// is `ceil(bits / chunk_bytes)`, minimum one chunk — the
    /// quantisation a fluid-model flow needs when replayed through the
    /// chunk-level engine (the flowsim↔packetsim differential harness).
    ///
    /// ```
    /// use inrpp_packetsim::TransferSpec;
    /// use inrpp_sim::time::SimTime;
    /// use inrpp_sim::units::ByteSize;
    /// use inrpp_topology::graph::NodeId;
    ///
    /// let t = TransferSpec::for_object_bits(
    ///     1, NodeId(0), NodeId(1), 25_000.0, ByteSize::bytes(1250), SimTime::ZERO,
    /// );
    /// assert_eq!(t.chunks, 3); // 25 kbit over 10 kbit chunks, rounded up
    /// ```
    pub fn for_object_bits(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bits: f64,
        chunk_bytes: ByteSize,
        start: SimTime,
    ) -> TransferSpec {
        // one quantisation rule for the whole suite: delegate to the
        // session facade's engine-neutral Transfer, so the two engines
        // can never drift apart on offered bits
        let t = inrpp::session::Transfer::for_object_bits(flow, src, dst, bits, chunk_bytes, start);
        TransferSpec {
            flow,
            src,
            dst,
            chunks: t.chunks,
            start,
        }
    }
}

impl Snap for TransferSpec {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.flow);
        w.put_u32(self.src.0);
        w.put_u32(self.dst.0);
        w.put_u64(self.chunks);
        self.start.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TransferSpec {
            flow: r.get_u64()?,
            src: NodeId(r.get_u32()?),
            dst: NodeId(r.get_u32()?),
            chunks: r.get_u64()?,
            start: SimTime::decode(r)?,
        })
    }
}

/// AIMD baseline parameters (receiver-driven window, ICP/TCP-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdConfig {
    /// Initial congestion window (chunks).
    pub initial_window: f64,
    /// Initial slow-start threshold (chunks).
    pub initial_ssthresh: f64,
    /// Retransmission timeout for an outstanding chunk.
    pub rto: SimDuration,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial_window: 2.0,
            initial_ssthresh: 64.0,
            rto: SimDuration::from_millis(500),
        }
    }
}

/// Which transport drives endpoints and routers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransportKind {
    /// The paper's protocol: push-data / detour / back-pressure + custody.
    Inrpp(InrppConfig),
    /// Baseline: AIMD window at the receiver, drop-tail routers.
    Aimd(AimdConfig),
    /// Coexistence (paper §4 future work: "co-existence with TCP/IP will
    /// have to be investigated"): both transports share the network.
    /// Routers apply INRPP custody/detour machinery to INRPP flows only;
    /// AIMD flows see plain drop-tail. Per-flow selection via
    /// [`crate::PacketSim::add_transfer_as`].
    Mixed {
        /// Configuration for the INRPP flows.
        inrpp: InrppConfig,
        /// Configuration for the AIMD flows.
        aimd: AimdConfig,
    },
}

/// Per-flow transport selection (meaningful under [`TransportKind::Mixed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTransport {
    /// The flow runs the paper's INRPP machinery.
    Inrpp,
    /// The flow runs the AIMD baseline.
    Aimd,
}

impl Snap for FlowTransport {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            FlowTransport::Inrpp => 0,
            FlowTransport::Aimd => 1,
        });
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(FlowTransport::Inrpp),
            1 => Ok(FlowTransport::Aimd),
            _ => Err(SnapError::Corrupt("flow transport tag out of range")),
        }
    }
}

/// Full configuration of a packet-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketSimConfig {
    /// Payload size of a data chunk.
    pub chunk_bytes: ByteSize,
    /// Size of a request/control packet.
    pub request_bytes: ByteSize,
    /// Per-channel queue bound, expressed as queueing delay.
    pub max_queue: SimDuration,
    /// Queue delay past which an INRPP router prefers a detour for new
    /// chunks (the operational trigger inside the detour phase).
    pub detour_queue_threshold: SimDuration,
    /// Transport selection.
    pub transport: TransportKind,
    /// Hard stop.
    pub horizon: SimDuration,
    /// Receiver loss-detection timeout (explicit timers per §3.2).
    pub receiver_timeout: SimDuration,
    /// Fault injection applied to data channels.
    pub fault: FaultConfig,
    /// RNG seed (fault injection, tie-breaking).
    pub seed: u64,
    /// Retain up to this many trace entries of notable events (detours,
    /// custody, back-pressure, drops). `0` disables tracing entirely.
    pub trace_capacity: usize,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            chunk_bytes: ByteSize::bytes(1250),
            request_bytes: ByteSize::bytes(50),
            max_queue: SimDuration::from_millis(50),
            detour_queue_threshold: SimDuration::from_millis(10),
            transport: TransportKind::Inrpp(InrppConfig::default()),
            horizon: SimDuration::from_secs(30),
            receiver_timeout: SimDuration::from_millis(500),
            fault: FaultConfig::default(),
            seed: 1,
            trace_capacity: 0,
        }
    }
}

/// Identifies one direction of a link: the canonical directed-channel
/// index used across the engine (`link.idx() * 2 + dir`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirIndex(pub usize);

impl DirIndex {
    /// Build from a link and the traversal direction.
    pub fn new(link: LinkId, a_to_b: bool) -> Self {
        DirIndex(link.idx() * 2 + usize::from(!a_to_b))
    }

    /// The underlying undirected link.
    pub fn link(self) -> LinkId {
        LinkId((self.0 / 2) as u32)
    }

    /// True when this is the `a -> b` direction.
    pub fn is_forward(self) -> bool {
        self.0 % 2 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_flow_accessor() {
        let p = Packet::Data {
            flow: 9,
            chunk: 3,
            route: vec![NodeId(0), NodeId(1)],
            hop: 0,
            hops_travelled: 0,
            detoured: false,
            sent_at: SimTime::ZERO,
        };
        assert_eq!(p.flow(), 9);
        let r = Packet::Request {
            flow: 7,
            req: Request {
                next: 0,
                ack: None,
                anticipated: 4,
            },
            route: vec![NodeId(1), NodeId(0)],
            hop: 0,
        };
        assert_eq!(r.flow(), 7);
    }

    #[test]
    fn dir_index_roundtrip() {
        let d = DirIndex::new(LinkId(3), true);
        assert_eq!(d.0, 6);
        assert!(d.is_forward());
        assert_eq!(d.link(), LinkId(3));
        let r = DirIndex::new(LinkId(3), false);
        assert_eq!(r.0, 7);
        assert!(!r.is_forward());
        assert_eq!(r.link(), LinkId(3));
    }

    #[test]
    fn defaults_are_consistent() {
        let c = PacketSimConfig::default();
        assert!(c.detour_queue_threshold < c.max_queue);
        assert!(c.chunk_bytes > c.request_bytes);
        match c.transport {
            TransportKind::Inrpp(ic) => ic.validate().unwrap(),
            _ => panic!("default transport should be INRPP"),
        }
        let a = AimdConfig::default();
        assert!(a.initial_window >= 1.0);
        assert!(a.initial_ssthresh > a.initial_window);
    }
}
