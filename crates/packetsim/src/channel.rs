//! The directed channel model: serialisation + propagation + bounded queue.
//!
//! A channel is one direction of a topology link. Instead of simulating a
//! FIFO of packets, the channel tracks the instant its transmitter frees
//! up (`busy_until`): the implied queue backlog at time `t` is
//! `(busy_until - t) × rate`, so queue occupancy, drop decisions and drain
//! times all fall out of one scalar — an exact equivalence for FIFO
//! service with deterministic rates.
//!
//! The queue bound is expressed as *time* (`max_queue`): a packet whose
//! wait would exceed it is refused — drop-tail for the AIMD baseline,
//! custody hand-off for INRPP.

use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::Rate;
use inrpp_topology::Topology;

/// Refusal: accepting the packet would exceed the queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow {
    /// How long the packet would have waited.
    pub would_wait: SimDuration,
}

/// One direction of a link.
#[derive(Debug, Clone)]
pub struct Channel {
    rate: Rate,
    delay: SimDuration,
    max_queue: SimDuration,
    busy_until: SimTime,
    /// accumulated transmitter busy time (for utilisation reporting)
    busy_accum: SimDuration,
    /// bits accepted (for utilisation/goodput accounting)
    bits_sent: f64,
}

impl Channel {
    /// A channel of `rate`/`delay` refusing waits beyond `max_queue`.
    ///
    /// # Panics
    /// Panics on a zero rate — a dead link should not exist in a topology.
    pub fn new(rate: Rate, delay: SimDuration, max_queue: SimDuration) -> Self {
        assert!(!rate.is_zero(), "channel rate must be positive");
        Channel {
            rate,
            delay,
            max_queue,
            busy_until: SimTime::ZERO,
            busy_accum: SimDuration::ZERO,
            bits_sent: 0.0,
        }
    }

    /// Channel capacity.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Current queueing delay a new packet would see.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_duration_since(now)
    }

    /// Queue backlog in bits at `now`.
    pub fn backlog_bits(&self, now: SimTime) -> f64 {
        self.rate.bits_in(self.queue_delay(now))
    }

    /// Residual rate estimate over the next `window`: the share of the
    /// window not already committed to queued traffic.
    pub fn residual_rate(&self, now: SimTime, window: SimDuration) -> Rate {
        if window.is_zero() {
            return Rate::ZERO;
        }
        let busy = self.queue_delay(now).min(window);
        let free = 1.0 - busy.ratio(window);
        self.rate * free
    }

    /// Try to enqueue `bits`; on success returns the instant the packet
    /// fully arrives at the far end.
    pub fn try_send(&mut self, now: SimTime, bits: f64) -> Result<SimTime, Overflow> {
        assert!(bits > 0.0, "cannot send an empty packet");
        let wait = self.queue_delay(now);
        if wait > self.max_queue {
            return Err(Overflow { would_wait: wait });
        }
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let tx = self.rate.time_to_send(bits);
        self.busy_until = start + tx;
        self.busy_accum += tx;
        self.bits_sent += bits;
        Ok(self.busy_until + self.delay)
    }

    /// Earliest instant the implied queue delay falls to `target`.
    pub fn drain_time(&self, target: SimDuration) -> SimTime {
        SimTime::from_nanos(self.busy_until.as_nanos().saturating_sub(target.as_nanos()))
    }

    /// Transmitter utilisation over `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            (self.busy_accum.ratio(horizon)).min(1.0)
        }
    }

    /// Total bits accepted.
    pub fn bits_sent(&self) -> f64 {
        self.bits_sent
    }
}

/// Structure-of-arrays channel state for every directed channel of a
/// topology, indexed by `link.idx() * 2 + direction` (direction `0` is
/// the link's `a → b` orientation — the `DenseChannels` convention).
///
/// Semantically a `Vec<Channel>` with the per-channel constants split
/// from the mutable scalars: the engine's hot path touches `busy_until`
/// for queue probes far more often than anything else, and packing
/// those into one dense array keeps the probe loop in cache. Every
/// method body mirrors [`Channel`] operation for operation, so a bank
/// and a `Vec<Channel>` driven with the same calls produce bit-identical
/// floats.
#[derive(Debug, Clone)]
pub struct ChannelBank {
    max_queue: SimDuration,
    rate: Vec<Rate>,
    delay: Vec<SimDuration>,
    busy_until: Vec<SimTime>,
    busy_accum: Vec<SimDuration>,
    bits_sent: Vec<f64>,
}

impl ChannelBank {
    /// Both directions of every link in `topo`, all sharing `max_queue`.
    ///
    /// # Panics
    /// Panics on a zero-capacity link, like [`Channel::new`] — validate
    /// the topology first when a typed error is wanted.
    pub fn from_topology(topo: &Topology, max_queue: SimDuration) -> Self {
        let ndir = topo.link_ids().count() * 2;
        let mut bank = ChannelBank {
            max_queue,
            rate: Vec::with_capacity(ndir),
            delay: Vec::with_capacity(ndir),
            busy_until: vec![SimTime::ZERO; ndir],
            busy_accum: vec![SimDuration::ZERO; ndir],
            bits_sent: vec![0.0; ndir],
        };
        for l in topo.link_ids() {
            let link = topo.link(l);
            assert!(!link.capacity.is_zero(), "channel rate must be positive");
            for _ in 0..2 {
                bank.rate.push(link.capacity);
                bank.delay.push(link.delay);
            }
        }
        bank
    }

    /// Number of directed channels.
    pub fn len(&self) -> usize {
        self.rate.len()
    }

    /// True when the topology had no links.
    pub fn is_empty(&self) -> bool {
        self.rate.is_empty()
    }

    /// Capacity of directed channel `d`.
    #[inline]
    pub fn rate(&self, d: usize) -> Rate {
        self.rate[d]
    }

    /// Replace the capacity of directed channel `d` mid-run (fault-plan
    /// capacity degradation). Only *future* sends see the new rate: bits
    /// already accepted keep the `busy_until` horizon they were admitted
    /// under, exactly as a real transmitter finishes the frame it is
    /// clocking out.
    ///
    /// # Panics
    /// Panics on a zero rate — outages are modelled by the engine's
    /// down-channel state, not by a dead transmitter.
    pub fn set_rate(&mut self, d: usize, rate: Rate) {
        assert!(!rate.is_zero(), "channel rate must be positive");
        self.rate[d] = rate;
    }

    /// Propagation delay of directed channel `d`.
    #[inline]
    pub fn delay(&self, d: usize) -> SimDuration {
        self.delay[d]
    }

    /// Current queueing delay a new packet on `d` would see.
    #[inline]
    pub fn queue_delay(&self, d: usize, now: SimTime) -> SimDuration {
        self.busy_until[d].saturating_duration_since(now)
    }

    /// Queue backlog of `d` in bits at `now`.
    #[inline]
    pub fn backlog_bits(&self, d: usize, now: SimTime) -> f64 {
        self.rate[d].bits_in(self.queue_delay(d, now))
    }

    /// Residual rate of `d` over the next `window`.
    pub fn residual_rate(&self, d: usize, now: SimTime, window: SimDuration) -> Rate {
        if window.is_zero() {
            return Rate::ZERO;
        }
        let busy = self.queue_delay(d, now).min(window);
        let free = 1.0 - busy.ratio(window);
        self.rate[d] * free
    }

    /// Try to enqueue `bits` on `d`; on success returns the arrival
    /// instant at the far end.
    pub fn try_send(&mut self, d: usize, now: SimTime, bits: f64) -> Result<SimTime, Overflow> {
        assert!(bits > 0.0, "cannot send an empty packet");
        let wait = self.queue_delay(d, now);
        if wait > self.max_queue {
            return Err(Overflow { would_wait: wait });
        }
        let start = if self.busy_until[d] > now {
            self.busy_until[d]
        } else {
            now
        };
        let tx = self.rate[d].time_to_send(bits);
        self.busy_until[d] = start + tx;
        self.busy_accum[d] += tx;
        self.bits_sent[d] += bits;
        Ok(self.busy_until[d] + self.delay[d])
    }

    /// Earliest instant `d`'s implied queue delay falls to `target`.
    #[inline]
    pub fn drain_time(&self, d: usize, target: SimDuration) -> SimTime {
        SimTime::from_nanos(
            self.busy_until[d]
                .as_nanos()
                .saturating_sub(target.as_nanos()),
        )
    }

    /// Transmitter utilisation of `d` over `[0, horizon]`.
    pub fn utilisation(&self, d: usize, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            (self.busy_accum[d].ratio(horizon)).min(1.0)
        }
    }

    /// Total bits accepted on `d`.
    pub fn bits_sent(&self, d: usize) -> f64 {
        self.bits_sent[d]
    }

    /// Mean transmitter utilisation across channels with non-zero
    /// capacity; `0.0` when no channel qualifies (linkless topology).
    ///
    /// Zero-capacity channels are excluded rather than averaged in as
    /// `0/0` — the same guard `Allocation::mean_utilisation` grew in the
    /// fluid engine, so a degenerate topology reports `0.0` instead of
    /// poisoning downstream aggregates with NaN.
    pub fn mean_utilisation(&self, horizon: SimDuration) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for d in 0..self.len() {
            if self.rate[d].is_zero() {
                continue;
            }
            sum += self.utilisation(d, horizon);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        // 1 Mbps, 10 ms delay, 100 ms max queue
        Channel::new(
            Rate::mbps(1.0),
            SimDuration::from_millis(10),
            SimDuration::from_millis(100),
        )
    }

    #[test]
    fn idle_channel_delivers_after_tx_plus_delay() {
        let mut c = ch();
        // 10_000 bits at 1 Mbps = 10 ms tx; + 10 ms delay = 20 ms
        let arrival = c.try_send(SimTime::ZERO, 10_000.0).unwrap();
        assert_eq!(arrival, SimTime::from_millis(20));
        assert_eq!(c.queue_delay(SimTime::ZERO), SimDuration::from_millis(10));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut c = ch();
        let a1 = c.try_send(SimTime::ZERO, 10_000.0).unwrap();
        let a2 = c.try_send(SimTime::ZERO, 10_000.0).unwrap();
        assert_eq!(a2.duration_since(a1), SimDuration::from_millis(10));
        assert!((c.backlog_bits(SimTime::ZERO) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn queue_bound_refuses() {
        let mut c = ch();
        // fill 100 ms worth of queue = 100_000 bits
        for _ in 0..10 {
            c.try_send(SimTime::ZERO, 10_000.0).unwrap();
        }
        // wait would now be 100 ms... still == max, accepted
        c.try_send(SimTime::ZERO, 1_000.0).unwrap();
        let err = c.try_send(SimTime::ZERO, 10_000.0).unwrap_err();
        assert!(err.would_wait > SimDuration::from_millis(100));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut c = ch();
        c.try_send(SimTime::ZERO, 50_000.0).unwrap(); // 50 ms of queue
        assert_eq!(
            c.queue_delay(SimTime::from_millis(20)),
            SimDuration::from_millis(30)
        );
        assert_eq!(c.queue_delay(SimTime::from_millis(60)), SimDuration::ZERO);
        // after draining, a new send starts immediately
        let arrival = c.try_send(SimTime::from_millis(60), 1_000.0).unwrap();
        assert_eq!(arrival, SimTime::from_millis(71));
    }

    #[test]
    fn residual_rate_reflects_backlog() {
        let mut c = ch();
        assert_eq!(
            c.residual_rate(SimTime::ZERO, SimDuration::from_millis(100)),
            Rate::mbps(1.0)
        );
        c.try_send(SimTime::ZERO, 50_000.0).unwrap(); // 50 ms busy
        let r = c.residual_rate(SimTime::ZERO, SimDuration::from_millis(100));
        assert!((r.as_mbps() - 0.5).abs() < 1e-9, "residual {r}");
        c.try_send(SimTime::ZERO, 50_000.0).unwrap();
        let r = c.residual_rate(SimTime::ZERO, SimDuration::from_millis(100));
        assert_eq!(r, Rate::ZERO);
    }

    #[test]
    fn utilisation_accumulates() {
        let mut c = ch();
        c.try_send(SimTime::ZERO, 100_000.0).unwrap(); // 100 ms busy
        assert!((c.utilisation(SimDuration::from_secs(1)) - 0.1).abs() < 1e-9);
        assert_eq!(c.bits_sent(), 100_000.0);
        assert_eq!(c.utilisation(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Channel::new(
            Rate::ZERO,
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
        );
    }

    #[test]
    #[should_panic(expected = "empty packet")]
    fn empty_packet_rejected() {
        let mut c = ch();
        let _ = c.try_send(SimTime::ZERO, 0.0);
    }

    #[test]
    fn bank_matches_individual_channels_bit_for_bit() {
        let topo = Topology::fig3();
        let max_queue = SimDuration::from_millis(50);
        let mut bank = ChannelBank::from_topology(&topo, max_queue);
        let mut channels: Vec<Channel> = topo
            .link_ids()
            .flat_map(|l| {
                let link = topo.link(l);
                (0..2).map(move |_| Channel::new(link.capacity, link.delay, max_queue))
            })
            .collect();
        assert_eq!(bank.len(), channels.len());
        let mut rng = inrpp_sim::rng::SimRng::from_seed_u64(0xBA2C);
        let mut now = SimTime::ZERO;
        for _ in 0..2_000 {
            let d = rng.index(channels.len());
            let bits = (rng.index(12_000) + 1) as f64;
            now += SimDuration::from_micros(rng.index(500) as u64);
            assert_eq!(
                bank.try_send(d, now, bits),
                channels[d].try_send(now, bits),
                "divergence on channel {d}"
            );
            assert_eq!(bank.queue_delay(d, now), channels[d].queue_delay(now));
            assert_eq!(bank.backlog_bits(d, now), channels[d].backlog_bits(now));
            let w = SimDuration::from_millis(100);
            assert_eq!(
                bank.residual_rate(d, now, w),
                channels[d].residual_rate(now, w)
            );
            assert_eq!(
                bank.drain_time(d, SimDuration::from_millis(1)),
                channels[d].drain_time(SimDuration::from_millis(1))
            );
        }
        for (d, c) in channels.iter().enumerate() {
            let h = SimDuration::from_secs(30);
            assert_eq!(bank.utilisation(d, h), c.utilisation(h));
            assert_eq!(bank.bits_sent(d), c.bits_sent());
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bank_rejects_zero_capacity_links() {
        let mut topo = Topology::new("dead-link");
        let a = topo.add_node();
        let b = topo.add_node();
        topo.add_link(a, b, Rate::ZERO, SimDuration::from_millis(1))
            .unwrap();
        let _ = ChannelBank::from_topology(&topo, SimDuration::from_millis(50));
    }
}
