//! The chunk-level backend of the `inrpp::session` facade.
//!
//! [`PacketEngine`] implements [`Engine`] so the same typed [`Session`]
//! that drives the fluid simulator also drives this crate's
//! discrete-event engine — the flowsim/packetsim differential harness is
//! the two backends run off one session description.
//!
//! Strategy mapping: the packet engine's routing is built in (shortest
//! path, plus in-network detours under the INRPP transport), so only the
//! regimes with a chunk-level transport are accepted:
//!
//! | session strategy | packet transport |
//! |---|---|
//! | `SessionStrategy::Urp(_)` | [`TransportKind::Inrpp`] (the fluid detour knobs are ignored; the engine's own `InrppConfig` governs) |
//! | `SessionStrategy::Sp` | [`TransportKind::Aimd`] (the drop-tail e2e baseline) |
//! | `Ecmp` / `Mptcp` | rejected with [`SessionError::IncompatibleStrategy`] |
//!
//! Traffic mapping: transfer-native sessions replay chunk-for-chunk
//! (their `chunk_bytes` must match the engine configuration); flow-native
//! sessions are quantised with the shared `ceil(bits / chunk_bits)` rule,
//! so offered bits line up with a fluid replay of the same session.

use std::collections::BTreeMap;

use inrpp::config::InrppConfig;
use inrpp::service::{Checkpoint, ServiceSession};
use inrpp::session::{
    Aggregates, Engine, EngineDetail, EngineKind, FlowRecord, PacketSummary, Probe, ProbeSet,
    RunReport, Session, SessionError, SessionStrategy, Traffic, Transfer,
};
use inrpp_sim::snap::{SnapReader, SnapWriter};
use inrpp_sim::time::SimTime;
use inrpp_sim::units::ByteSize;
use inrpp_topology::graph::NodeId;

use crate::engine::{PacketRun, PacketSim};
use crate::packet::{AimdConfig, FlowTransport, PacketSimConfig, TransferSpec, TransportKind};
use crate::report::PacketSimReport;

/// The chunk-level [`Engine`] backend, wrapping a [`PacketSimConfig`].
///
/// ```
/// use inrpp::session::{Session, SessionStrategy, Transfer};
/// use inrpp_packetsim::session::PacketEngine;
/// use inrpp_sim::time::{SimDuration, SimTime};
/// use inrpp_sim::units::ByteSize;
/// use inrpp_topology::Topology;
///
/// let topo = Topology::fig3();
/// let n = |s: &str| topo.node_by_name(s).unwrap();
/// let session = Session::builder()
///     .topology(&topo)
///     .transfers(vec![Transfer::for_object_bits(
///         1, n("1"), n("4"), 1e6, ByteSize::bytes(1250), SimTime::ZERO,
///     )])
///     .strategy(SessionStrategy::urp())
///     .horizon(SimDuration::from_secs(30))
///     .build()?;
/// let report = session.run_on(&PacketEngine::default(), &mut [])?;
/// assert_eq!(report.strategy, "INRPP");
/// assert_eq!(report.aggregates.completed_flows, 1);
/// # Ok::<(), inrpp::session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PacketEngine {
    config: PacketSimConfig,
}

impl Default for PacketEngine {
    /// INRPP transport with the default packet configuration.
    fn default() -> Self {
        PacketEngine::new(PacketSimConfig::default())
    }
}

impl PacketEngine {
    /// A backend with an explicit packet configuration. The configured
    /// transport must agree with the session strategy at run time (URP
    /// needs INRPP, SP needs AIMD).
    pub fn new(config: PacketSimConfig) -> Self {
        PacketEngine { config }
    }

    /// Convenience: INRPP transport with the given protocol
    /// configuration, other knobs at their defaults.
    pub fn inrpp(config: InrppConfig) -> Self {
        PacketEngine::new(PacketSimConfig {
            transport: TransportKind::Inrpp(config),
            ..PacketSimConfig::default()
        })
    }

    /// Convenience: the AIMD baseline transport, other knobs at their
    /// defaults.
    pub fn aimd(config: AimdConfig) -> Self {
        PacketEngine::new(PacketSimConfig {
            transport: TransportKind::Aimd(config),
            ..PacketSimConfig::default()
        })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &PacketSimConfig {
        &self.config
    }

    /// The per-flow transport the configured engine transport maps to.
    fn flow_transport(&self) -> FlowTransport {
        match self.config.transport {
            TransportKind::Aimd(_) => FlowTransport::Aimd,
            _ => FlowTransport::Inrpp,
        }
    }

    /// The effective packet configuration for `session`: the engine's
    /// knobs with the session's horizon and seed spliced in.
    fn effective_config(&self, session: &Session<'_>) -> PacketSimConfig {
        let mut config = self.config;
        config.horizon = session.horizon();
        config.seed = session.seed();
        config
    }

    /// Check the session strategy against the configured transport.
    fn check_strategy(&self, strategy: SessionStrategy) -> Result<(), SessionError> {
        let ok = matches!(
            (strategy, &self.config.transport),
            (SessionStrategy::Urp(_), TransportKind::Inrpp(_))
                | (SessionStrategy::Sp, TransportKind::Aimd(_))
        );
        if ok {
            Ok(())
        } else {
            Err(SessionError::IncompatibleStrategy {
                engine: EngineKind::Packet,
                strategy: strategy.name().to_string(),
            })
        }
    }

    /// The session's traffic as packet transfers (chunk-exact for
    /// transfer-native sessions, quantised for flow-native ones),
    /// together with each flow's endpoints for the per-flow records.
    fn transfers(&self, session: &Session<'_>) -> Result<Vec<TransferSpec>, SessionError> {
        match session.traffic() {
            Traffic::Transfers(ts) => {
                for t in ts {
                    if t.chunk_bytes != self.config.chunk_bytes {
                        return Err(SessionError::IncompatibleTraffic {
                            engine: EngineKind::Packet,
                            reason: format!(
                                "flow {} quantised with {} chunks but the engine is \
                                 configured for {} chunks",
                                t.flow, t.chunk_bytes, self.config.chunk_bytes
                            ),
                        });
                    }
                }
                Ok(ts
                    .iter()
                    .map(|t| TransferSpec {
                        flow: t.flow,
                        src: t.src,
                        dst: t.dst,
                        chunks: t.chunks,
                        start: t.start,
                    })
                    .collect())
            }
            Traffic::Flows(w) => Ok(w
                .flows
                .iter()
                .map(|f| {
                    TransferSpec::for_object_bits(
                        f.id,
                        f.src,
                        f.dst,
                        f.size_bits,
                        self.config.chunk_bytes,
                        f.arrival,
                    )
                })
                .collect()),
        }
    }
}

impl Engine for PacketEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Packet
    }

    fn run(
        &self,
        session: &Session<'_>,
        probes: &mut [&mut dyn Probe],
    ) -> Result<RunReport, SessionError> {
        self.check_strategy(session.strategy())?;
        let transfers = self.transfers(session)?;
        let config = self.effective_config(session);
        let mut sim = PacketSim::try_new(session.topology(), config)?;
        sim.set_faults(session.faults().clone());
        let kind = self.flow_transport();
        for t in &transfers {
            sim.try_add_transfer_as(*t, kind)?;
        }
        // workers > 1: the sharded path, partitioned by the session seed —
        // byte-identical to the sequential run by the shard contract
        let report = if session.workers() > 1 {
            sim.try_run_sharded_probed(session.workers(), session.seed(), probes)?
        } else {
            sim.try_run_probed(probes)?
        };
        Ok(assemble_packet_report(&report, &endpoints_of(&transfers)))
    }
}

/// The per-flow endpoint lookup the facade's [`FlowRecord`]s need (the
/// packet report carries flow ids only).
fn endpoints_of(specs: &[TransferSpec]) -> BTreeMap<u64, (NodeId, NodeId)> {
    specs.iter().map(|t| (t.flow, (t.src, t.dst))).collect()
}

/// Lift a [`PacketSimReport`] into the engine-agnostic [`RunReport`] —
/// shared by the one-shot [`Engine::run`] path and [`PacketService`]
/// snapshots so the two can never drift.
fn assemble_packet_report(
    report: &PacketSimReport,
    endpoints: &BTreeMap<u64, (NodeId, NodeId)>,
) -> RunReport {
    let chunk_bits = report.chunk_bytes.as_bits() as f64;
    let flows: Vec<FlowRecord> = report
        .flows
        .iter()
        .map(|f| {
            let (src, dst) = endpoints[&f.flow];
            FlowRecord {
                flow: f.flow,
                src,
                dst,
                offered_bits: f.chunks_total as f64 * chunk_bits,
                delivered_bits: f.chunks_delivered as f64 * chunk_bits,
                arrival: f.started_at,
                fct_secs: f.fct().map(|d| d.as_secs_f64()),
                subpaths: 1,
                routed: true,
                retransmits: f.retransmits,
                detours: f.detours,
                custody_rescues: f.custody_rescues,
                outage_delay_secs: f.outage_delay.as_secs_f64(),
            }
        })
        .collect();
    let offered_bits: f64 = flows.iter().map(|f| f.offered_bits).sum();
    let delivered_bits: f64 = flows.iter().map(|f| f.delivered_bits).sum();
    let aggregates = Aggregates {
        arrived_flows: flows.len(),
        completed_flows: report.completed(),
        unroutable_flows: 0,
        offered_bits,
        delivered_bits,
        duration: report.horizon,
        mean_fct_secs: report.mean_fct_secs(),
        mean_jain: report.jain_goodput().unwrap_or(0.0),
        mean_utilisation: report.mean_utilisation,
    };
    RunReport {
        engine: EngineKind::Packet,
        strategy: report.transport.clone(),
        topology: report.topology.clone(),
        flows,
        aggregates,
        channel_utilisation: report.channel_utilisation.clone(),
        detail: EngineDetail::Packet(PacketSummary {
            chunks_delivered: report.chunks_delivered,
            chunks_dropped: report.chunks_dropped,
            chunks_detoured: report.chunks_detoured,
            chunks_custodied: report.chunks_custodied,
            chunks_rescued: report.chunks_rescued,
            backpressure_msgs: report.backpressure_msgs,
            chunk_bits,
        }),
    }
}

/// The packet engine as a [`ServiceSession`] — a steppable, feedable,
/// checkpointable chunk-level run behind the same trait that fronts
/// [`inrpp::service::FluidService`].
///
/// Checkpoints are **deterministic-replay logs** (the driver schedule:
/// advance boundaries and fed transfers), not state snapshots — see
/// [`PacketRun`] for the trade-off. Resume rebuilds the engine from the
/// session spec and silently replays the log, so the resumed run is
/// bit-identical to the uninterrupted one.
///
/// Service runs always execute on the sequential engine. A session with
/// `workers > 1` is accepted: by the shard-equivalence contract
/// (`tests/shard_equivalence.rs`) the sharded one-shot run is
/// byte-identical to this sequential run, so reports, probe streams,
/// and checkpoints agree across the two paths.
pub struct PacketService<'a> {
    run: PacketRun<'a>,
    kind: FlowTransport,
    chunk_bytes: ByteSize,
    fingerprint: u64,
}

impl<'a> PacketService<'a> {
    /// Open a stepping session: validates the strategy/transport pairing
    /// and the traffic quantisation exactly like [`Engine::run`], then
    /// parks a [`PacketRun`] at time zero.
    pub fn open(engine: &PacketEngine, session: &Session<'a>) -> Result<Self, SessionError> {
        engine.check_strategy(session.strategy())?;
        let transfers = engine.transfers(session)?;
        let config = engine.effective_config(session);
        let kind = engine.flow_transport();
        let mut sim = PacketSim::try_new(session.topology(), config)?;
        sim.set_faults(session.faults().clone());
        for t in &transfers {
            sim.try_add_transfer_as(*t, kind)?;
        }
        Ok(PacketService {
            run: sim.start()?,
            kind,
            chunk_bytes: config.chunk_bytes,
            fingerprint: session.fingerprint(),
        })
    }

    /// Rebuild a session from a [`Checkpoint`] taken by
    /// [`ServiceSession::checkpoint`] on an identical session spec and
    /// engine configuration. Continues bit-identically from the
    /// checkpoint instant.
    pub fn resume(
        engine: &PacketEngine,
        session: &Session<'a>,
        checkpoint: &Checkpoint,
    ) -> Result<Self, SessionError> {
        checkpoint.validate(EngineKind::Packet, session)?;
        engine.check_strategy(session.strategy())?;
        let transfers = engine.transfers(session)?;
        let config = engine.effective_config(session);
        let kind = engine.flow_transport();
        let with_kinds: Vec<(TransferSpec, FlowTransport)> =
            transfers.into_iter().map(|t| (t, kind)).collect();
        let mut r = SnapReader::new(checkpoint.body());
        let run = PacketRun::restore(
            session.topology(),
            config,
            with_kinds,
            session.faults().clone(),
            &mut r,
        )?;
        r.finish().map_err(|e| {
            SessionError::CheckpointMismatch(format!("corrupt packet checkpoint: {e}"))
        })?;
        Ok(PacketService {
            run,
            kind,
            chunk_bytes: config.chunk_bytes,
            fingerprint: checkpoint.fingerprint,
        })
    }

    fn consume(self, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        let endpoints = endpoints_of(self.run.transfers());
        let report = self.run.finish(probes)?;
        Ok(assemble_packet_report(&report, &endpoints))
    }

    /// Finish without boxing (convenience over the trait's
    /// `Box<Self>`-consuming [`ServiceSession::finish`]).
    pub fn finish_run(self, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        self.consume(probes)
    }
}

impl ServiceSession for PacketService<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Packet
    }

    fn now(&self) -> SimTime {
        self.run.now()
    }

    fn horizon(&self) -> SimTime {
        self.run.horizon()
    }

    fn advance(
        &mut self,
        to: SimTime,
        probes: &mut [&mut dyn Probe],
    ) -> Result<SimTime, SessionError> {
        let now = self.run.run_until(to, probes)?;
        let snap = self.snapshot();
        ProbeSet::new(probes).report(&snap);
        Ok(now)
    }

    fn feed(&mut self, transfer: &Transfer) -> Result<(), SessionError> {
        if transfer.chunk_bytes != self.chunk_bytes {
            return Err(SessionError::IncompatibleTraffic {
                engine: EngineKind::Packet,
                reason: format!(
                    "flow {} quantised with {} chunks but the engine is \
                     configured for {} chunks",
                    transfer.flow, transfer.chunk_bytes, self.chunk_bytes
                ),
            });
        }
        self.run.feed(
            TransferSpec {
                flow: transfer.flow,
                src: transfer.src,
                dst: transfer.dst,
                chunks: transfer.chunks,
                start: transfer.start,
            },
            self.kind,
        )
    }

    fn snapshot(&self) -> RunReport {
        assemble_packet_report(&self.run.report_now(), &endpoints_of(self.run.transfers()))
    }

    fn checkpoint(&self) -> Checkpoint {
        let mut w = SnapWriter::new();
        self.run.encode_checkpoint(&mut w);
        Checkpoint::new(EngineKind::Packet, self.fingerprint, w.into_bytes())
    }

    fn finish(self: Box<Self>, probes: &mut [&mut dyn Probe]) -> Result<RunReport, SessionError> {
        (*self).consume(probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp::session::{QuantileProbe, Session, TimeSeriesProbe, Transfer};
    use inrpp_sim::time::{SimDuration, SimTime};
    use inrpp_sim::units::ByteSize;
    use inrpp_topology::Topology;

    fn fig3_session(topo: &Topology, chunks: u64) -> Session<'_> {
        let n = |s: &str| topo.node_by_name(s).unwrap();
        Session::builder()
            .topology(topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(60))
            .build()
            .expect("valid session")
    }

    #[test]
    fn facade_run_matches_direct_packetsim() {
        // behaviour preservation: the facade must reproduce a
        // hand-constructed PacketSim run bit-for-bit
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 200);
        let facade = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("packet run");

        let mut sim = PacketSim::new(
            &topo,
            PacketSimConfig {
                horizon: SimDuration::from_secs(60),
                ..PacketSimConfig::default()
            },
        );
        sim.add_transfer(TransferSpec {
            flow: 1,
            src: topo.node_by_name("1").unwrap(),
            dst: topo.node_by_name("4").unwrap(),
            chunks: 200,
            start: SimTime::ZERO,
        });
        let direct = sim.run();

        let summary = facade.packet().expect("packet detail");
        assert_eq!(summary.chunks_delivered, direct.chunks_delivered);
        assert_eq!(summary.chunks_detoured, direct.chunks_detoured);
        assert_eq!(summary.backpressure_msgs, direct.backpressure_msgs);
        assert_eq!(
            facade.flows[0].fct_secs,
            direct.flows[0].fct().map(|d| d.as_secs_f64())
        );
        assert_eq!(facade.channel_utilisation, direct.channel_utilisation);
        assert_eq!(facade.strategy, "INRPP");
    }

    #[test]
    fn rejects_incompatible_strategies() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let base = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks: 10,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .horizon(SimDuration::from_secs(5));
        for strategy in [SessionStrategy::Ecmp, SessionStrategy::Mptcp] {
            let session = base.clone().strategy(strategy).build().expect("builds");
            let err = session
                .run_on(&PacketEngine::default(), &mut [])
                .unwrap_err();
            assert_eq!(
                err,
                SessionError::IncompatibleStrategy {
                    engine: EngineKind::Packet,
                    strategy: strategy.name().to_string(),
                }
            );
        }
        // SP needs the AIMD transport, not INRPP...
        let sp = base.clone().strategy(SessionStrategy::Sp).build().unwrap();
        assert!(sp.run_on(&PacketEngine::default(), &mut []).is_err());
        // ...and runs once the engine is configured for it
        let report = sp
            .run_on(&PacketEngine::aimd(AimdConfig::default()), &mut [])
            .expect("AIMD run");
        assert_eq!(report.strategy, "AIMD");
    }

    #[test]
    fn rejects_mismatched_chunk_quantisation() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks: 10,
                chunk_bytes: ByteSize::bytes(999),
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(5))
            .build()
            .expect("builds");
        let err = session
            .run_on(&PacketEngine::default(), &mut [])
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::IncompatibleTraffic {
                engine: EngineKind::Packet,
                ..
            }
        ));
    }

    #[test]
    fn typed_unroutable_error_replaces_panic() {
        let mut topo = Topology::new("split");
        let a = topo.add_node();
        let b = topo.add_node();
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 7,
                src: a,
                dst: b,
                chunks: 1,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(1))
            .build()
            .expect("builds");
        let err = session
            .run_on(&PacketEngine::default(), &mut [])
            .unwrap_err();
        assert_eq!(err, SessionError::Unroutable { flow: 7 });
    }

    #[test]
    fn invalid_inrpp_config_is_typed() {
        let ic = InrppConfig {
            interval: SimDuration::ZERO,
            ..InrppConfig::default()
        };
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 5);
        let err = session
            .run_on(&PacketEngine::inrpp(ic), &mut [])
            .unwrap_err();
        assert!(matches!(err, SessionError::InvalidConfig(_)));
    }

    #[test]
    fn probes_stream_during_packet_run() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 120);
        let mut series = TimeSeriesProbe::new(SimDuration::from_millis(50));
        let mut quant = QuantileProbe::new();
        let probed = session
            .run_on(&PacketEngine::default(), &mut [&mut series, &mut quant])
            .expect("probed packet run");
        let plain = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("plain packet run");
        // probes are passive
        assert_eq!(probed.aggregates, plain.aggregates);
        assert_eq!(probed.flows, plain.flows);
        // and genuinely streaming: the series covers the transfer's
        // lifetime, not just its end
        let arrivals: u32 = series.bins().iter().map(|b| b.arrivals).sum();
        assert_eq!(arrivals, 1);
        assert!(
            series
                .bins()
                .iter()
                .filter(|b| b.delivered_bits > 0.0)
                .count()
                > 1,
            "delivery progress should span multiple buckets: {:?}",
            series.bins()
        );
        assert_eq!(quant.count(), 1);
        assert_eq!(
            quant.quantile(1.0),
            probed.flows[0].fct_secs,
            "probe FCT must equal the report FCT"
        );
    }

    #[test]
    fn flow_native_sessions_are_quantised() {
        use inrpp::session::{FlowSpec, Workload};
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let flows = vec![FlowSpec {
            id: 1,
            src: n("1"),
            dst: n("4"),
            size_bits: 25_000.0, // 2.5 chunks at 10 kbit -> 3 chunks
            arrival: SimTime::ZERO,
        }];
        let session = Session::builder()
            .topology(&topo)
            .workload(Workload {
                offered_bits: flows.iter().map(|f| f.size_bits).sum(),
                flows,
            })
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(10))
            .build()
            .expect("builds");
        let report = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("quantised run");
        let chunk_bits = PacketSimConfig::default().chunk_bytes.as_bits() as f64;
        assert_eq!(report.flows[0].offered_bits, 3.0 * chunk_bits);
        assert_eq!(report.aggregates.completed_flows, 1);
    }

    #[test]
    fn service_run_matches_one_shot_run() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 400);
        let engine = PacketEngine::default();
        let one_shot = session.run_on(&engine, &mut []).expect("one-shot run");

        let mut svc = PacketService::open(&engine, &session).expect("open");
        assert_eq!(svc.kind(), EngineKind::Packet);
        for ms in [70, 400, 2_000] {
            svc.advance(SimTime::from_millis(ms), &mut []).unwrap();
        }
        let stepped = svc.finish_run(&mut []).expect("stepped run");
        assert_eq!(one_shot.aggregates, stepped.aggregates);
        assert_eq!(one_shot.flows, stepped.flows);
        assert_eq!(one_shot.channel_utilisation, stepped.channel_utilisation);
        let (a, b) = (one_shot.packet().unwrap(), stepped.packet().unwrap());
        assert_eq!(a.chunks_delivered, b.chunks_delivered);
        assert_eq!(a.chunks_detoured, b.chunks_detoured);
        assert_eq!(a.backpressure_msgs, b.backpressure_msgs);
    }

    #[test]
    fn service_checkpoint_resume_is_bit_identical() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 400);
        let engine = PacketEngine::default();
        let one_shot = session.run_on(&engine, &mut []).expect("one-shot run");

        let mut head = PacketService::open(&engine, &session).expect("open");
        head.advance(SimTime::from_millis(300), &mut []).unwrap();
        head.advance(SimTime::from_millis(800), &mut []).unwrap();
        let snap_at_ckpt = head.snapshot();
        assert!(
            snap_at_ckpt.aggregates.delivered_bits < one_shot.aggregates.delivered_bits,
            "checkpoint must land mid-run"
        );
        let ckpt = head.checkpoint();
        drop(head);

        // envelope round-trips through bytes
        let ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let tail = PacketService::resume(&engine, &session, &ckpt).expect("resume");
        assert_eq!(tail.now(), SimTime::from_millis(800));
        // a restored service re-checkpoints byte-identically...
        assert_eq!(tail.checkpoint().to_bytes(), ckpt.to_bytes());
        // ...and sees the same mid-run snapshot
        assert_eq!(tail.snapshot().aggregates, snap_at_ckpt.aggregates);
        let resumed = tail.finish_run(&mut []).expect("resumed run");
        assert_eq!(one_shot.aggregates, resumed.aggregates);
        assert_eq!(one_shot.flows, resumed.flows);
        assert_eq!(one_shot.channel_utilisation, resumed.channel_utilisation);
        assert_eq!(
            one_shot.aggregates.delivered_bits.to_bits(),
            resumed.aggregates.delivered_bits.to_bits()
        );
    }

    #[test]
    fn service_feed_validates_and_streams() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 200);
        let engine = PacketEngine::default();
        let mut svc = PacketService::open(&engine, &session).expect("open");
        svc.advance(SimTime::from_millis(100), &mut []).unwrap();

        let n = |s: &str| topo.node_by_name(s).unwrap();
        // wrong quantisation is a typed error
        let wrong = Transfer {
            flow: 9,
            src: n("2"),
            dst: n("4"),
            chunks: 20,
            chunk_bytes: ByteSize::bytes(999),
            start: SimTime::from_secs(2),
        };
        assert!(matches!(
            svc.feed(&wrong).unwrap_err(),
            SessionError::IncompatibleTraffic { .. }
        ));
        // a matching transfer lands and shows up in the final report
        let ok = Transfer {
            chunk_bytes: PacketSimConfig::default().chunk_bytes,
            ..wrong
        };
        svc.feed(&ok).unwrap();
        // stale id (slots are ranks of ascending ids) is rejected
        assert!(matches!(
            svc.feed(&Transfer { flow: 3, ..ok }).unwrap_err(),
            SessionError::InvalidTransfer(_)
        ));
        let report = svc.finish_run(&mut []).expect("fed run");
        assert_eq!(report.aggregates.arrived_flows, 2);
        assert_eq!(report.aggregates.completed_flows, 2);
        let fed = report.flows.iter().find(|f| f.flow == 9).expect("fed flow");
        assert_eq!((fed.src, fed.dst), (n("2"), n("4")));
    }

    #[test]
    fn service_resume_rejects_wrong_spec_and_engine() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 200);
        let engine = PacketEngine::default();
        let svc = PacketService::open(&engine, &session).expect("open");
        let ckpt = svc.checkpoint();

        // different spec (horizon) -> fingerprint mismatch
        let other = fig3_session(&topo, 100);
        let err = PacketService::resume(&engine, &other, &ckpt)
            .err()
            .expect("fingerprint mismatch must be rejected");
        assert!(matches!(err, SessionError::CheckpointMismatch(_)), "{err}");

        // fluid-tagged envelope
        let fluid = Checkpoint::new(
            EngineKind::Fluid,
            session.fingerprint(),
            ckpt.body().to_vec(),
        );
        let err = PacketService::resume(&engine, &session, &fluid)
            .err()
            .expect("engine mismatch must be rejected");
        assert!(matches!(err, SessionError::CheckpointMismatch(_)), "{err}");

        // truncated body
        let cut = Checkpoint::new(
            EngineKind::Packet,
            session.fingerprint(),
            ckpt.body()[..ckpt.body().len().saturating_sub(1)].to_vec(),
        );
        assert!(PacketService::resume(&engine, &session, &cut).is_err());
    }

    #[test]
    fn sharded_one_shot_matches_sequential_service() {
        // the workers>1 contract: a sharded straight run equals the
        // (sequential) service-mode run of the same session
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![
                Transfer {
                    flow: 1,
                    src: n("1"),
                    dst: n("4"),
                    chunks: 300,
                    chunk_bytes: PacketSimConfig::default().chunk_bytes,
                    start: SimTime::ZERO,
                },
                Transfer {
                    flow: 2,
                    src: n("2"),
                    dst: n("3"),
                    chunks: 150,
                    chunk_bytes: PacketSimConfig::default().chunk_bytes,
                    start: SimTime::from_millis(40),
                },
            ])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(60))
            .workers(3)
            .build()
            .expect("valid session");
        // blind detouring: the one knob sharded runs require
        let engine = PacketEngine::inrpp(InrppConfig {
            load_aware_detour: false,
            ..InrppConfig::default()
        });
        let sharded = session.run_on(&engine, &mut []).expect("sharded run");

        let mut svc = PacketService::open(&engine, &session).expect("open");
        svc.advance(SimTime::from_millis(250), &mut []).unwrap();
        let stepped = svc.finish_run(&mut []).expect("service run");
        assert_eq!(sharded.aggregates, stepped.aggregates);
        assert_eq!(sharded.flows, stepped.flows);
        assert_eq!(sharded.channel_utilisation, stepped.channel_utilisation);
    }
}
