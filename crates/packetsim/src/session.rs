//! The chunk-level backend of the `inrpp::session` facade.
//!
//! [`PacketEngine`] implements [`Engine`] so the same typed [`Session`]
//! that drives the fluid simulator also drives this crate's
//! discrete-event engine — the flowsim/packetsim differential harness is
//! the two backends run off one session description.
//!
//! Strategy mapping: the packet engine's routing is built in (shortest
//! path, plus in-network detours under the INRPP transport), so only the
//! regimes with a chunk-level transport are accepted:
//!
//! | session strategy | packet transport |
//! |---|---|
//! | `SessionStrategy::Urp(_)` | [`TransportKind::Inrpp`] (the fluid detour knobs are ignored; the engine's own `InrppConfig` governs) |
//! | `SessionStrategy::Sp` | [`TransportKind::Aimd`] (the drop-tail e2e baseline) |
//! | `Ecmp` / `Mptcp` | rejected with [`SessionError::IncompatibleStrategy`] |
//!
//! Traffic mapping: transfer-native sessions replay chunk-for-chunk
//! (their `chunk_bytes` must match the engine configuration); flow-native
//! sessions are quantised with the shared `ceil(bits / chunk_bits)` rule,
//! so offered bits line up with a fluid replay of the same session.

use inrpp::config::InrppConfig;
use inrpp::session::{
    Aggregates, Engine, EngineDetail, EngineKind, FlowRecord, PacketSummary, Probe, RunReport,
    Session, SessionError, SessionStrategy, Traffic,
};
use inrpp_topology::graph::NodeId;

use crate::engine::PacketSim;
use crate::packet::{AimdConfig, PacketSimConfig, TransferSpec, TransportKind};

/// The chunk-level [`Engine`] backend, wrapping a [`PacketSimConfig`].
///
/// ```
/// use inrpp::session::{Session, SessionStrategy, Transfer};
/// use inrpp_packetsim::session::PacketEngine;
/// use inrpp_sim::time::{SimDuration, SimTime};
/// use inrpp_sim::units::ByteSize;
/// use inrpp_topology::Topology;
///
/// let topo = Topology::fig3();
/// let n = |s: &str| topo.node_by_name(s).unwrap();
/// let session = Session::builder()
///     .topology(&topo)
///     .transfers(vec![Transfer::for_object_bits(
///         1, n("1"), n("4"), 1e6, ByteSize::bytes(1250), SimTime::ZERO,
///     )])
///     .strategy(SessionStrategy::urp())
///     .horizon(SimDuration::from_secs(30))
///     .build()?;
/// let report = session.run_on(&PacketEngine::default(), &mut [])?;
/// assert_eq!(report.strategy, "INRPP");
/// assert_eq!(report.aggregates.completed_flows, 1);
/// # Ok::<(), inrpp::session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PacketEngine {
    config: PacketSimConfig,
}

impl Default for PacketEngine {
    /// INRPP transport with the default packet configuration.
    fn default() -> Self {
        PacketEngine::new(PacketSimConfig::default())
    }
}

impl PacketEngine {
    /// A backend with an explicit packet configuration. The configured
    /// transport must agree with the session strategy at run time (URP
    /// needs INRPP, SP needs AIMD).
    pub fn new(config: PacketSimConfig) -> Self {
        PacketEngine { config }
    }

    /// Convenience: INRPP transport with the given protocol
    /// configuration, other knobs at their defaults.
    pub fn inrpp(config: InrppConfig) -> Self {
        PacketEngine::new(PacketSimConfig {
            transport: TransportKind::Inrpp(config),
            ..PacketSimConfig::default()
        })
    }

    /// Convenience: the AIMD baseline transport, other knobs at their
    /// defaults.
    pub fn aimd(config: AimdConfig) -> Self {
        PacketEngine::new(PacketSimConfig {
            transport: TransportKind::Aimd(config),
            ..PacketSimConfig::default()
        })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &PacketSimConfig {
        &self.config
    }

    /// Check the session strategy against the configured transport.
    fn check_strategy(&self, strategy: SessionStrategy) -> Result<(), SessionError> {
        let ok = matches!(
            (strategy, &self.config.transport),
            (SessionStrategy::Urp(_), TransportKind::Inrpp(_))
                | (SessionStrategy::Sp, TransportKind::Aimd(_))
        );
        if ok {
            Ok(())
        } else {
            Err(SessionError::IncompatibleStrategy {
                engine: EngineKind::Packet,
                strategy: strategy.name().to_string(),
            })
        }
    }

    /// The session's traffic as packet transfers (chunk-exact for
    /// transfer-native sessions, quantised for flow-native ones),
    /// together with each flow's endpoints for the per-flow records.
    fn transfers(&self, session: &Session<'_>) -> Result<Vec<TransferSpec>, SessionError> {
        match session.traffic() {
            Traffic::Transfers(ts) => {
                for t in ts {
                    if t.chunk_bytes != self.config.chunk_bytes {
                        return Err(SessionError::IncompatibleTraffic {
                            engine: EngineKind::Packet,
                            reason: format!(
                                "flow {} quantised with {} chunks but the engine is \
                                 configured for {} chunks",
                                t.flow, t.chunk_bytes, self.config.chunk_bytes
                            ),
                        });
                    }
                }
                Ok(ts
                    .iter()
                    .map(|t| TransferSpec {
                        flow: t.flow,
                        src: t.src,
                        dst: t.dst,
                        chunks: t.chunks,
                        start: t.start,
                    })
                    .collect())
            }
            Traffic::Flows(w) => Ok(w
                .flows
                .iter()
                .map(|f| {
                    TransferSpec::for_object_bits(
                        f.id,
                        f.src,
                        f.dst,
                        f.size_bits,
                        self.config.chunk_bytes,
                        f.arrival,
                    )
                })
                .collect()),
        }
    }
}

impl Engine for PacketEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Packet
    }

    fn run(
        &self,
        session: &Session<'_>,
        probes: &mut [&mut dyn Probe],
    ) -> Result<RunReport, SessionError> {
        self.check_strategy(session.strategy())?;
        let transfers = self.transfers(session)?;
        let mut config = self.config;
        config.horizon = session.horizon();
        config.seed = session.seed();
        let mut sim = PacketSim::try_new(session.topology(), config)?;
        let mut endpoints: std::collections::BTreeMap<u64, (NodeId, NodeId)> =
            std::collections::BTreeMap::new();
        for t in &transfers {
            endpoints.insert(t.flow, (t.src, t.dst));
            let kind = match self.config.transport {
                TransportKind::Aimd(_) => crate::packet::FlowTransport::Aimd,
                _ => crate::packet::FlowTransport::Inrpp,
            };
            sim.try_add_transfer_as(*t, kind)?;
        }
        // workers > 1: the sharded path, partitioned by the session seed —
        // byte-identical to the sequential run by the shard contract
        let report = if session.workers() > 1 {
            sim.try_run_sharded_probed(session.workers(), session.seed(), probes)?
        } else {
            sim.try_run_probed(probes)?
        };

        let chunk_bits = report.chunk_bytes.as_bits() as f64;
        let flows: Vec<FlowRecord> = report
            .flows
            .iter()
            .map(|f| {
                let (src, dst) = endpoints[&f.flow];
                FlowRecord {
                    flow: f.flow,
                    src,
                    dst,
                    offered_bits: f.chunks_total as f64 * chunk_bits,
                    delivered_bits: f.chunks_delivered as f64 * chunk_bits,
                    arrival: f.started_at,
                    fct_secs: f.fct().map(|d| d.as_secs_f64()),
                    subpaths: 1,
                    routed: true,
                    retransmits: f.retransmits,
                }
            })
            .collect();
        let offered_bits: f64 = flows.iter().map(|f| f.offered_bits).sum();
        let delivered_bits: f64 = flows.iter().map(|f| f.delivered_bits).sum();
        let aggregates = Aggregates {
            arrived_flows: flows.len(),
            completed_flows: report.completed(),
            unroutable_flows: 0,
            offered_bits,
            delivered_bits,
            duration: report.horizon,
            mean_fct_secs: report.mean_fct_secs(),
            mean_jain: report.jain_goodput().unwrap_or(0.0),
            mean_utilisation: report.mean_utilisation,
        };
        Ok(RunReport {
            engine: EngineKind::Packet,
            strategy: report.transport.clone(),
            topology: report.topology.clone(),
            flows,
            aggregates,
            channel_utilisation: report.channel_utilisation.clone(),
            detail: EngineDetail::Packet(PacketSummary {
                chunks_delivered: report.chunks_delivered,
                chunks_dropped: report.chunks_dropped,
                chunks_detoured: report.chunks_detoured,
                chunks_custodied: report.chunks_custodied,
                backpressure_msgs: report.backpressure_msgs,
                chunk_bits,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inrpp::session::{QuantileProbe, Session, TimeSeriesProbe, Transfer};
    use inrpp_sim::time::{SimDuration, SimTime};
    use inrpp_sim::units::ByteSize;
    use inrpp_topology::Topology;

    fn fig3_session(topo: &Topology, chunks: u64) -> Session<'_> {
        let n = |s: &str| topo.node_by_name(s).unwrap();
        Session::builder()
            .topology(topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(60))
            .build()
            .expect("valid session")
    }

    #[test]
    fn facade_run_matches_direct_packetsim() {
        // behaviour preservation: the facade must reproduce a
        // hand-constructed PacketSim run bit-for-bit
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 200);
        let facade = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("packet run");

        let mut sim = PacketSim::new(
            &topo,
            PacketSimConfig {
                horizon: SimDuration::from_secs(60),
                ..PacketSimConfig::default()
            },
        );
        sim.add_transfer(TransferSpec {
            flow: 1,
            src: topo.node_by_name("1").unwrap(),
            dst: topo.node_by_name("4").unwrap(),
            chunks: 200,
            start: SimTime::ZERO,
        });
        let direct = sim.run();

        let summary = facade.packet().expect("packet detail");
        assert_eq!(summary.chunks_delivered, direct.chunks_delivered);
        assert_eq!(summary.chunks_detoured, direct.chunks_detoured);
        assert_eq!(summary.backpressure_msgs, direct.backpressure_msgs);
        assert_eq!(
            facade.flows[0].fct_secs,
            direct.flows[0].fct().map(|d| d.as_secs_f64())
        );
        assert_eq!(facade.channel_utilisation, direct.channel_utilisation);
        assert_eq!(facade.strategy, "INRPP");
    }

    #[test]
    fn rejects_incompatible_strategies() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let base = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks: 10,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .horizon(SimDuration::from_secs(5));
        for strategy in [SessionStrategy::Ecmp, SessionStrategy::Mptcp] {
            let session = base.clone().strategy(strategy).build().expect("builds");
            let err = session
                .run_on(&PacketEngine::default(), &mut [])
                .unwrap_err();
            assert_eq!(
                err,
                SessionError::IncompatibleStrategy {
                    engine: EngineKind::Packet,
                    strategy: strategy.name().to_string(),
                }
            );
        }
        // SP needs the AIMD transport, not INRPP...
        let sp = base.clone().strategy(SessionStrategy::Sp).build().unwrap();
        assert!(sp.run_on(&PacketEngine::default(), &mut []).is_err());
        // ...and runs once the engine is configured for it
        let report = sp
            .run_on(&PacketEngine::aimd(AimdConfig::default()), &mut [])
            .expect("AIMD run");
        assert_eq!(report.strategy, "AIMD");
    }

    #[test]
    fn rejects_mismatched_chunk_quantisation() {
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 1,
                src: n("1"),
                dst: n("4"),
                chunks: 10,
                chunk_bytes: ByteSize::bytes(999),
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(5))
            .build()
            .expect("builds");
        let err = session
            .run_on(&PacketEngine::default(), &mut [])
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::IncompatibleTraffic {
                engine: EngineKind::Packet,
                ..
            }
        ));
    }

    #[test]
    fn typed_unroutable_error_replaces_panic() {
        let mut topo = Topology::new("split");
        let a = topo.add_node();
        let b = topo.add_node();
        let session = Session::builder()
            .topology(&topo)
            .transfers(vec![Transfer {
                flow: 7,
                src: a,
                dst: b,
                chunks: 1,
                chunk_bytes: PacketSimConfig::default().chunk_bytes,
                start: SimTime::ZERO,
            }])
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(1))
            .build()
            .expect("builds");
        let err = session
            .run_on(&PacketEngine::default(), &mut [])
            .unwrap_err();
        assert_eq!(err, SessionError::Unroutable { flow: 7 });
    }

    #[test]
    fn invalid_inrpp_config_is_typed() {
        let ic = InrppConfig {
            interval: SimDuration::ZERO,
            ..InrppConfig::default()
        };
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 5);
        let err = session
            .run_on(&PacketEngine::inrpp(ic), &mut [])
            .unwrap_err();
        assert!(matches!(err, SessionError::InvalidConfig(_)));
    }

    #[test]
    fn probes_stream_during_packet_run() {
        let topo = Topology::fig3();
        let session = fig3_session(&topo, 120);
        let mut series = TimeSeriesProbe::new(SimDuration::from_millis(50));
        let mut quant = QuantileProbe::new();
        let probed = session
            .run_on(&PacketEngine::default(), &mut [&mut series, &mut quant])
            .expect("probed packet run");
        let plain = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("plain packet run");
        // probes are passive
        assert_eq!(probed.aggregates, plain.aggregates);
        assert_eq!(probed.flows, plain.flows);
        // and genuinely streaming: the series covers the transfer's
        // lifetime, not just its end
        let arrivals: u32 = series.bins().iter().map(|b| b.arrivals).sum();
        assert_eq!(arrivals, 1);
        assert!(
            series
                .bins()
                .iter()
                .filter(|b| b.delivered_bits > 0.0)
                .count()
                > 1,
            "delivery progress should span multiple buckets: {:?}",
            series.bins()
        );
        assert_eq!(quant.count(), 1);
        assert_eq!(
            quant.quantile(1.0),
            probed.flows[0].fct_secs,
            "probe FCT must equal the report FCT"
        );
    }

    #[test]
    fn flow_native_sessions_are_quantised() {
        use inrpp::session::{FlowSpec, Workload};
        let topo = Topology::fig3();
        let n = |s: &str| topo.node_by_name(s).unwrap();
        let flows = vec![FlowSpec {
            id: 1,
            src: n("1"),
            dst: n("4"),
            size_bits: 25_000.0, // 2.5 chunks at 10 kbit -> 3 chunks
            arrival: SimTime::ZERO,
        }];
        let session = Session::builder()
            .topology(&topo)
            .workload(Workload {
                offered_bits: flows.iter().map(|f| f.size_bits).sum(),
                flows,
            })
            .strategy(SessionStrategy::urp())
            .horizon(SimDuration::from_secs(10))
            .build()
            .expect("builds");
        let report = session
            .run_on(&PacketEngine::default(), &mut [])
            .expect("quantised run");
        let chunk_bits = PacketSimConfig::default().chunk_bytes.as_bits() as f64;
        assert_eq!(report.flows[0].offered_bits, 3.0 * chunk_bits);
        assert_eq!(report.aggregates.completed_flows, 1);
    }
}
