//! Per-run metrics for the packet-level simulator.

use inrpp_sim::metrics::JainIndex;
use inrpp_sim::time::{SimDuration, SimTime};
use inrpp_sim::units::ByteSize;

use crate::packet::FlowId;

/// Outcome of one transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// Flow identity.
    pub flow: FlowId,
    /// Object length in chunks.
    pub chunks_total: u64,
    /// Distinct chunks delivered to the receiver.
    pub chunks_delivered: u64,
    /// When the receiver started.
    pub started_at: SimTime,
    /// Completion instant, `None` if unfinished at the horizon.
    pub completed_at: Option<SimTime>,
    /// Requests re-issued after timeout.
    pub retransmits: u64,
    /// Largest out-of-order distance observed at the receiver: how far
    /// ahead of the in-order watermark a chunk arrived. Detour-split
    /// traffic reorders (paper §4 lists this as an open issue); this
    /// quantifies by how much.
    pub max_reorder_distance: u64,
    /// Fault-driven detours: chunk forwardings of this flow that left
    /// their planned path because the next channel was down. Congestion
    /// detours are excluded (see the run-level `chunks_detoured` for
    /// those), so a fault-free run reports 0 regardless of load.
    pub detours: u64,
    /// Chunks of this flow re-homed from a crashed node's custody store
    /// to the nearest surviving custody point (fault-plan recovery
    /// metric).
    pub custody_rescues: u64,
    /// Simulated time this flow's chunks spent stalled by fault-plan
    /// outages: custody wait that overlapped a down channel plus the
    /// crash-to-rescue latency of re-homed chunks.
    pub outage_delay: SimDuration,
}

impl FlowStats {
    /// Flow completion time, when finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.duration_since(self.started_at))
    }

    /// Delivered fraction in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.chunks_total == 0 {
            1.0
        } else {
            self.chunks_delivered as f64 / self.chunks_total as f64
        }
    }

    /// Goodput in bits/s over the flow's active lifetime (until completion
    /// or `horizon`).
    pub fn goodput_bps(&self, chunk_bytes: ByteSize, horizon: SimTime) -> f64 {
        let end = self.completed_at.unwrap_or(horizon);
        let secs = end.saturating_duration_since(self.started_at).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.chunks_delivered as f64 * chunk_bytes.as_bits() as f64 / secs
        }
    }
}

/// Aggregate result of a packet-level run.
///
/// Derives `PartialEq` so the reference-equivalence suite can assert
/// whole-report identity between the arena engine and the reference
/// engine (floats included: byte-identical behaviour means the exact
/// same doubles, not approximately equal ones).
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSimReport {
    /// Transport display name ("INRPP" / "AIMD").
    pub transport: String,
    /// Topology display name.
    pub topology: String,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Per-flow outcomes, ascending by flow id.
    pub flows: Vec<FlowStats>,
    /// Data chunks delivered end-to-end (incl. duplicates).
    pub chunks_delivered: u64,
    /// Data chunks dropped (queue overflow with no custody, or custody
    /// overflow, or fault injection).
    pub chunks_dropped: u64,
    /// Data chunks that left their primary path at least once.
    pub chunks_detoured: u64,
    /// Chunks that spent time in custody stores.
    pub chunks_custodied: u64,
    /// Chunks re-homed from crashed nodes' custody stores to surviving
    /// custody points (fault-plan recovery).
    pub chunks_rescued: u64,
    /// Back-pressure notifications emitted.
    pub backpressure_msgs: u64,
    /// Highest custody occupancy seen across routers.
    pub custody_peak: ByteSize,
    /// Mean transmitter utilisation across channels.
    pub mean_utilisation: f64,
    /// Transmitter utilisation per directed channel
    /// (index = `link.idx() * 2 + direction`; same layout as the fluid
    /// report's channel vector).
    pub channel_utilisation: Vec<f64>,
    /// Bits accepted per directed channel (same index layout as
    /// [`PacketSimReport::channel_utilisation`]) — the per-channel byte
    /// totals the equivalence suite diffs between engines.
    pub channel_bits_sent: Vec<f64>,
    /// Chunk payload size (for goodput maths).
    pub chunk_bytes: ByteSize,
    /// Notable-event trace (detours, custody, back-pressure, drops);
    /// empty unless `trace_capacity > 0` in the configuration.
    pub trace: Vec<(SimTime, String)>,
    /// Total interface phase transitions across all routers (the paper's
    /// "link swapping" / flap metric, ablation A5).
    pub phase_transitions: u64,
}

impl PacketSimReport {
    /// Completed flows.
    pub fn completed(&self) -> usize {
        self.flows
            .iter()
            .filter(|f| f.completed_at.is_some())
            .count()
    }

    /// Stats for one flow, `None` if the run never knew that id.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowStats> {
        // `flows` is sorted ascending by id (the engines guarantee it)
        self.flows
            .binary_search_by_key(&flow, |f| f.flow)
            .ok()
            .map(|i| &self.flows[i])
    }

    /// Completion time of one flow. `None` when the flow is unknown *or*
    /// was truncated by the horizon — callers must not assume every flow
    /// finishes (a run cut mid-flow is a normal outcome, not an error).
    pub fn fct_of(&self, flow: FlowId) -> Option<SimDuration> {
        self.flow(flow).and_then(|f| f.fct())
    }

    /// Slowest completion among *completed* flows, `None` when nothing
    /// finished by the horizon.
    pub fn max_fct(&self) -> Option<SimDuration> {
        self.flows.iter().filter_map(|f| f.fct()).max()
    }

    /// Mean FCT over completed flows, seconds.
    pub fn mean_fct_secs(&self) -> f64 {
        let fcts: Vec<f64> = self
            .flows
            .iter()
            .filter_map(|f| f.fct().map(|d| d.as_secs_f64()))
            .collect();
        if fcts.is_empty() {
            0.0
        } else {
            fcts.iter().sum::<f64>() / fcts.len() as f64
        }
    }

    /// Jain index over per-flow goodputs.
    pub fn jain_goodput(&self) -> Option<f64> {
        let horizon = SimTime::ZERO + self.horizon;
        let rates: Vec<f64> = self
            .flows
            .iter()
            .map(|f| f.goodput_bps(self.chunk_bytes, horizon))
            .collect();
        JainIndex::compute(&rates)
    }

    /// Aggregate goodput in bits/s.
    pub fn total_goodput_bps(&self) -> f64 {
        let horizon = SimTime::ZERO + self.horizon;
        self.flows
            .iter()
            .map(|f| f.goodput_bps(self.chunk_bytes, horizon))
            .sum()
    }

    /// Drop rate over all data-chunk transmissions that ended (delivered
    /// or dropped).
    pub fn drop_rate(&self) -> f64 {
        let total = self.chunks_delivered + self.chunks_dropped;
        if total == 0 {
            0.0
        } else {
            self.chunks_dropped as f64 / total as f64
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<5} on {:<10} done={}/{} fct={:.3}s drops={} detours={} custody={} bp={} util={:.3}",
            self.transport,
            self.topology,
            self.completed(),
            self.flows.len(),
            self.mean_fct_secs(),
            self.chunks_dropped,
            self.chunks_detoured,
            self.chunks_custodied,
            self.backpressure_msgs,
            self.mean_utilisation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(done: bool) -> FlowStats {
        FlowStats {
            flow: 1,
            chunks_total: 100,
            chunks_delivered: if done { 100 } else { 40 },
            started_at: SimTime::from_secs(1),
            completed_at: done.then(|| SimTime::from_secs(3)),
            retransmits: 2,
            max_reorder_distance: 3,
            detours: 0,
            custody_rescues: 0,
            outage_delay: SimDuration::ZERO,
        }
    }

    #[test]
    fn fct_and_progress() {
        let f = flow(true);
        assert_eq!(f.fct(), Some(SimDuration::from_secs(2)));
        assert!((f.progress() - 1.0).abs() < 1e-12);
        let g = flow(false);
        assert_eq!(g.fct(), None);
        assert!((g.progress() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn goodput_uses_lifetime() {
        let f = flow(true);
        // 100 chunks × 1000 bytes × 8 bits over 2 s = 400_000 bps
        let g = f.goodput_bps(ByteSize::bytes(1000), SimTime::from_secs(10));
        assert!((g - 400_000.0).abs() < 1e-6);
        // unfinished flow measured to the horizon
        // 40 chunks × 8000 bits over (5 - 1) s = 80_000 bps
        let u = flow(false).goodput_bps(ByteSize::bytes(1000), SimTime::from_secs(5));
        assert!((u - 80_000.0).abs() < 1.0, "got {u}");
    }

    #[test]
    fn report_aggregates() {
        let mut unfinished = flow(false);
        unfinished.flow = 2;
        let r = PacketSimReport {
            transport: "INRPP".into(),
            topology: "fig3".into(),
            horizon: SimDuration::from_secs(10),
            flows: vec![flow(true), unfinished],
            chunks_delivered: 140,
            chunks_dropped: 10,
            chunks_detoured: 30,
            chunks_custodied: 5,
            chunks_rescued: 0,
            backpressure_msgs: 2,
            custody_peak: ByteSize::kb(10),
            mean_utilisation: 0.5,
            channel_utilisation: vec![0.5, 0.5],
            channel_bits_sent: vec![1_000.0, 0.0],
            chunk_bytes: ByteSize::bytes(1000),
            trace: Vec::new(),
            phase_transitions: 0,
        };
        assert_eq!(r.completed(), 1);
        assert!((r.mean_fct_secs() - 2.0).abs() < 1e-12);
        assert_eq!(r.fct_of(1), Some(SimDuration::from_secs(2)));
        assert_eq!(r.fct_of(2), None, "truncated flow is None, not a panic");
        assert_eq!(r.max_fct(), Some(SimDuration::from_secs(2)));
        assert_eq!(r.fct_of(99), None, "unknown flow is None, not a panic");
        assert!((r.drop_rate() - 10.0 / 150.0).abs() < 1e-12);
        assert!(r.jain_goodput().unwrap() > 0.0);
        assert!(r.total_goodput_bps() > 0.0);
        assert!(r.summary().contains("INRPP"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = PacketSimReport {
            transport: "AIMD".into(),
            topology: "t".into(),
            horizon: SimDuration::from_secs(1),
            flows: vec![],
            chunks_delivered: 0,
            chunks_dropped: 0,
            chunks_detoured: 0,
            chunks_custodied: 0,
            chunks_rescued: 0,
            backpressure_msgs: 0,
            custody_peak: ByteSize::ZERO,
            mean_utilisation: 0.0,
            channel_utilisation: Vec::new(),
            channel_bits_sent: Vec::new(),
            chunk_bytes: ByteSize::bytes(1000),
            trace: Vec::new(),
            phase_transitions: 0,
        };
        assert_eq!(r.completed(), 0);
        assert_eq!(r.mean_fct_secs(), 0.0);
        assert_eq!(r.drop_rate(), 0.0);
        assert_eq!(r.jain_goodput(), None);
    }

    #[test]
    fn zero_chunk_flow_is_complete() {
        let f = FlowStats {
            flow: 0,
            chunks_total: 0,
            chunks_delivered: 0,
            started_at: SimTime::ZERO,
            completed_at: None,
            retransmits: 0,
            max_reorder_distance: 0,
            detours: 0,
            custody_rescues: 0,
            outage_delay: SimDuration::ZERO,
        };
        assert_eq!(f.progress(), 1.0);
        assert_eq!(f.goodput_bps(ByteSize::bytes(1), SimTime::ZERO), 0.0);
    }
}
